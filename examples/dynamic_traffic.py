#!/usr/bin/env python3
"""Dynamic (bursty) traffic: where multipath earns its keep.

Runs the same on/off bursty workload under MP and SP twice:

1. at fluid granularity (fast, the figure-scale engine), and
2. at packet granularity (the full discrete-event system: Poisson-ish
   on/off sources, M/M/1 links, measured marginal delays, live routing
   updates),

demonstrating that the two simulators tell the same story — the
cross-validation that backs the fluid results in EXPERIMENTS.md.

Run:  python examples/dynamic_traffic.py
"""

from repro import (
    PacketRunConfig,
    QuasiStaticConfig,
    bursty_scenario,
    net1_scenario,
    run_packet_level,
    run_quasi_static,
)
from repro.units import ms


def main() -> None:
    scenario = bursty_scenario(
        net1_scenario(load=0.7), burstiness=3.0, mean_on=8.0, seed=3
    )
    print(f"Workload: {scenario.name} — flows burst to 3x their mean rate")
    print()

    print("Fluid (quasi-static) engine, 300 s:")
    fluid = {}
    for label, limit in (("MP", None), ("SP", 1)):
        run = run_quasi_static(
            scenario,
            QuasiStaticConfig(
                tl=10, ts=2, duration=300.0, warmup=60.0,
                successor_limit=limit,
                damping=0.5 if limit is None else 1.0,
            ),
        )
        fluid[label] = ms(run.mean_average_delay())
        print(f"  {label}: {fluid[label]:7.2f} ms network mean delay")
    print(f"  SP/MP ratio: {fluid['SP'] / fluid['MP']:.2f}x")
    print()

    print("Packet-level engine, 60 s (every packet simulated):")
    packet = {}
    for label, limit in (("MP", None), ("SP", 1)):
        run = run_packet_level(
            scenario,
            PacketRunConfig(
                tl=10, ts=2, duration=60.0,
                successor_limit=limit,
                damping=0.5 if limit is None else 1.0,
                seed=11,
            ),
        )
        packet[label] = ms(run.records[0].average_delay)
        print(f"  {label}: {packet[label]:7.2f} ms mean delivered delay")
    print(f"  SP/MP ratio: {packet['SP'] / packet['MP']:.2f}x")
    print()
    print("Both engines agree: single-path routing pays multi-x delay")
    print("under bursts that loop-free multipath absorbs locally.")


if __name__ == "__main__":
    main()
