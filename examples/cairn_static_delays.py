#!/usr/bin/env python3
"""The paper's CAIRN experiment (Figs. 9 and 11) end to end.

Sets up the 11 CAIRN flows of Section 5, runs OPT, MP (two Ts settings)
and SP under identical conditions, and prints the per-flow delay table —
the textual form of the paper's Figures 9 and 11.

Run:  python examples/cairn_static_delays.py [load]
"""

import sys

from repro import QuasiStaticConfig, cairn_scenario, run_opt, run_quasi_static
from repro.bench.reporting import render_flow_table


def main(load: float = 1.2) -> None:
    scenario = cairn_scenario(load=load)
    print(f"CAIRN, {len(scenario.traffic)} flows, load factor {load:g} "
          f"(total {scenario.traffic.total_rate():.0f} pkt/s)")

    common = dict(duration=200.0, warmup=60.0)
    runs = [
        run_quasi_static(
            scenario,
            QuasiStaticConfig(tl=10, ts=2, damping=0.5, **common),
        ),
        run_quasi_static(
            scenario,
            QuasiStaticConfig(tl=10, ts=10, damping=0.5, **common),
        ),
        run_quasi_static(
            scenario,
            QuasiStaticConfig(tl=10, ts=2, successor_limit=1, **common),
        ),
    ]
    opt, gallager = run_opt(scenario, max_iterations=2500)

    series = {"OPT": opt.mean_flow_delays_ms()}
    for run in runs:
        series[run.label] = run.mean_flow_delays_ms()

    print(render_flow_table("CAIRN per-flow delays", series))
    print()
    print(f"OPT converged: {gallager.converged} "
          f"({gallager.iterations} iterations, "
          f"D_T {gallager.initial_delay:.1f} -> {gallager.total_delay:.1f})")

    mp, sp = runs[0], runs[2]
    ratios = {
        f: sp.mean_flow_delays()[f] / mp.mean_flow_delays()[f]
        for f in mp.mean_flow_delays()
    }
    worst_flow = max(ratios, key=ratios.get)
    print(f"Worst SP/MP flow: {worst_flow} at {ratios[worst_flow]:.2f}x "
          f"(the paper reports 2-4x on CAIRN)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 1.2)
