#!/usr/bin/env python3
"""Watch MPDA work: LSU flooding, ACTIVE/PASSIVE phases, loop freedom.

Runs the actual MPDA routers over a timed control plane on a small ring
with a chord, printing the protocol's life:

1. cold start — full-table greetings, floods, ACKs, convergence;
2. a link-cost spike — watch the successor sets adapt;
3. a link failure — the one-hop synchronized reconvergence;

and after *every* message delivery machine-checks Theorem 3 (the
successor graphs never contain a loop, not even transiently).

Run:  python examples/protocol_trace.py
"""

from repro import MPDARouter, Topology
from repro.core.mpda import check_safety
from repro.netsim.control import ControlPlane
from repro.netsim.engine import Engine


def build_topology() -> Topology:
    """A 5-ring with one chord — multiple unequal-cost paths everywhere."""
    topo = Topology("ring5+chord")
    for a, b in ((0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)):
        topo.add_duplex_link(a, b, capacity=1250.0, prop_delay=2e-3)
    return topo


def show(routers, dest) -> None:
    for node in sorted(routers):
        router = routers[node]
        if node == dest:
            continue
        succ = sorted(router.successors(dest))
        fd = router.feasible_distance.get(dest, float("inf"))
        print(
            f"    router {node}: D={router.distance_to(dest) * 1e3:6.2f} ms"
            f"  FD={fd * 1e3:6.2f} ms  S_{dest}={succ}"
        )


def main() -> None:
    topo = build_topology()
    engine = Engine()
    routers = {n: MPDARouter(n) for n in topo.nodes}
    plane = ControlPlane(
        engine, topo, routers, check_invariants=True  # Theorem 3, every event
    )

    print("== cold start ==")
    plane.start(topo.idle_marginal_costs())
    engine.run()
    print(f"converged at t={engine.now * 1e3:.1f} ms after "
          f"{plane.delivered} LSU deliveries")
    dest = 3
    print(f"  routes toward destination {dest}:")
    show(routers, dest)

    print()
    print("== cost spike on link 2<->3 (congestion measured) ==")
    plane.set_costs({(2, 3): 25e-3, (3, 2): 25e-3})
    engine.run()
    print(f"reconverged; total deliveries {plane.delivered}")
    show(routers, dest)

    print()
    print("== link 2<->3 fails ==")
    plane.fail_link(2, 3)
    engine.run()
    print(f"reconverged; total deliveries {plane.delivered}")
    show(routers, dest)

    check_safety(routers)
    print()
    print("Theorem 3 held after every single delivery (check_invariants")
    print("raised nothing), and the final state passes check_safety().")
    transitions = sum(r.transitions for r in routers.values())
    mtu_runs = sum(r.mtu_runs for r in routers.values())
    print(f"protocol effort: {transitions} ACTIVE phases, "
          f"{mtu_runs} main-table rebuilds")


if __name__ == "__main__":
    main()
