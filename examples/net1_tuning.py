#!/usr/bin/env python3
"""Tuning Tl and Ts on NET1 (the paper's Section 5.2).

Shows the paper's two tuning results:

1. MP's delays barely move as the route-update period Tl grows — the
   update-message budget can be cut dramatically at almost no delay
   cost, because local AH rebalancing covers for stale routes;
2. SP has no such safety net: its delay swings wildly with Tl.

Run:  python examples/net1_tuning.py
"""

from repro import (
    QuasiStaticConfig,
    bursty_scenario,
    net1_scenario,
    run_quasi_static,
)
from repro.bench.reporting import render_series
from repro.units import ms


def sweep(scenario, tl_values, duration):
    mp_points, sp_points = [], []
    for tl in tl_values:
        common = dict(
            tl=tl, ts=2.0, duration=duration, warmup=60.0, queue_limit=750.0
        )
        mp = run_quasi_static(
            scenario, QuasiStaticConfig(damping=0.5, **common)
        )
        sp = run_quasi_static(
            scenario, QuasiStaticConfig(successor_limit=1, **common)
        )
        mp_points.append((tl, ms(mp.mean_average_delay())))
        sp_points.append((tl, ms(sp.mean_average_delay())))
    return {"MP": mp_points, "SP": sp_points}


def main() -> None:
    tl_values = (10.0, 20.0, 40.0)

    bursty = bursty_scenario(
        net1_scenario(load=0.7), burstiness=3.0, mean_on=15.0, seed=3,
        horizon=600.0,
    )
    series = sweep(bursty, tl_values, duration=400.0)
    print(render_series(
        "NET1, bursty demand: network mean delay vs Tl",
        series, x_name="Tl (s)",
    ))

    mp = [y for _, y in series["MP"]]
    sp = [y for _, y in series["SP"]]
    print()
    print(f"MP varies by {(max(mp) - min(mp)) / min(mp):.1%} across the "
          f"sweep; SP by {(max(sp) - min(sp)) / min(sp):.1%}.")
    print("Tl and Ts are LOCAL constants here — no global step size is")
    print("needed, which is the framework's key practical advantage over")
    print("Gallager's OPT.")

    # Ts tuning: how much does short-term adjustment buy?
    scenario = net1_scenario(load=1.35)
    print()
    print("Ts tuning (stationary load 1.35):")
    for ts in (2.0, 5.0, 10.0):
        run = run_quasi_static(
            scenario,
            QuasiStaticConfig(
                tl=10.0, ts=ts, duration=200.0, warmup=60.0, damping=0.5
            ),
        )
        print(f"  {run.label:>18}: {ms(run.mean_average_delay()):7.3f} ms")


if __name__ == "__main__":
    main()
