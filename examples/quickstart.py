#!/usr/bin/env python3
"""Quickstart: near-minimum-delay routing on a five-node diamond.

Builds the smallest interesting network (two two-hop paths between a hot
source-destination pair), then compares the three routing schemes of the
paper under the same traffic:

- **OPT** — Gallager's minimum-delay routing (the lower bound);
- **MP**  — the paper's approximation: loop-free multipath (MPDA) plus
  local IH/AH load balancing on marginal-delay costs;
- **SP**  — single shortest path, the practical baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    Flow,
    QuasiStaticConfig,
    Scenario,
    Topology,
    TrafficMatrix,
    run_opt,
    run_quasi_static,
)


def build_diamond() -> Topology:
    """s ==( a | b )== t with a cross link; 1000 pkt/s links, 1 ms."""
    topo = Topology("diamond")
    for a, b in (("s", "a"), ("s", "b"), ("a", "t"), ("b", "t"), ("a", "b")):
        topo.add_duplex_link(a, b, capacity=1000.0, prop_delay=1e-3)
    return topo


def main() -> None:
    topo = build_diamond()
    # One hot flow: 700 pkt/s does not fit comfortably on a single
    # 1000 pkt/s path (rho = 0.7 -> 3.3 ms/hop) but splits beautifully.
    traffic = TrafficMatrix([Flow("s", "t", 700.0, name="hot")])
    scenario = Scenario("quickstart", topo, traffic)

    mp = run_quasi_static(
        scenario,
        QuasiStaticConfig(tl=10, ts=2, duration=120, warmup=30, damping=0.5),
    )
    sp = run_quasi_static(
        scenario,
        QuasiStaticConfig(tl=10, ts=2, duration=120, warmup=30,
                          successor_limit=1),
    )
    opt, gallager = run_opt(scenario, eta=0.3, max_iterations=3000)

    print("Routing the 'hot' flow (700 pkt/s over two 1000 pkt/s paths)")
    print("-" * 60)
    for result in (opt, mp, sp):
        delay_ms = result.mean_flow_delays_ms()["hot"]
        print(f"{result.label:>16}: {delay_ms:7.3f} ms "
              f"(peak link utilization {result.peak_utilization():.2f})")
    print("-" * 60)
    split = gallager.phi["s"]["t"]
    print(f"OPT's optimal split at s: "
          f"{ {k: round(v, 3) for k, v in split.items()} }")
    print("MP approximates this split with purely local adjustments,")
    print("while SP rides one path at rho=0.7 and pays the queueing.")


if __name__ == "__main__":
    main()
