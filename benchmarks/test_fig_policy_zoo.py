"""ZOO — every registered routing policy on CAIRN and NET1.

The fig09–fig14 harness compares the paper's protagonists (MP, SP,
OPT); this benchmark opens the same operating points to the whole
policy registry, including the non-paper rivals ``ecmp-k`` (equal split
over the k shortest paths, downhill-filtered) and ``backpressure-lr``
(loop-free backpressure on a Gafni–Bertsekas link-reversal DAG).  The
rendered markdown table is the per-policy delay table EXPERIMENTS.md
carries.
"""

from benchmarks.conftest import run_once
from repro.bench.figures import policy_zoo, render_policy_delay_table


def run_experiment():
    return {
        network: policy_zoo(network) for network in ("cairn", "net1")
    }


def test_policy_zoo(benchmark, record_figure):
    results = run_once(benchmark, run_experiment)
    table = render_policy_delay_table(results)
    record_figure("policy_zoo", table)

    for network, result in results.items():
        metrics = result.metrics
        # Gallager's optimum lower-bounds the zoo (small tolerance for
        # the finite-buffer evaluation of its fixed fractions).
        opt = metrics["opt_avg_ms"]
        for name in ("mp", "mp-oracle", "sp", "ecmp-k", "backpressure-lr"):
            assert metrics[f"{name}_avg_ms"] >= 0.95 * opt, (
                network,
                name,
            )
        # The paper's protagonists track OPT; the single-path baseline
        # does not (Figs. 9-12).
        assert metrics["mp_avg_ms"] <= 1.15 * opt
        assert metrics["sp_avg_ms"] > 1.2 * metrics["mp_avg_ms"]
        # Theorem 4: the protocol and the converged oracle agree.
        assert metrics["mp_avg_ms"] == metrics["mp-oracle_avg_ms"]
        # The rivals run end-to-end and land between MP and the
        # congested baselines.
        assert metrics["backpressure-lr_avg_ms"] < metrics["sp_avg_ms"]
