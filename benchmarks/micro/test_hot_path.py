"""MICRO — hot-path kernels: batched allocation, shared-heap SPF,
incremental protocol core.

Not a paper figure; pins the optimized kernels against their scalar /
reference counterparts so a regression in either speed or exactness
shows up in CI.  Every benchmark asserts bit-for-bit equality with the
reference implementation before reporting the speedup — a kernel that
got fast by drifting from the scalar semantics fails here, not in a
fixture diff three PRs later.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import run_once
from repro.core.allocation import ah, ah_batch, ih, ih_batch
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.graph.generators import waxman
from repro.graph.shortest_paths import (
    bellman_ford,
    multi_destination_distances,
)

#: (rows, max successor-set width) for the allocation kernels — sized
#: like one n=300 allocation sweep (every router x destination pair).
ALLOC_SHAPE = (3000, 6)


def _allocation_rows(seed: int) -> list[dict[int, float]]:
    """Random marginal-distance rows shaped like a protocol sweep."""
    rng = random.Random(seed)
    n_rows, max_width = ALLOC_SHAPE
    rows = []
    for _ in range(n_rows):
        width = rng.randint(1, max_width)
        succ = rng.sample(range(50), width)
        rows.append({k: rng.uniform(0.01, 5.0) for k in succ})
    return rows


def test_ih_batch_vs_scalar(benchmark, record_figure):
    rows = _allocation_rows(seed=7)
    ih_batch(rows[:4])  # pull the numpy import out of the timed region

    t0 = time.perf_counter()
    scalar = [ih(row) for row in rows]
    scalar_s = time.perf_counter() - t0

    batched = run_once(benchmark, ih_batch, rows)

    assert batched == scalar  # bit-for-bit, including key order
    assert all(list(b) == list(s) for b, s in zip(batched, scalar))
    batch_s = benchmark.stats.stats.mean
    record_figure(
        "micro_ih_batch",
        f"IH batch over {len(rows)} rows: scalar {scalar_s * 1e3:.1f} ms, "
        f"batched {batch_s * 1e3:.1f} ms "
        f"({scalar_s / batch_s:.1f}x)",
    )


def test_ah_batch_vs_scalar(benchmark, record_figure):
    rows = _allocation_rows(seed=11)
    phis = [ih(row) for row in rows]
    ah_batch(phis[:4], rows[:4])  # warm the numpy import

    t0 = time.perf_counter()
    scalar = [ah(phi, row) for phi, row in zip(phis, rows)]
    scalar_s = time.perf_counter() - t0

    batched = run_once(benchmark, ah_batch, phis, rows)

    assert batched == scalar
    assert all(list(b) == list(s) for b, s in zip(batched, scalar))
    batch_s = benchmark.stats.stats.mean
    record_figure(
        "micro_ah_batch",
        f"AH batch over {len(rows)} rows: scalar {scalar_s * 1e3:.1f} ms, "
        f"batched {batch_s * 1e3:.1f} ms "
        f"({scalar_s / batch_s:.1f}x)",
    )


def test_multi_destination_spf(benchmark, record_figure):
    """One SharedSPF setup amortized over all destinations."""
    topo = waxman(120, seed=3)
    costs = topo.idle_marginal_costs()
    destinations = sorted(topo.nodes)

    t0 = time.perf_counter()
    per_dest = {j: bellman_ford(costs, j) for j in destinations}
    loop_s = time.perf_counter() - t0

    shared = run_once(
        benchmark, multi_destination_distances, costs, destinations
    )

    assert shared == per_dest
    shared_s = benchmark.stats.stats.mean
    record_figure(
        "micro_multi_dest_spf",
        f"SPF to {len(destinations)} destinations (n=120 Waxman): "
        f"per-destination {loop_s * 1e3:.1f} ms, shared-heap "
        f"{shared_s * 1e3:.1f} ms ({loop_s / shared_s:.1f}x)",
    )


class _ReferenceRouter(MPDARouter):
    """MPDA with every incremental shortcut disabled."""

    INCREMENTAL = False


@pytest.mark.parametrize("n", [50])
def test_incremental_driver_step_loop(benchmark, record_figure, n):
    """Cold-start convergence: incremental core vs reference core.

    The two runs must agree on every protocol-visible count (the
    incremental paths are exact, not approximate); the benchmark then
    reports how much of the driver step loop the shortcuts save.
    """
    topo = waxman(n, seed=1)
    costs = topo.idle_marginal_costs()

    def converge(router_cls):
        driver = ProtocolDriver(topo, router_cls, seed=0)
        driver.start(costs)
        driver.run()
        driver.verify_converged()
        return driver

    t0 = time.perf_counter()
    reference = converge(_ReferenceRouter)
    reference_s = time.perf_counter() - t0

    driver = run_once(benchmark, converge, MPDARouter)

    assert driver.message_stats() == reference.message_stats()
    for node, router in driver.routers.items():
        assert router.distances == reference.routers[node].distances
    incremental_s = benchmark.stats.stats.mean
    record_figure(
        f"micro_incremental_n{n}",
        f"MPDA cold-start, n={n}: reference {reference_s:.2f} s, "
        f"incremental {incremental_s:.2f} s "
        f"({reference_s / incremental_s:.1f}x)",
    )
