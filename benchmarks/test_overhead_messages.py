"""OVERHEAD — MPDA vs. LSA-flooding control-message counts.

The paper asserts MPDA's partial-topology dissemination keeps protocol
overhead "similar to single-path routing protocols" without printing a
table; this benchmark produces the table (also available as
``python -m repro overhead``) and asserts the qualitative claim: MPDA
needs no more messages than topology-broadcast flooding on either
evaluation topology, including cold start.
"""

from benchmarks.conftest import run_once
from repro.bench.overhead import overhead_experiment, render_overhead_table


def test_overhead_mpda_vs_flooding(benchmark, record_figure):
    reports = run_once(benchmark, overhead_experiment, epochs=5, seed=0)
    record_figure("overhead_messages", render_overhead_table(reports))

    by_name = {report.topology: report for report in reports}
    assert set(by_name) == {"CAIRN", "NET1"}
    for report in reports:
        # cold start: MPDA's diffed LSUs undercut full-LSA flooding
        assert report.mpda_cold_start <= report.flooding_cold_start
        # steady-state updates: no worse than flooding per Tl epoch
        # (every adjacent link changed cost — the diffing worst case)
        assert report.mpda_update_mean <= report.flooding_per_epoch * 1.05
    # the sparser CAIRN is where partial topology should win clearly
    assert by_name["CAIRN"].update_ratio > 1.2
