"""FIG10 — Fig. 10 of the paper: OPT vs MP per-flow delays on NET1.

Paper claim: "the delays obtained using MP routing for NET1 are within
8% envelopes of delays obtained using OPT routing".
"""

from benchmarks.conftest import run_once
from repro.bench import fig10_net1_opt_vs_mp, render_flow_table


def test_fig10(benchmark, record_figure):
    result = run_once(benchmark, fig10_net1_opt_vs_mp)
    record_figure(
        "fig10",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    assert result.metrics["mp_over_opt_mean"] < 1.08
    assert result.metrics["mp_over_opt_max"] < 1.15
