"""ABL2 — ablation: how many loop-free successors are worth having.

The paper's framework allows *all* neighbors strictly closer to the
destination.  This ablation restricts the set to the best 1 (= SP) or 2
and compares against the unrestricted MP, quantifying the value of
unequal-cost multipath beyond simple two-way splitting.
"""

from benchmarks.conftest import run_once
from repro.bench import abl_successors, render_flow_table


def test_abl_successors(benchmark, record_figure):
    result = run_once(benchmark, abl_successors)
    record_figure(
        "abl_successors",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    sp = result.metrics["limit1(SP)_avg_ms"]
    two = result.metrics["limit2_avg_ms"]
    mp = result.metrics["all(MP)_avg_ms"]
    assert two < sp          # a second successor already helps a lot
    assert mp <= two * 1.10  # full MP at least matches two-way splitting
