"""ABL3 — ablation: marginal-delay estimator choice (packet level).

The paper borrows a perturbation-analysis estimator precisely because it
needs no a-priori capacity knowledge, and stresses the framework "does
not depend on which specific technique is used for marginal-delay
estimation".  This ablation runs the full packet-level system twice —
with the closed-form M/M/1 estimator (knows capacities) and with the
capacity-free online estimator (measurements only) — and checks the
delivered delays land in the same regime.
"""

from benchmarks.conftest import run_once
from repro.sim.packet_runner import PacketRunConfig, run_packet_level
from repro.sim.scenario import net1_scenario


def test_abl_estimator(benchmark, record_figure):
    scenario = net1_scenario(load=1.2)

    def run_both():
        out = {}
        for estimator in ("mm1", "online"):
            result = run_packet_level(
                scenario,
                PacketRunConfig(
                    tl=10,
                    ts=2,
                    duration=40.0,
                    damping=0.5,
                    estimator=estimator,
                    seed=4,
                ),
            )
            out[estimator] = result.records[0].average_delay
        return out

    delays = run_once(benchmark, run_both)
    record_figure(
        "abl_estimator",
        "ABL3 (marginal-delay estimator, packet level)\n"
        f"  mm1 (capacity known):    {delays['mm1'] * 1e3:7.3f} ms\n"
        f"  online (capacity-free):  {delays['online'] * 1e3:7.3f} ms\n"
        "claim: the framework does not depend on the estimation "
        "technique",
    )
    assert delays["online"] < 2.0 * delays["mm1"]
    assert delays["mm1"] < 2.0 * delays["online"]
