"""Benchmark-suite helpers: run once, print the figure, save an artifact.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one figure of the paper (see DESIGN.md §3),
asserts the claim it reproduces, prints the series, and writes the table
under ``benchmarks/out/`` so EXPERIMENTS.md can be refreshed.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def pytest_configure(config):
    OUT_DIR.mkdir(exist_ok=True)


@pytest.fixture
def record_figure(capsys):
    """Print a rendered figure and persist it to benchmarks/out/."""

    def _record(name: str, text: str) -> None:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an expensive experiment exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
