"""FIG11 — Fig. 11 of the paper: MP vs SP per-flow delays on CAIRN.

Paper claim: "the delays of SP for some flows are two to four times
those of MP", and MP-TL-10-TS-10 (allocation only at route updates) is
already much closer to OPT than SP.
"""

from benchmarks.conftest import run_once
from repro.bench import fig11_cairn_mp_vs_sp, render_flow_table


def test_fig11(benchmark, record_figure):
    result = run_once(benchmark, fig11_cairn_mp_vs_sp)
    record_figure(
        "fig11",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    # Some flows suffer multi-x under SP; no flow does meaningfully
    # better under SP than under MP.
    assert result.metrics["sp_over_mp_max"] > 2.0
    assert result.metrics["sp_over_mp_min"] > 0.9
