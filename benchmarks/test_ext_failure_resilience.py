"""EXT1 — extension: a link failure mid-run (MP vs SP).

The paper kept its topologies stable and argued: "In the presence of
link failures, MP can only perform better than SP, because of
availability of alternate paths."  This extension measures that: a
well-used NET1 link fails for 100 s in the middle of the run.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import render_series
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import net1_scenario, with_failures
from repro.units import ms


def run_experiment():
    scenario = with_failures(
        net1_scenario(load=1.2),
        {(0, 5): [(100.0, 200.0)]},  # a central link, out for 100 s
    )
    cfg = dict(tl=10.0, ts=2.0, duration=300.0, warmup=40.0)
    mp = run_quasi_static(scenario, QuasiStaticConfig(damping=0.5, **cfg))
    sp = run_quasi_static(scenario, QuasiStaticConfig(successor_limit=1, **cfg))

    def phase_means(run):
        out = {}
        for name, lo, hi in (
            ("before", 40.0, 100.0),
            ("outage", 100.0, 200.0),
            ("after", 200.0, 300.0),
        ):
            vals = [
                r.average_delay for r in run.records if lo <= r.time < hi
            ]
            out[name] = ms(sum(vals) / len(vals))
        return out

    return phase_means(mp), phase_means(sp)


def test_ext_failure_resilience(benchmark, record_figure):
    mp, sp = run_once(benchmark, run_experiment)
    series = {
        "MP": [(i, mp[p]) for i, p in enumerate(("before", "outage", "after"))],
        "SP": [(i, sp[p]) for i, p in enumerate(("before", "outage", "after"))],
    }
    record_figure(
        "ext_failure",
        render_series(
            "EXT1 (NET1: link 0<->5 out for t in [100,200))",
            series,
            x_name="phase#",
        )
        + f"\nphases: 0=before, 1=during outage, 2=after\n"
        f"MP: {mp}\nSP: {sp}",
    )
    # MP absorbs the outage with little degradation; SP suffers more.
    assert mp["outage"] <= sp["outage"]
    assert mp["outage"] < 2.0 * mp["before"]
    # both recover once the link returns
    assert mp["after"] < 1.5 * mp["before"]
