"""FIG13 — Fig. 13 of the paper: effect of increasing Tl on CAIRN.

Paper claim: "when Tl is increased ... the delays in SP have more than
doubled, while the delays of MP remain relatively unchanged."
"""

from benchmarks.conftest import run_once
from repro.bench import fig13_cairn_tl_sweep, render_series


def test_fig13(benchmark, record_figure):
    result = run_once(benchmark, fig13_cairn_tl_sweep)
    record_figure(
        "fig13",
        render_series(result.figure, result.sweep_series, x_name="Tl (s)")
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    # MP insensitive to Tl; SP strongly sensitive, and (on CAIRN, as in
    # the paper) worse as Tl grows.
    assert result.metrics["mp_relative_change"] < 0.10
    assert result.metrics["sp_relative_change"] > 0.5
    assert result.metrics["sp_last_over_first"] > 2.0
