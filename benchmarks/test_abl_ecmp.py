"""ABL4 — ablation: unequal-cost multipath vs OSPF-style ECMP.

The paper motivates its LFI sets against OSPF, which "permits multiple
paths to a destination only when they have the same length".  This
ablation runs the identical system with three path rules — SP (one
path), ECMP (equal-cost only), MP (all loop-free, unequal cost) — and
shows where each stands between SP and OPT.
"""

from benchmarks.conftest import run_once
from repro.bench.reporting import render_flow_table
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import cairn_scenario
from repro.units import ms


def run_experiment():
    # CAIRN's irregular geography makes equal-cost ties rare, which is
    # exactly the regime where ECMP's restriction bites.
    scenario = cairn_scenario(load=1.2)
    cfg = dict(tl=10.0, ts=2.0, duration=200.0, warmup=60.0)
    runs = {
        "SP": run_quasi_static(
            scenario, QuasiStaticConfig(successor_limit=1, **cfg)
        ),
        # ECMP over the measured delay costs: continuous costs never
        # tie, so this *provably* degenerates to SP — the finding is
        # that OSPF's same-length rule is vacuous with delay metrics.
        "ECMP": run_quasi_static(
            scenario, QuasiStaticConfig(path_rule="ecmp", damping=0.5, **cfg)
        ),
        # Realistic OSPF: hop-count routing, even split, congestion-blind.
        "ECMP-HOP": run_quasi_static(
            scenario, QuasiStaticConfig(path_rule="ecmp-hop", **cfg)
        ),
        "MP": run_quasi_static(
            scenario, QuasiStaticConfig(damping=0.5, **cfg)
        ),
    }
    return {
        label: (run.mean_flow_delays_ms(), ms(run.mean_average_delay()))
        for label, run in runs.items()
    }


def test_abl_ecmp(benchmark, record_figure):
    results = run_once(benchmark, run_experiment)
    series = {label: flows for label, (flows, _) in results.items()}
    means = {label: avg for label, (_, avg) in results.items()}
    record_figure(
        "abl_ecmp",
        render_flow_table("ABL4 (CAIRN: SP vs ECMP variants vs MP)", series)
        + f"\nnetwork means (ms): {means}",
    )
    # Delay-cost ECMP degenerates to SP (no exact ties ever occur).
    assert means["ECMP"] == means["SP"]
    # Unequal-cost multipath beats every ECMP variant.
    assert means["MP"] < means["ECMP-HOP"]
    assert means["MP"] < means["ECMP"]
