"""FIG14 — Fig. 14 of the paper: effect of increasing Tl on NET1.

Paper claim: "delays for SP increased significantly while there is
negligible change in delays of MP".

Measured note (see EXPERIMENTS.md): MP's insensitivity reproduces
exactly; SP is strongly Tl-sensitive on NET1 as well, though in our
fluid model the *sign* of SP's Tl dependence on this dense topology can
differ from CAIRN's (route-flap chasing at short Tl vs backlog
integration at long Tl).  The shape claim asserted here is therefore
MP-flat / SP-volatile.
"""

from benchmarks.conftest import run_once
from repro.bench import fig14_net1_tl_sweep, render_series


def test_fig14(benchmark, record_figure):
    result = run_once(benchmark, fig14_net1_tl_sweep)
    record_figure(
        "fig14",
        render_series(result.figure, result.sweep_series, x_name="Tl (s)")
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    assert result.metrics["mp_relative_change"] < 0.10
    assert result.metrics["sp_relative_change"] > 0.5
