"""DYN — the paper's dynamic-environment comparison: MP vs SP under
bursty on/off traffic.

Paper claim (abstract / Section 5): delays under MP "are significantly
better than single-path routing in a dynamic environment", because the
local AH adjustments absorb bursts that a single (stale) path cannot.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench import dyn_bursty, render_flow_table


@pytest.mark.parametrize("network", ["net1", "cairn"])
def test_dyn_bursty(benchmark, record_figure, network):
    result = run_once(benchmark, dyn_bursty, network)
    record_figure(
        f"dyn_{network}",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    assert result.metrics["sp_over_mp_avg"] > 1.5
