"""FIG09 — Fig. 9 of the paper: OPT vs MP per-flow delays on CAIRN.

Paper claim: "the average delays of flows under MP routing are within
the OPT-5 envelope" (OPT delays increased by 5%).
"""

from benchmarks.conftest import run_once
from repro.bench import fig09_cairn_opt_vs_mp, render_flow_table


def test_fig09(benchmark, record_figure):
    result = run_once(benchmark, fig09_cairn_opt_vs_mp)
    record_figure(
        "fig09",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    # Shape checks: MP within a small envelope of OPT.
    assert result.metrics["mp_over_opt_mean"] < 1.05
    assert result.metrics["mp_over_opt_max"] < 1.10
