"""ABL1 — ablation: flow-allocation cadence and damping.

Design choices probed (DESIGN.md §6):

- running AH every short interval (Ts << Tl) versus only redistributing
  at route updates (Ts = Tl, the paper's MP-TL-10-TS-10 curve) — the
  paper notes even the latter "is much closer to OPT than SP";
- the min-ratio AH step at full strength (the paper's Fig. 7) versus the
  damped variant used for the headline figures.
"""

from benchmarks.conftest import run_once
from repro.bench import abl_allocation, render_flow_table


def test_abl_allocation(benchmark, record_figure):
    result = run_once(benchmark, abl_allocation)
    record_figure(
        "abl_allocation",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    fast = result.metrics["AH@Ts2+damp.5_avg_ms"]
    slow = result.metrics["AH@Ts10(=Tl)_avg_ms"]
    undamped = result.metrics["AH@Ts2+damp1_avg_ms"]
    # Short-term adjustment should not hurt, and every variant must stay
    # in the same near-optimal regime (no oscillatory blow-up).
    assert fast <= slow * 1.05
    assert max(fast, slow, undamped) < 3 * min(fast, slow, undamped)
