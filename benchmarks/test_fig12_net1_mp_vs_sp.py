"""FIG12 — Fig. 12 of the paper: MP vs SP per-flow delays on NET1.

Paper claim: "average delays of SP are as much as five to six times
those of MP routing which is due to higher connectivity available in
NET1" (i.e. a larger gap than CAIRN's 2-4x).
"""

from benchmarks.conftest import run_once
from repro.bench import fig12_net1_mp_vs_sp, render_flow_table


def test_fig12(benchmark, record_figure):
    result = run_once(benchmark, fig12_net1_mp_vs_sp)
    record_figure(
        "fig12",
        render_flow_table(result.figure, result.flow_series)
        + f"\nclaim: {result.claim}\nmetrics: {result.metrics}",
    )
    assert result.metrics["sp_over_mp_max"] > 2.5
    assert result.metrics["sp_over_mp_min"] > 0.9
