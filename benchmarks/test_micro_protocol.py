"""MICRO — protocol and engine microbenchmarks.

Not a paper figure; quantifies the implementation itself:

- MPDA convergence cost (messages, MTU runs) versus network size —
  the paper argues its complexity is "similar to the complexity of
  routing protocols that provide single-path routing";
- OPT's dependence on the global step size eta (the paper's central
  criticism of Gallager's algorithm);
- raw event-engine throughput.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.gallager.opt import optimize
from repro.graph.generators import random_connected
from repro.netsim.engine import Engine
from repro.sim.scenario import net1_scenario


@pytest.mark.parametrize("n", [10, 20, 40])
def test_mpda_convergence_scaling(benchmark, record_figure, n):
    topo = random_connected(n, extra_links=n // 2, seed=1, jitter=0.3)

    def converge():
        driver = ProtocolDriver(topo, MPDARouter, seed=0)
        driver.start(topo.idle_marginal_costs())
        driver.run()
        driver.verify_converged()
        return driver.message_stats()

    stats = run_once(benchmark, converge)
    record_figure(
        f"micro_mpda_n{n}",
        f"MPDA cold-start convergence, n={n}, links={topo.num_links}: "
        f"{stats}",
    )
    # messages stay polynomial and modest: well under n^3
    assert stats["delivered"] < n**3


@pytest.mark.parametrize("eta", [0.01, 0.1, 0.5])
def test_opt_eta_sensitivity(benchmark, record_figure, eta):
    """The global constant the paper criticizes: iterations vs eta."""
    scenario = net1_scenario(load=1.0)

    def run():
        return optimize(
            scenario.topo,
            scenario.traffic,
            eta=eta,
            max_iterations=4000,
        )

    result = run_once(benchmark, run)
    record_figure(
        f"micro_opt_eta{eta}",
        f"OPT eta={eta}: iterations={result.iterations}, "
        f"converged={result.converged}, D_T={result.total_delay:.4f}",
    )
    assert result.history[-1] <= result.history[0]


def test_engine_throughput(benchmark, record_figure):
    """Events per second of the bare discrete-event engine."""

    def pump():
        engine = Engine()
        count = 200_000
        state = {"left": count}

        def tick():
            state["left"] -= 1
            if state["left"] > 0:
                engine.schedule(1e-6, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.processed

    processed = benchmark(pump)
    record_figure("micro_engine", f"engine processed {processed} events")
    assert processed == 200_000
