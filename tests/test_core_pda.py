"""PDA: the partial-topology dissemination algorithm (Theorem 2)."""

import pytest

from repro.core.driver import ProtocolDriver
from repro.core.linkstate import INFINITY
from repro.core.pda import PDARouter
from repro.exceptions import RoutingError
from repro.graph.generators import random_connected, ring
from repro.graph.shortest_paths import dijkstra


def converge(topo, costs, seed=0, factory=PDARouter):
    driver = ProtocolDriver(topo, factory, seed=seed)
    driver.start(costs)
    driver.run()
    return driver


class TestRouterEvents:
    def test_link_up_floods_table(self):
        router = PDARouter("a")
        router.link_up("b", 1.0)
        # new router with empty table: only the MTU diff goes out
        assert router.outbox
        assert router.main_table.cost("a", "b") == 1.0

    def test_invalid_cost_rejected(self):
        router = PDARouter("a")
        with pytest.raises(RoutingError):
            router.link_up("b", 0.0)
        with pytest.raises(RoutingError):
            router.link_up("b", INFINITY)

    def test_cost_change_unknown_link_rejected(self):
        router = PDARouter("a")
        with pytest.raises(RoutingError):
            router.link_cost_change("ghost", 1.0)

    def test_link_down_clears_neighbor_state(self):
        router = PDARouter("a")
        router.link_up("b", 1.0)
        router.link_down("b")
        assert "b" not in router.link_costs
        assert "b" not in router.neighbor_tables
        assert router.distance_to("b") == INFINITY

    def test_stale_message_dropped(self):
        from repro.core.linkstate import LSUMessage

        router = PDARouter("a")
        router.receive(LSUMessage("ghost", ()))  # no such link: ignored
        assert router.distances.get("ghost") is None


class TestConvergence:
    @pytest.mark.parametrize("seed", range(4))
    def test_distances_match_oracle_on_random_networks(self, seed):
        topo = random_connected(8, extra_links=5, seed=seed, jitter=0.4)
        costs = topo.idle_marginal_costs()
        driver = converge(topo, costs, seed=seed)
        driver.verify_converged()

    def test_ring_converges(self):
        topo = ring(6)
        driver = converge(topo, topo.uniform_costs(1.0))
        driver.verify_converged()

    def test_cost_change_reconverges(self, diamond):
        costs = diamond.uniform_costs(1.0)
        driver = converge(diamond, costs)
        driver.set_costs({("s", "a"): 7.0, ("a", "s"): 7.0})
        driver.run()
        driver.verify_converged()
        # routes must now avoid the expensive link
        dist = driver.routers["s"].distance_to("a")
        assert dist == pytest.approx(2.0)  # s -> b -> a

    def test_link_failure_reconverges(self, diamond):
        costs = diamond.uniform_costs(1.0)
        driver = converge(diamond, costs)
        driver.fail_link("s", "a")
        driver.run()
        driver.verify_converged()
        assert driver.routers["s"].distance_to("t") == pytest.approx(2.0)

    def test_partition_yields_infinite_distance(self):
        from repro.graph.generators import line

        topo = line(3)  # 0 - 1 - 2
        driver = converge(topo, topo.uniform_costs(1.0))
        driver.fail_link(0, 1)
        driver.run()
        assert driver.routers[0].distance_to(2) == INFINITY

    def test_recovery_after_partition(self):
        from repro.graph.generators import line

        topo = line(3)
        driver = converge(topo, topo.uniform_costs(1.0))
        driver.fail_link(0, 1)
        driver.run()
        driver.restore_link(0, 1, 1.0, 1.0)
        driver.run()
        driver.verify_converged()
        assert driver.routers[0].distance_to(2) == pytest.approx(2.0)

    def test_main_table_is_tree(self, small_grid):
        driver = converge(small_grid, small_grid.uniform_costs(1.0))
        for router in driver.routers.values():
            # a tree over n reachable nodes has n-1 links
            nodes = router.main_table.nodes()
            assert len(router.main_table) == len(nodes) - 1

    def test_quiescent_after_convergence(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        assert driver.pending_messages() == 0
        # delivering nothing changes nothing
        assert driver.step() is False


class TestMessageComplexity:
    def test_no_messages_for_noop_cost_set(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        before = driver.delivered
        driver.set_costs(diamond.uniform_costs(1.0))  # unchanged costs
        driver.run()
        assert driver.delivered == before

    def test_stats_counters_consistent(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        stats = driver.message_stats()
        assert stats["lsu_received"] == stats["delivered"]
        assert stats["lsu_sent"] >= stats["lsu_received"]  # drops on failure
