"""Replay the committed fuzz regression corpus (tests/corpus/*.json).

Every corpus entry embeds a full fuzz case plus its expected outcome:
``expect: "pass"`` entries pin exact deterministic metrics, and
``expect: "violation"`` entries are minimized replay artifacts from
raw-channel campaigns.  A diff here means behavior changed — regenerate
with ``PYTHONPATH=src python tests/corpus/regen.py`` only when the
change is intentional.
"""

import glob
import json
import os

import pytest

from repro.fleet import FUZZ_POLICIES
from repro.testing.fuzz import FuzzCase, examine_case, replay

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load(path):
    with open(path) as fh:
        return json.load(fh)


class TestCorpusShape:
    def test_corpus_is_committed(self):
        assert len(CORPUS) >= 10

    def test_corpus_covers_the_fuzz_zoo(self):
        policies = {_load(p)["case"]["policy"] for p in CORPUS}
        assert set(FUZZ_POLICIES) <= policies

    def test_corpus_has_both_outcomes(self):
        expects = {_load(p)["expect"] for p in CORPUS}
        assert expects == {"pass", "violation"}

    def test_pinned_cairn_tis_udel_case_present(self):
        """The tricky passing case: an ecmp-k schedule on CAIRN whose
        events hit the tis<->udel link (an east-coast bridge the hashed
        k-subset split is sensitive to)."""
        for path in CORPUS:
            doc = _load(path)
            case = doc["case"]
            if case["policy"] != "ecmp-k":
                continue
            if case["topology"] != {"kind": "named", "name": "cairn"}:
                continue
            touched = {
                node
                for event in case["schedule"]
                if len(event) >= 3
                for node in event[1:3]
            }
            if {"tis", "udel"} <= touched:
                assert doc["expect"] == "pass"
                return
        pytest.fail("no CAIRN tis<->udel ecmp-k entry in the corpus")

    def test_violations_are_minimized_raw_channel_cases(self):
        for path in CORPUS:
            doc = _load(path)
            if doc["expect"] != "violation":
                continue
            assert doc["case"]["profile"]["reliable"] is False
            assert doc["failure"]["type"]


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS]
)
def test_corpus_entry_replays(path):
    doc = _load(path)
    case = FuzzCase.from_dict(doc["case"])
    verdict = examine_case(case)
    assert verdict["status"] == doc["expect"], verdict
    if doc["expect"] == "violation":
        # Bit-for-bit the recorded failure, causal slice included —
        # and the doc doubles as a plain `repro replay` artifact.
        assert verdict["failure"] == doc["failure"]
        assert replay(path).reproduced
    else:
        # Pinned metrics: any drift in deliveries, message counts or
        # audit totals is a silent behavioral change, not noise.
        assert verdict["metrics"] == doc["metrics"]
