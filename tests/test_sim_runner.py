"""The quasi-static runner: configuration and dynamics."""

import pytest

from repro.exceptions import SimulationError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.sim.runner import QuasiStaticConfig, run_opt, run_quasi_static
from repro.sim.scenario import Scenario


@pytest.fixture
def diamond_scenario(diamond):
    traffic = TrafficMatrix(
        [Flow("s", "t", 600.0, name="hot"), Flow("t", "s", 200.0, name="back")]
    )
    return Scenario("diamond", diamond, traffic)


FAST = dict(tl=10.0, ts=2.0, duration=60.0, warmup=20.0)


class TestConfig:
    def test_label_conventions(self):
        assert QuasiStaticConfig(tl=10, ts=2).label == "MP-TL-10-TS-2"
        assert (
            QuasiStaticConfig(tl=20, ts=2, successor_limit=1).label
            == "SP-TL-20"
        )
        assert (
            QuasiStaticConfig(tl=10, ts=2, successor_limit=2).label
            == "MP2-TL-10-TS-2"
        )

    def test_validation(self):
        with pytest.raises(SimulationError):
            QuasiStaticConfig(tl=2, ts=10)  # Tl < Ts
        with pytest.raises(SimulationError):
            QuasiStaticConfig(tl=10, ts=3)  # not a multiple
        with pytest.raises(SimulationError):
            QuasiStaticConfig(duration=10, warmup=20)
        with pytest.raises(SimulationError):
            QuasiStaticConfig(ts=0)

    def test_ts_equal_tl_allowed(self):
        QuasiStaticConfig(tl=10, ts=10)  # the paper's MP-TL-10-TS-10


class TestRun:
    def test_epoch_count(self, diamond_scenario):
        result = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        assert len(result.records) == 30  # duration / ts

    def test_mp_splits_hot_flow(self, diamond_scenario):
        result = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        assert result.peak_utilization() < 0.45  # 600 split over two paths

    def test_sp_concentrates(self, diamond_scenario):
        result = run_quasi_static(
            diamond_scenario,
            QuasiStaticConfig(successor_limit=1, **FAST),
        )
        assert result.peak_utilization() > 0.55

    def test_mp_beats_sp(self, diamond_scenario):
        mp = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        sp = run_quasi_static(
            diamond_scenario, QuasiStaticConfig(successor_limit=1, **FAST)
        )
        assert (
            mp.mean_flow_delays()["hot"] < sp.mean_flow_delays()["hot"]
        )

    def test_protocol_mode_matches_oracle(self, diamond_scenario):
        oracle = run_quasi_static(
            diamond_scenario, QuasiStaticConfig(mode="oracle", **FAST)
        )
        protocol = run_quasi_static(
            diamond_scenario, QuasiStaticConfig(mode="protocol", **FAST)
        )
        for name, delay in oracle.mean_flow_delays().items():
            assert protocol.mean_flow_delays()[name] == pytest.approx(
                delay, rel=1e-6
            )
        assert protocol.protocol_stats["delivered"] > 0

    def test_deterministic(self, diamond_scenario):
        a = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        b = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        assert a.mean_flow_delays() == b.mean_flow_delays()


class TestRunOpt:
    def test_opt_near_mp_on_symmetric_diamond(self, diamond_scenario):
        """On the symmetric diamond both reach the 50/50 optimum."""
        opt, gallager = run_opt(
            diamond_scenario, eta=0.3, max_iterations=3000
        )
        mp = run_quasi_static(diamond_scenario, QuasiStaticConfig(**FAST))
        assert opt.mean_average_delay() <= mp.mean_average_delay() * 1.01
        assert gallager.phi["s"]["t"]["a"] == pytest.approx(0.5, abs=0.05)

    def test_opt_label(self, diamond_scenario):
        opt, _ = run_opt(diamond_scenario, max_iterations=200)
        assert opt.label == "OPT"
        assert len(opt.records) == 1
