"""The paper's topologies and the constraints they must satisfy."""

import pytest

from repro.graph.topologies import (
    CAIRN_FLOW_PAIRS,
    NET1_FLOW_PAIRS,
    cairn,
    net1,
)
from repro.units import mbps


class TestCairn:
    def test_node_count_matches_figure(self):
        assert cairn().num_nodes == 27

    def test_connected_and_symmetric(self):
        topo = cairn()
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_capacity_capped_at_10mbps(self):
        assert all(ln.capacity == mbps(10) for ln in cairn().links())

    def test_flow_pairs_are_eleven_and_valid(self):
        topo = cairn()
        assert len(CAIRN_FLOW_PAIRS) == 11
        for src, dst in CAIRN_FLOW_PAIRS:
            assert topo.has_node(src), src
            assert topo.has_node(dst), dst
            assert src != dst

    def test_flow_pairs_mirror_structure(self):
        """The paper's CAIRN pairs come in forward/reverse couples."""
        pairs = set(CAIRN_FLOW_PAIRS)
        mirrored = {(d, s) for s, d in pairs}
        # 10 of the 11 pairs have their reverse present (isi/darpa pair
        # closes the loop through a third site).
        assert len(pairs & mirrored) >= 8

    def test_sparse_research_network(self):
        topo = cairn()
        avg_degree = topo.num_links / topo.num_nodes
        assert avg_degree < 3.5  # sparse, chain-and-ring like the real CAIRN

    def test_multipath_exists_between_coasts(self):
        """At least two link-disjoint routes cross the country."""
        topo = cairn()
        topo.remove_duplex_link("isi", "isi-e")
        assert topo.is_connected()  # the sri-anl trunk still works


class TestNet1:
    def test_paper_constraints(self):
        """10 nodes, degrees 3..5, diameter 4 — stated in Section 5."""
        topo = net1()
        assert topo.num_nodes == 10
        degrees = [topo.degree(n) for n in topo.nodes]
        assert min(degrees) >= 3
        assert max(degrees) <= 5
        assert topo.diameter() == 4

    def test_connected_and_symmetric(self):
        topo = net1()
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_flow_pairs(self):
        topo = net1()
        assert len(NET1_FLOW_PAIRS) == 10
        for src, dst in NET1_FLOW_PAIRS:
            assert topo.has_node(src) and topo.has_node(dst)
        # Every node appears as a source exactly once (paper's list).
        assert sorted(s for s, _ in NET1_FLOW_PAIRS) == list(range(10))

    def test_custom_capacity(self):
        topo = net1(capacity=500.0)
        assert all(ln.capacity == 500.0 for ln in topo.links())
