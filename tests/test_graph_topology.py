"""Unit tests for the Topology model."""

import pytest

from repro.exceptions import TopologyError
from repro.graph.topology import Link, Topology, subtopology


class TestLink:
    def test_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link("a", "a")

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(TopologyError):
            Link("a", "b", capacity=0.0)
        with pytest.raises(TopologyError):
            Link("a", "b", capacity=-1.0)

    def test_rejects_negative_prop_delay(self):
        with pytest.raises(TopologyError):
            Link("a", "b", prop_delay=-1e-3)

    def test_reversed_swaps_endpoints_keeps_attributes(self):
        link = Link("a", "b", capacity=10.0, prop_delay=2e-3)
        back = link.reversed()
        assert back.head == "b" and back.tail == "a"
        assert back.capacity == 10.0
        assert back.prop_delay == 2e-3

    def test_link_id(self):
        assert Link("x", "y").link_id == ("x", "y")


class TestTopologyConstruction:
    def test_add_link_creates_nodes(self):
        topo = Topology()
        topo.add_link("a", "b")
        assert topo.has_node("a") and topo.has_node("b")
        assert topo.has_link("a", "b")
        assert not topo.has_link("b", "a")

    def test_duplex_creates_both_directions(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        assert topo.has_link("a", "b") and topo.has_link("b", "a")
        assert topo.num_links == 2

    def test_re_adding_link_replaces_attributes(self):
        topo = Topology()
        topo.add_link("a", "b", capacity=1.0)
        topo.add_link("a", "b", capacity=5.0)
        assert topo.num_links == 1
        assert topo.link("a", "b").capacity == 5.0

    def test_remove_link(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        topo.remove_link("a", "b")
        assert not topo.has_link("a", "b")
        assert topo.has_link("b", "a")

    def test_remove_missing_link_raises(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.remove_link("a", "b")

    def test_remove_node_drops_incident_links(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        topo.add_duplex_link("b", "c")
        topo.remove_node("b")
        assert not topo.has_node("b")
        assert topo.num_links == 0
        assert topo.has_node("a") and topo.has_node("c")


class TestTopologyQueries:
    def test_neighbors_insertion_order(self):
        topo = Topology()
        topo.add_link("a", "c")
        topo.add_link("a", "b")
        assert topo.neighbors("a") == ["c", "b"]

    def test_in_neighbors(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("c", "b")
        assert set(topo.in_neighbors("b")) == {"a", "c"}

    def test_unknown_node_raises(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.neighbors("ghost")
        with pytest.raises(TopologyError):
            topo.link("ghost", "other")

    def test_degree(self, triangle):
        assert all(triangle.degree(n) == 2 for n in triangle.nodes)

    def test_dunder_protocols(self, triangle):
        assert len(triangle) == 3
        assert "a" in triangle
        assert set(iter(triangle)) == {"a", "b", "c"}


class TestGraphProperties:
    def test_symmetric(self, triangle):
        assert triangle.is_symmetric()
        triangle.remove_link("a", "b")
        assert not triangle.is_symmetric()

    def test_connected(self, triangle):
        assert triangle.is_connected()

    def test_disconnected(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        topo.add_duplex_link("c", "d")
        assert not topo.is_connected()

    def test_directed_connectivity_requires_all_sources(self):
        topo = Topology()
        topo.add_link("a", "b")
        topo.add_link("b", "a")
        topo.add_link("a", "c")  # c has no way back
        assert not topo.is_connected()

    def test_diameter_ring(self, square_ring):
        assert square_ring.diameter() == 2

    def test_diameter_disconnected_raises(self):
        topo = Topology()
        topo.add_duplex_link("a", "b")
        topo.add_node("z")
        with pytest.raises(TopologyError):
            topo.diameter()

    def test_single_node_is_connected(self):
        topo = Topology()
        topo.add_node("only")
        assert topo.is_connected()
        assert topo.diameter() == 0


class TestDerivedMaps:
    def test_copy_is_independent(self, triangle):
        dup = triangle.copy()
        dup.remove_link("a", "b")
        assert triangle.has_link("a", "b")

    def test_uniform_costs_covers_all_links(self, triangle):
        costs = triangle.uniform_costs(2.0)
        assert len(costs) == triangle.num_links
        assert all(v == 2.0 for v in costs.values())

    def test_idle_marginal_costs(self):
        topo = Topology()
        topo.add_link("a", "b", capacity=100.0, prop_delay=0.5)
        costs = topo.idle_marginal_costs()
        assert costs[("a", "b")] == pytest.approx(1.0 / 100.0 + 0.5)

    def test_subtopology(self, diamond):
        sub = subtopology(diamond, ["s", "a", "t"])
        assert set(sub.nodes) == {"s", "a", "t"}
        assert sub.has_link("s", "a") and sub.has_link("a", "t")
        assert not sub.has_node("b")
