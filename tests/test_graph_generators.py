"""Synthetic topology generators."""

import pytest

from repro.exceptions import TopologyError
from repro.graph.generators import (
    barabasi_albert,
    complete,
    grid,
    line,
    random_connected,
    ring,
    waxman,
)


class TestLine:
    def test_shape(self):
        topo = line(5)
        assert topo.num_nodes == 5
        assert topo.num_links == 8  # 4 duplex links
        assert topo.diameter() == 4

    def test_single_node(self):
        assert line(1).num_nodes == 1

    def test_rejects_zero(self):
        with pytest.raises(TopologyError):
            line(0)


class TestRing:
    def test_shape(self):
        topo = ring(6)
        assert topo.num_nodes == 6
        assert all(topo.degree(n) == 2 for n in topo.nodes)
        assert topo.diameter() == 3

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestGrid:
    def test_shape(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        # 3*3 horizontal + 2*4 vertical duplex links
        assert topo.num_links == 2 * (3 * 3 + 2 * 4)
        assert topo.diameter() == 5

    def test_degenerate_1x1(self):
        assert grid(1, 1).num_nodes == 1


class TestComplete:
    def test_shape(self):
        topo = complete(5)
        assert topo.num_links == 5 * 4
        assert topo.diameter() == 1


class TestRandomConnected:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_connected(self, seed):
        topo = random_connected(15, extra_links=5, seed=seed)
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_link_count(self):
        topo = random_connected(10, extra_links=4, seed=1)
        assert topo.num_links == 2 * (9 + 4)

    def test_reproducible(self):
        a = random_connected(10, extra_links=3, seed=42, jitter=0.3)
        b = random_connected(10, extra_links=3, seed=42, jitter=0.3)
        assert {l.link_id for l in a.links()} == {l.link_id for l in b.links()}
        assert [l.capacity for l in a.links()] == [l.capacity for l in b.links()]

    def test_jitter_varies_attributes(self):
        topo = random_connected(10, extra_links=3, seed=0, jitter=0.4)
        caps = {ln.capacity for ln in topo.links()}
        assert len(caps) > 1

    def test_too_many_chords_rejected(self):
        with pytest.raises(TopologyError):
            random_connected(4, extra_links=100, seed=0)


class TestWaxman:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_connected_and_symmetric(self, seed):
        topo = waxman(40, seed=seed)
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_deterministic_per_seed(self):
        a = waxman(50, seed=7)
        b = waxman(50, seed=7)
        assert [
            (l.head, l.tail, l.capacity, l.prop_delay) for l in a.links()
        ] == [(l.head, l.tail, l.capacity, l.prop_delay) for l in b.links()]

    def test_different_seeds_differ(self):
        a = {l.link_id for l in waxman(50, seed=1).links()}
        b = {l.link_id for l in waxman(50, seed=2).links()}
        assert a != b

    def test_degree_tracks_target_across_sizes(self):
        # The derived-alpha construction keeps mean degree roughly flat
        # as n grows (a fixed alpha would make it grow linearly).
        for n in (30, 100, 200):
            topo = waxman(n, seed=3, target_degree=3.5)
            mean_degree = topo.num_links / topo.num_nodes
            assert 2.0 <= mean_degree <= 6.0, (n, mean_degree)

    def test_delays_scale_with_distance(self):
        topo = waxman(60, seed=5)
        delays = [ln.prop_delay for ln in topo.links()]
        assert max(delays) > 1.5 * min(delays)
        mean = sum(delays) / len(delays)
        # Normalized so the mean link delay matches the requested one.
        assert mean == pytest.approx(0.001, rel=0.35)

    def test_rejects_bad_parameters(self):
        with pytest.raises(TopologyError):
            waxman(1)
        with pytest.raises(TopologyError):
            waxman(10, beta=0.0)
        with pytest.raises(TopologyError):
            waxman(10, target_degree=0.0)


class TestBarabasiAlbert:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_connected_and_symmetric(self, seed):
        topo = barabasi_albert(40, m=2, seed=seed)
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_deterministic_per_seed(self):
        a = barabasi_albert(50, m=2, seed=9)
        b = barabasi_albert(50, m=2, seed=9)
        assert [(l.head, l.tail) for l in a.links()] == [
            (l.head, l.tail) for l in b.links()
        ]

    def test_link_count(self):
        # m links per attached node on top of the m-link seed star.
        topo = barabasi_albert(30, m=2, seed=0)
        assert topo.num_links == 2 * (2 + (30 - 3) * 2)

    def test_hubs_emerge(self):
        topo = barabasi_albert(100, m=2, seed=4)
        degrees = [topo.degree(n) for n in topo.nodes]
        assert max(degrees) >= 4 * (sum(degrees) / len(degrees))

    def test_rejects_bad_parameters(self):
        with pytest.raises(TopologyError):
            barabasi_albert(2, m=2)
        with pytest.raises(TopologyError):
            barabasi_albert(10, m=0)
