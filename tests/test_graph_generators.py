"""Synthetic topology generators."""

import pytest

from repro.exceptions import TopologyError
from repro.graph.generators import complete, grid, line, random_connected, ring


class TestLine:
    def test_shape(self):
        topo = line(5)
        assert topo.num_nodes == 5
        assert topo.num_links == 8  # 4 duplex links
        assert topo.diameter() == 4

    def test_single_node(self):
        assert line(1).num_nodes == 1

    def test_rejects_zero(self):
        with pytest.raises(TopologyError):
            line(0)


class TestRing:
    def test_shape(self):
        topo = ring(6)
        assert topo.num_nodes == 6
        assert all(topo.degree(n) == 2 for n in topo.nodes)
        assert topo.diameter() == 3

    def test_minimum_size(self):
        with pytest.raises(TopologyError):
            ring(2)


class TestGrid:
    def test_shape(self):
        topo = grid(3, 4)
        assert topo.num_nodes == 12
        # 3*3 horizontal + 2*4 vertical duplex links
        assert topo.num_links == 2 * (3 * 3 + 2 * 4)
        assert topo.diameter() == 5

    def test_degenerate_1x1(self):
        assert grid(1, 1).num_nodes == 1


class TestComplete:
    def test_shape(self):
        topo = complete(5)
        assert topo.num_links == 5 * 4
        assert topo.diameter() == 1


class TestRandomConnected:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_connected(self, seed):
        topo = random_connected(15, extra_links=5, seed=seed)
        assert topo.is_connected()
        assert topo.is_symmetric()

    def test_link_count(self):
        topo = random_connected(10, extra_links=4, seed=1)
        assert topo.num_links == 2 * (9 + 4)

    def test_reproducible(self):
        a = random_connected(10, extra_links=3, seed=42, jitter=0.3)
        b = random_connected(10, extra_links=3, seed=42, jitter=0.3)
        assert {l.link_id for l in a.links()} == {l.link_id for l in b.links()}
        assert [l.capacity for l in a.links()] == [l.capacity for l in b.links()]

    def test_jitter_varies_attributes(self):
        topo = random_connected(10, extra_links=3, seed=0, jitter=0.4)
        caps = {ln.capacity for ln in topo.links()}
        assert len(caps) > 1

    def test_too_many_chords_rejected(self):
        with pytest.raises(TopologyError):
            random_connected(4, extra_links=100, seed=0)
