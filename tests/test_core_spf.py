"""The SP restriction helpers."""

import pytest

from repro.core.spf import restrict_successors, single_path_successors
from repro.graph.validation import is_loop_free


class TestRestrictSuccessors:
    def test_none_keeps_all(self):
        via = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert restrict_successors(via, None) == via

    def test_limit_one_keeps_best(self):
        via = {"a": 2.0, "b": 1.0, "c": 3.0}
        assert restrict_successors(via, 1) == {"b": 1.0}

    def test_limit_two(self):
        via = {"a": 2.0, "b": 1.0, "c": 3.0}
        assert set(restrict_successors(via, 2)) == {"a", "b"}

    def test_limit_larger_than_set(self):
        via = {"a": 1.0}
        assert restrict_successors(via, 5) == via

    def test_tie_break_deterministic(self):
        via = {"x": 1.0, "y": 1.0}
        assert restrict_successors(via, 1) == restrict_successors(via, 1)

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            restrict_successors({"a": 1.0, "b": 2.0}, 0)

    def test_empty_passthrough(self):
        assert restrict_successors({}, 1) == {}


class TestSinglePathSuccessors:
    def test_loop_free_and_single(self, small_grid):
        costs = small_grid.uniform_costs(1.0)
        dest = (2, 2)
        succ = single_path_successors(small_grid, costs, dest)
        assert is_loop_free(succ)
        for node, chosen in succ.items():
            if node != dest:
                assert len(chosen) == 1
