"""Convergence analytics and run reports over the event stream."""

import json

import pytest

from repro import obs
from repro.bench.convergence import (
    converge_experiment,
    failover_experiment,
    pick_failure_link,
    render_failover_table,
)
from repro.graph.topologies import cairn, net1
from repro.graph.topology import Topology
from repro.obs.convergence import (
    audit_outcome,
    convergence_windows,
    delay_decomposition,
    delay_quantiles,
    read_trace,
    successor_churn_series,
    unknown_event_summary,
)
from repro.obs.report import build_report, render_report, write_report


def _events():
    """A hand-built two-window trace."""
    return [
        {"kind": "disturbance", "op": "start", "link": None, "delivered": 0},
        {"kind": "active_enter", "node": "a", "delivered": 1},
        {"kind": "dist_change", "node": "a", "dests": ["t"], "delivered": 3},
        {"kind": "dist_change", "node": "b", "dests": ["t", "u"],
         "delivered": 7},
        {"kind": "quiescent", "delivered": 10, "messages": 10,
         "wall_s": 0.5},
        {"kind": "audit_summary", "checks": 10, "violations": 0,
         "verdict": "pass", "delivered": 10},
        {"kind": "disturbance", "op": "link_down", "link": ["a", "b"],
         "delivered": 10},
        {"kind": "dist_change", "node": "a", "dests": ["u"],
         "delivered": 12},
        {"kind": "quiescent", "delivered": 15, "messages": 5,
         "wall_s": 0.1},
        {"kind": "route_update", "update": 1, "churn": 3},
        {"kind": "route_update", "update": 2, "churn": 0},
    ]


class TestWindows:
    def test_grouping_and_counts(self):
        windows = convergence_windows(_events())
        assert len(windows) == 2
        first, second = windows
        assert first.label == "start"
        assert first.messages == 10
        assert first.active_entries == 1
        assert first.destination_messages() == {"t": 7, "u": 7}
        assert first.slowest_destination() == ("t", 7)
        assert first.audit["verdict"] == "pass"
        assert second.label == "link_down"
        assert second.messages == 5
        assert second.destination_messages() == {"u": 2}

    def test_batched_disturbances_share_a_window(self):
        events = [
            {"kind": "disturbance", "op": "link_cost_change",
             "link": ["a", "b"], "delivered": 0},
            {"kind": "disturbance", "op": "link_cost_change",
             "link": ["b", "c"], "delivered": 0},
            {"kind": "quiescent", "delivered": 4, "messages": 4},
        ]
        windows = convergence_windows(events)
        assert len(windows) == 1
        assert windows[0].label == "link_cost_change"
        assert len(windows[0].links) == 2

    def test_open_window_reports_none(self):
        events = [
            {"kind": "disturbance", "op": "start", "link": None,
             "delivered": 0},
        ]
        (window,) = convergence_windows(events)
        assert not window.closed
        assert window.messages is None
        assert window.as_dict()["messages"] is None

    def test_churn_series(self):
        assert successor_churn_series(_events()) == [(1, 3), (2, 0)]


class TestMetricsReaders:
    def test_delay_readers_absent_without_packet_data(self):
        assert delay_decomposition({}) is None
        assert delay_quantiles({}) is None

    def test_decomposition_fractions_sum_to_one(self):
        metrics = {
            "gauges": {
                "netsim.delay.queueing_s": {"": {"value": 1.0}},
                "netsim.delay.transmission_s": {"": {"value": 2.0}},
                "netsim.delay.propagation_s": {"": {"value": 1.0}},
            }
        }
        decomposition = delay_decomposition(metrics)
        assert decomposition["total_s"] == pytest.approx(4.0)
        assert sum(decomposition["fractions"].values()) == pytest.approx(
            1.0
        )

    def test_audit_outcome_verdicts(self):
        assert audit_outcome({})["verdict"] == "no-data"
        clean = {
            "counters": {
                "lfi_audit.checks": {"": {"value": 5}},
                "lfi_audit.violations": {"": {"value": 0}},
            }
        }
        assert audit_outcome(clean)["verdict"] == "pass"
        dirty = {
            "counters": {
                "lfi_audit.checks": {"": {"value": 5}},
                "lfi_audit.violations": {"": {"value": 2}},
            }
        }
        outcome = audit_outcome(dirty)
        assert outcome["verdict"] == "fail"
        assert outcome["violations"] == 2


class TestReport:
    def test_build_and_render(self):
        report = build_report(_events(), None, source={"trace": "t"})
        assert report["schema"] == "repro.report/2"
        assert len(report["windows"]) == 2
        assert report["churn"] == {
            "route_updates": 2, "total": 3, "max": 3,
        }
        text = render_report(report)
        assert "convergence windows" in text
        assert "link_down" in text
        assert "successor churn" in text

    def test_write_round_trips(self, tmp_path):
        report = build_report(_events())
        path = tmp_path / "r.json"
        write_report(str(path), report)
        assert json.loads(path.read_text()) == report

    def test_report_without_windows_still_renders(self):
        text = render_report(build_report([]))
        assert "no disturbance events" in text


class TestForwardCompat:
    """A trace from a *future* version must degrade gracefully.

    Consumers skip-and-count: an unknown event kind never raises, an
    extra field on a known kind never raises, and both show up in the
    report's ``events.unknown`` summary instead of vanishing silently.
    """

    def _future_events(self):
        events = _events()
        # A kind this version has never heard of.
        events.insert(3, {"kind": "teleport", "node": "a", "wormhole": 9,
                          "delivered": 4})
        # A known kind that grew an undeclared field.
        events.insert(4, {"kind": "dist_change", "node": "c",
                          "dests": ["t"], "delivered": 5,
                          "confidence": 0.99})
        return events

    def test_windows_skip_unknown_kinds(self):
        windows = convergence_windows(self._future_events())
        assert len(windows) == 2
        # The decorated dist_change still counts toward its window.
        assert windows[0].destination_messages()["t"] == 7

    def test_unknown_event_summary_counts(self):
        summary = unknown_event_summary(self._future_events())
        assert summary["kinds"] == {"teleport": 1}
        assert summary["events"] == 1
        assert summary["fields"] == {"dist_change": 1}

    def test_report_surfaces_unknown_summary(self):
        report = build_report(self._future_events())
        assert report["events"]["unknown"]["kinds"] == {"teleport": 1}
        text = render_report(report)
        assert "unknown kind" in text and "teleport" in text

    def test_clean_trace_reports_nothing_unknown(self):
        summary = unknown_event_summary(_events())
        assert summary["events"] == 0
        assert summary["kinds"] == {}
        assert summary["fields"] == {}


class TestFailureLinkChoice:
    def test_never_picks_a_bridge(self):
        # A path graph a-b-c: both links are bridges.
        topo = Topology("path")
        topo.add_duplex_link("a", "b", capacity=1.0)
        topo.add_duplex_link("b", "c", capacity=1.0)
        with pytest.raises(ValueError):
            pick_failure_link(topo)

    def test_choice_is_deterministic(self):
        assert pick_failure_link(net1()) == pick_failure_link(net1())
        assert pick_failure_link(cairn()) == pick_failure_link(cairn())


class TestFailoverExperiment:
    def test_net1_counts_and_audit(self):
        with obs.observe(audit=True):
            result = failover_experiment(net1(), "NET1", seed=0)
        assert result.cold_messages > 0
        assert result.fail_messages > 0
        assert result.restore_messages > 0
        assert result.audit["verdict"] == "pass"
        assert result.audit["violations"] == 0

    def test_runs_without_observation(self):
        result = failover_experiment(net1(), "NET1", seed=0)
        assert result.cold_messages > 0
        assert result.audit == {}

    def test_table_lists_topologies(self):
        with obs.observe(audit=True, audit_sample=50):
            results = converge_experiment(
                seed=0, topologies=("net1",)
            )
        text = render_failover_table(results)
        assert "NET1" in text and "pass" in text


class TestTraceIntegration:
    def test_failover_trace_yields_three_windows(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), audit=True):
            failover_experiment(net1(), "NET1", seed=0)
        windows = convergence_windows(read_trace(str(trace)))
        assert [w.label for w in windows] == [
            "start", "link_down", "link_up",
        ]
        assert all(w.closed for w in windows)
        assert all(w.audit["verdict"] == "pass" for w in windows)
