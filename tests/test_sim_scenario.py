"""Scenarios: the paper's workloads and the bursty wrapper."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.scenario import (
    BurstyScenario,
    bursty_scenario,
    cairn_scenario,
    net1_scenario,
)
from repro.units import mbps


class TestPaperScenarios:
    def test_cairn_eleven_flows(self):
        sc = cairn_scenario()
        assert len(sc.traffic) == 11
        sc.traffic.validate_against(sc.topo)

    def test_net1_ten_flows(self):
        sc = net1_scenario()
        assert len(sc.traffic) == 10
        sc.traffic.validate_against(sc.topo)

    def test_load_scales_rates(self):
        light = net1_scenario(load=1.0)
        heavy = net1_scenario(load=2.0)
        assert heavy.traffic.total_rate() == pytest.approx(
            2 * light.traffic.total_rate()
        )

    def test_rates_within_configured_band(self):
        sc = net1_scenario(rate_low_mbps=1.0, rate_high_mbps=3.0)
        for flow in sc.traffic.flows:
            assert mbps(1.0) <= flow.rate <= mbps(3.0)

    def test_seed_reproducible(self):
        a = cairn_scenario(seed=9)
        b = cairn_scenario(seed=9)
        assert [f.rate for f in a.traffic.flows] == [
            f.rate for f in b.traffic.flows
        ]

    def test_stationary_traffic_time_invariant(self):
        sc = net1_scenario()
        assert sc.traffic_at(0.0) is sc.traffic_at(1000.0)

    def test_flow_labels(self):
        sc = net1_scenario()
        assert sc.flow_labels == [f"f{i}" for i in range(10)]


class TestBurstyScenario:
    def _scenario(self, **kw):
        return bursty_scenario(net1_scenario(load=0.5), **kw)

    def test_instantaneous_rate_is_peak_or_zero(self):
        sc = self._scenario(burstiness=3.0, seed=1)
        base = {f.label(): f.rate for f in sc.traffic.flows}
        seen_on = False
        for t in range(0, 200, 5):
            tm = sc.traffic_at(float(t))
            for flow in tm.flows:
                assert flow.rate == pytest.approx(3.0 * base[flow.label()])
                seen_on = True
        assert seen_on

    def test_mean_rate_preserved_over_time(self):
        """Time-average of the modulated rate ~= the base rate."""
        sc = self._scenario(burstiness=3.0, mean_on=4.0, seed=2, horizon=4000)
        label = sc.traffic.flows[0].label()
        base = sc.traffic.flows[0].rate
        samples = [
            sc.traffic_at(float(t)).rate(
                sc.traffic.flows[0].source, sc.traffic.flows[0].destination
            )
            for t in range(0, 4000)
        ]
        assert sum(samples) / len(samples) == pytest.approx(base, rel=0.2)

    def test_mean_traffic_is_base(self):
        sc = self._scenario()
        assert sc.mean_traffic() is sc.traffic

    def test_deterministic_given_seed(self):
        a = self._scenario(seed=5)
        b = self._scenario(seed=5)
        for t in (0.0, 10.0, 50.0, 99.0):
            assert {f.label() for f in a.traffic_at(t)} == {
                f.label() for f in b.traffic_at(t)
            }

    def test_flows_desynchronized(self):
        """Not all flows burst in lockstep."""
        sc = self._scenario(seed=3)
        patterns = set()
        for t in range(0, 100, 2):
            active = frozenset(f.label() for f in sc.traffic_at(float(t)))
            patterns.add(active)
        assert len(patterns) > 3

    def test_invalid_burstiness(self):
        with pytest.raises(SimulationError):
            self._scenario(burstiness=1.0)

    def test_name_tagging(self):
        sc = self._scenario(burstiness=2.5)
        assert "bursty2.5" in sc.name
