"""The discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.netsim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append("late"))
        engine.schedule(1.0, lambda: fired.append("early"))
        engine.schedule(2.0, lambda: fired.append("middle"))
        engine.run()
        assert fired == ["early", "middle", "late"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_tier_orders_simultaneous_events(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("control"), tier=1)
        engine.schedule(1.0, lambda: fired.append("data"), tier=0)
        engine.run()
        assert fired == ["data", "control"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_now_advances(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [2.5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert not handle.active

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run()
        handle.cancel()  # must not raise


class TestRunControl:
    def test_run_until_advances_clock_even_when_idle(self):
        engine = Engine()
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_run_until_leaves_future_events(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(1))
        engine.schedule(15.0, lambda: fired.append(2))
        engine.run(until=10.0)
        assert fired == [1]
        engine.run()
        assert fired == [1, 2]

    def test_event_budget(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_pending_counts_active_only(self):
        engine = Engine()
        h1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        h1.cancel()
        assert engine.pending() == 1


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        engine = Engine()
        fired = []
        engine.every(1.0, lambda: fired.append(engine.now))
        engine.run(until=5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_every_with_start(self):
        engine = Engine()
        fired = []
        engine.every(2.0, lambda: fired.append(engine.now), start=1.0)
        engine.run(until=6.0)
        assert fired == [1.0, 3.0, 5.0]

    def test_cancel_stops_series(self):
        engine = Engine()
        fired = []
        handle = engine.every(1.0, lambda: fired.append(engine.now))
        engine.run(until=2.5)
        handle.cancel()
        engine.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            Engine().every(0.0, lambda: None)
