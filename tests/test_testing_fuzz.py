"""The schedule-fuzzing harness and its replay artifacts."""

import json

import pytest

from repro.cli import build_parser, main
from repro.exceptions import AllocationError
from repro.testing import fuzz as run_fuzz
from repro.testing.fuzz import (
    ARTIFACT_VERSION,
    FaultProfile,
    FuzzCase,
    _audit_policy,
    _schedule_valid,
    build_topology,
    check_case,
    examine_case,
    generate_case,
    load_artifact,
    minimize_case,
    replay,
    run_case,
    run_policy_case,
    unreliable,
    write_artifact,
)

#: The zoo members with a dynamic lifecycle (everything fuzzable except
#: the protocol itself; "opt" is stationary by design and not fuzzed).
ZOO_POLICIES = (
    "mp-oracle",
    "sp",
    "ecmp",
    "ecmp-hop",
    "ecmp-k",
    "backpressure-lr",
)


class TestGeneration:
    def test_same_seed_same_case(self):
        assert generate_case(5) == generate_case(5)
        assert generate_case(5) != generate_case(6)

    def test_cases_are_json_round_trippable(self):
        for seed in range(10):
            case = generate_case(seed)
            doc = json.loads(json.dumps(case.as_dict()))
            clone = FuzzCase.from_dict(doc)
            # Tuples become lists through JSON; compare the canonical form.
            assert clone.as_dict() == case.as_dict()

    def test_schedules_are_valid_against_link_state(self):
        """Failures only hit up links, restores only down links."""
        for seed in range(30):
            case = generate_case(seed)
            topo = build_topology(case.topology)
            up = {
                tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()
            }
            down = set()
            for event in case.schedule:
                op, *args = event
                if op == "fail_link":
                    pair = tuple(sorted(args[:2], key=repr))
                    assert pair in up
                    up.discard(pair)
                    down.add(pair)
                elif op == "restore_link":
                    pair = tuple(sorted(args[:2], key=repr))
                    assert pair in down
                    down.discard(pair)
                    up.add(pair)
                elif op == "partition":
                    assert tuple(sorted(args[:2], key=repr)) in up

    def test_unknown_topology_spec_rejected(self):
        with pytest.raises(ValueError):
            build_topology({"kind": "mystery"})


class TestExecution:
    def test_reliable_cases_always_pass(self):
        """The tentpole property: with the delivery model enforced,
        every adversarial schedule converges with a clean audit."""
        for seed in range(8):
            assert check_case(generate_case(seed)) is None

    def test_run_case_reports_stats(self):
        result = run_case(generate_case(0))
        assert result["delivered"] > 0
        assert result["message_stats"]["lsu_sent"] > 0
        assert "data_sent" in result["transport"]

    def test_replay_is_deterministic(self):
        case = generate_case(3)
        assert run_case(case) == run_case(case)

    def test_unknown_schedule_op_rejected(self):
        case = generate_case(0)
        broken = FuzzCase(
            seed=case.seed,
            topology=case.topology,
            profile=case.profile,
            schedule=(("explode",),),
            driver_seed=case.driver_seed,
        )
        with pytest.raises(ValueError):
            run_case(broken)


class TestArtifacts:
    def _failing_case(self):
        """A deliberately-broken case: the reliable shim stripped, so the
        paper's delivery assumption is violated (seed 100 is known to
        fail; scan forward defensively)."""
        for seed in range(100, 120):
            case = generate_case(seed, reliable=False)
            failure = check_case(case)
            if failure is not None:
                return case, failure
        pytest.fail("no raw-channel failure found in seeds 100..119")

    def test_artifact_round_trip_and_replay(self, tmp_path):
        case, failure = self._failing_case()
        path = str(tmp_path / "case.json")
        write_artifact(path, case, failure)
        loaded_case, recorded = load_artifact(path)
        assert loaded_case.as_dict() == case.as_dict()
        assert recorded == failure
        result = replay(path)
        assert result.reproduced
        assert "reproduced" in result.render()

    def test_replay_detects_divergence(self, tmp_path):
        case, failure = self._failing_case()
        path = str(tmp_path / "case.json")
        write_artifact(path, case, {"type": "Phantom", "message": "nope"})
        result = replay(path)
        assert not result.reproduced
        assert result.observed == failure
        assert "NOT reproduced" in result.render()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": ARTIFACT_VERSION + 1}))
        with pytest.raises(ValueError):
            load_artifact(str(path))


class TestFuzzLoop:
    def test_reliable_fuzz_is_clean(self, tmp_path):
        report = run_fuzz(4, seed=0, out_dir=str(tmp_path))
        assert report.clean and report.cases == 4
        assert list(tmp_path.iterdir()) == []  # no artifacts on clean runs
        assert "4 cases, 0 failure(s)" in report.render()

    def test_mutated_fuzz_writes_replayable_artifacts(self, tmp_path):
        """Break the delivery model on purpose: the loop must catch it,
        artifact it, and the artifact must replay deterministically."""
        report = run_fuzz(
            3, seed=100, out_dir=str(tmp_path), mutate=unreliable
        )
        assert not report.clean
        assert len(report.artifacts) == len(report.failures)
        for artifact in report.artifacts:
            assert replay(artifact).reproduced
        rendered = report.render()
        assert "repro replay" in rendered


class TestPolicyCases:
    def test_policy_does_not_consume_randomness(self):
        """Same seed -> same adversarial inputs for every policy."""
        base = generate_case(4)
        zoo = generate_case(4, policy="ecmp-k")
        assert zoo.policy == "ecmp-k"
        assert zoo.schedule == base.schedule
        assert zoo.topology == base.topology
        assert zoo.profile == base.profile

    def test_policy_field_survives_json(self):
        case = generate_case(2, policy="backpressure-lr")
        clone = FuzzCase.from_dict(json.loads(json.dumps(case.as_dict())))
        assert clone.policy == "backpressure-lr"

    def test_pre_v3_documents_load_as_mp(self):
        doc = generate_case(1).as_dict()
        del doc["policy"]  # v1/v2 artifacts have no policy field
        assert FuzzCase.from_dict(doc).policy == "mp"

    @pytest.mark.parametrize("policy", ZOO_POLICIES)
    def test_zoo_policies_survive_the_schedule(self, policy):
        verdict = examine_case(generate_case(1, policy=policy))
        assert verdict["status"] == "pass", verdict
        assert verdict["metrics"]["events"] >= 2
        assert verdict["metrics"]["route_updates"] >= 1

    def test_run_policy_case_rejects_mp(self):
        with pytest.raises(ValueError):
            run_policy_case(generate_case(0))

    def test_audit_rejects_split_to_non_neighbor(self):
        topo = build_topology({"kind": "named", "name": "cairn"})
        up = {
            tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()
        }
        nodes = topo.nodes

        class Bogus:
            name = "bogus"
            loop_free = False

            def audit_loop_free(self):
                pass

            def fractions(self, node, dest):
                # Every node claims a successor that is not a neighbor.
                return {dest: 1.0} if dest not in topo.neighbors(node) else {}

        with pytest.raises(AllocationError):
            _audit_policy(Bogus(), topo, up, nodes)

    def test_audit_rejects_fractions_not_summing_to_one(self):
        topo = build_topology({"kind": "named", "name": "cairn"})
        up = {
            tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()
        }

        class Half:
            name = "half"
            loop_free = False

            def audit_loop_free(self):
                pass

            def fractions(self, node, dest):
                neighbors = topo.neighbors(node)
                return {neighbors[0]: 0.5}

        with pytest.raises(AllocationError):
            _audit_policy(Half(), topo, up, topo.nodes)


class TestVerdictsAndMinimization:
    def test_examine_pass_has_metrics(self):
        verdict = examine_case(generate_case(0))
        assert verdict["status"] == "pass"
        assert verdict["metrics"]["delivered"] > 0

    def test_examine_violation_matches_check_case(self):
        case = generate_case(100, reliable=False)
        verdict = examine_case(case)
        failure = check_case(case)
        if failure is None:
            assert verdict["status"] == "pass"
        else:
            assert verdict["status"] == "violation"
            assert verdict["failure"] == failure

    def _failing_case(self):
        for seed in range(100, 120):
            case = generate_case(seed, reliable=False)
            failure = check_case(case)
            if failure is not None:
                return case, failure
        pytest.fail("no raw-channel failure found in seeds 100..119")

    def test_minimize_preserves_failure_type(self, tmp_path):
        case, failure = self._failing_case()
        small, observed = minimize_case(case)
        assert observed["type"] == failure["type"]
        assert len(small.schedule) <= len(case.schedule)
        # The minimized pair is a valid replay artifact.
        path = str(tmp_path / "min.json")
        write_artifact(path, small, observed)
        assert replay(path).reproduced

    def test_minimize_requires_a_failing_case(self):
        with pytest.raises(ValueError):
            minimize_case(generate_case(0))

    def test_schedule_validity_after_removals(self):
        case = generate_case(0)
        assert _schedule_valid(case.topology, case.schedule)
        # A restore with its fail removed is invalid.
        topo = case.topology
        pair = None
        for ln in build_topology(topo).links():
            pair = tuple(sorted(ln.link_id, key=repr))
            break
        orphaned = (("restore_link", pair[0], pair[1]),)
        assert not _schedule_valid(topo, orphaned)


class TestProfile:
    def test_build_transport_respects_reliable_flag(self):
        reliable = FaultProfile(loss=0.1).build_transport()
        raw = FaultProfile(loss=0.1, reliable=False).build_transport()
        assert type(reliable).__name__ == "ReliableTransport"
        assert type(raw).__name__ == "FaultyChannel"

    def test_max_retries_threaded_through(self):
        transport = FaultProfile(max_retries=3).build_transport()
        assert transport.max_retries == 3


class TestCLI:
    def test_fuzz_parser(self):
        args = build_parser().parse_args(
            ["fuzz", "-n", "7", "--seed", "2", "--raw", "--out-dir", "d"]
        )
        assert args.command == "fuzz"
        assert args.iterations == 7
        assert args.seed == 2
        assert args.raw
        assert args.out_dir == "d"

    def test_replay_parser_requires_artifact(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])

    def test_loss_sweep_parser(self):
        args = build_parser().parse_args(
            ["loss-sweep", "--topo", "net1", "--rates", "0", "0.1"]
        )
        assert args.command == "loss-sweep"
        assert args.rates == [0.0, 0.1]

    def test_fuzz_clean_exits_zero(self, tmp_path, capsys):
        code = main(
            ["fuzz", "-n", "2", "--seed", "0", "--out-dir", str(tmp_path)]
        )
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_raw_fuzz_fails_and_replays(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "-n",
                "1",
                "--seed",
                "100",
                "--raw",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 1
        artifacts = sorted(tmp_path.iterdir())
        assert len(artifacts) == 1
        capsys.readouterr()
        assert main(["replay", str(artifacts[0])]) == 0
        assert "reproduced" in capsys.readouterr().out
