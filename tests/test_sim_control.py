"""The unified two-timescale controller and its pluggable data planes.

Covers what the refactor promises: validation lives in one place (same
error text from either config class), scenario dynamics behave the same
on both planes — a packet-plane link failure actually reroutes traffic
and emits ``link_down`` / ``link_up`` trace events under a clean
invariant audit — and the two planes cross-validate on the paper's
CAIRN workload through the *same* controller.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.exceptions import SimulationError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.netsim.engine import Engine
from repro.netsim.traffic import ScheduledSource
from repro.sim.control import (
    FluidPlane,
    PacketPlane,
    PacketRunConfig,
    QuasiStaticConfig,
    RunConfig,
    run,
)
from repro.sim.scenario import (
    Scenario,
    bursty_scenario,
    cairn_scenario,
    with_failures,
)

CONFIG_CLASSES = [RunConfig, QuasiStaticConfig, PacketRunConfig]


@pytest.fixture
def diamond_scenario(diamond):
    return Scenario(
        name="diamond",
        topo=diamond,
        traffic=TrafficMatrix([Flow("s", "t", 600.0, name="hot")]),
    )


class TestSharedValidation:
    """One copy of the Ts/Tl validation, identical for every plane."""

    @pytest.mark.parametrize("config_cls", CONFIG_CLASSES)
    def test_non_positive_intervals(self, config_cls):
        with pytest.raises(SimulationError, match="must be positive"):
            config_cls(tl=10.0, ts=0.0)
        with pytest.raises(SimulationError, match="must be positive"):
            config_cls(tl=-1.0, ts=2.0)

    @pytest.mark.parametrize("config_cls", CONFIG_CLASSES)
    def test_ts_longer_than_tl(self, config_cls):
        with pytest.raises(
            SimulationError,
            match=r"Tl \(2\.0\) must be at least Ts \(10\.0\)",
        ):
            config_cls(tl=2.0, ts=10.0)

    @pytest.mark.parametrize("config_cls", CONFIG_CLASSES)
    def test_non_integer_multiple(self, config_cls):
        with pytest.raises(
            SimulationError,
            match=r"Tl must be an integer multiple of Ts "
            r"\(got Tl=10\.0, Ts=3\.0\)",
        ):
            config_cls(tl=10.0, ts=3.0)

    @pytest.mark.parametrize("config_cls", CONFIG_CLASSES)
    def test_duration_within_warmup(self, config_cls):
        with pytest.raises(SimulationError, match="exceed warmup"):
            config_cls(tl=2.0, ts=2.0, duration=10.0, warmup=10.0)

    def test_messages_identical_across_planes(self):
        """The exact text comes from the shared base class."""
        errors = []
        for config_cls in CONFIG_CLASSES:
            with pytest.raises(SimulationError) as info:
                config_cls(tl=10.0, ts=3.0)
            errors.append(str(info.value))
        assert len(set(errors)) == 1

    def test_labels(self):
        assert QuasiStaticConfig(tl=10, ts=2).label == "MP-TL-10-TS-2"
        assert PacketRunConfig(tl=10, ts=2).label == "MP-TL-10-TS-2(pkt)"
        assert (
            PacketRunConfig(tl=10, ts=2, successor_limit=1).label
            == "SP-TL-10(pkt)"
        )
        assert (
            QuasiStaticConfig(tl=10, ts=2, path_rule="ecmp").label
            == "ECMP-TL-10-TS-2"
        )


class TestPlaneSelection:
    def test_config_type_picks_plane(self, diamond_scenario):
        fluid = run(
            diamond_scenario,
            QuasiStaticConfig(tl=4, ts=2, duration=12, warmup=4),
        )
        packet = run(
            diamond_scenario, PacketRunConfig(tl=4, ts=2, duration=8.0)
        )
        assert fluid.plane == "fluid"
        assert packet.plane == "packet"
        assert len(packet.records) == 4  # one per Ts window

    def test_explicit_plane_override(self, diamond_scenario):
        config = PacketRunConfig(tl=4, ts=2, duration=8.0)
        plane = PacketPlane(diamond_scenario, config)
        result = run(diamond_scenario, config, plane=plane)
        # The plane handle stays inspectable after the run.
        assert plane.network.flow_monitor.total_delivered() > 0
        assert result.plane == "packet"


class TestPacketFailureReroute:
    """The satellite regression: packet-plane outages are not a no-op."""

    def make_scenario(self, diamond, *, until=24.0):
        base = Scenario(
            name="diamond-outage",
            topo=diamond,
            traffic=TrafficMatrix([Flow("s", "t", 600.0, name="hot")]),
        )
        return with_failures(base, {("s", "a"): [(8.0, until)]})

    def run_with_outage(self, diamond, *, until=24.0, observe_kwargs=None):
        scenario = self.make_scenario(diamond, until=until)
        config = PacketRunConfig(
            tl=4, ts=2, duration=24.0, damping=0.5, seed=3
        )
        plane = PacketPlane(scenario, config)
        if observe_kwargs is None:
            return run(scenario, config, plane=plane), plane, None
        with obs.observe(**observe_kwargs) as ob:
            result = run(scenario, config, plane=plane)
        return result, plane, ob

    def test_failed_link_stops_carrying_traffic(self, diamond):
        # Outage lasts to the end of the run: whatever the (s, a) link
        # carried, it carried before t=8.  The baseline run bounds what
        # it would have carried without the outage.
        baseline_config = PacketRunConfig(
            tl=4, ts=2, duration=24.0, damping=0.5, seed=3
        )
        baseline_scenario = Scenario(
            name="diamond-outage",
            topo=diamond,
            traffic=TrafficMatrix([Flow("s", "t", 600.0, name="hot")]),
        )
        baseline_plane = PacketPlane(baseline_scenario, baseline_config)
        run(baseline_scenario, baseline_config, plane=baseline_plane)

        result, plane, _ = self.run_with_outage(diamond, until=24.0)
        carried = plane.network.links[("s", "a")].monitor.total_packets
        baseline = baseline_plane.network.links[
            ("s", "a")
        ].monitor.total_packets
        assert baseline > 0
        assert carried < 0.5 * baseline

        # Traffic kept flowing: every window after the failure still
        # delivers at a healthy fraction of the offered rate.
        during = [r for r in result.records if r.time >= 8.0]
        assert during
        for record in during:
            assert record.metrics["delivered"] > 0.5 * 600.0 * 2.0
        # The queued packets lost with the link are the only casualties.
        monitor = plane.network.flow_monitor
        assert monitor.total_dropped() < 0.01 * monitor.total_injected()

    def test_trace_events_and_clean_audit(self, diamond, tmp_path):
        trace = tmp_path / "outage.jsonl"
        result, _, ob = self.run_with_outage(
            diamond,
            until=16.0,
            observe_kwargs={"trace_path": str(trace), "audit": True},
        )
        events = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        downs = [e for e in events if e["kind"] == "link_down"]
        ups = [e for e in events if e["kind"] == "link_up"]
        # Both directions of the duplex link, down at 8 and up at 16.
        assert {e["t"] for e in downs} == {8.0}
        assert {e["t"] for e in ups} == {16.0}
        assert len(downs) == len(ups) == 2
        assert all(e["plane"] == "packet" for e in downs + ups)

        # The run upgraded to the live protocol and the online auditor
        # saw the reconvergence: loop freedom held at every delivery.
        assert result.protocol_stats["delivered"] > 0
        summary = ob.auditor.summary()
        assert summary["verdict"] == "pass"
        assert summary["violations"] == 0
        assert summary["checks"] > 0

    def test_fluid_failure_runs_upgrade_to_protocol(self, diamond):
        # The old runner excluded outage scenarios from the
        # oracle->protocol upgrade; the controller feeds the driver
        # link_down/link_up events, so the exclusion is gone.
        scenario = self.make_scenario(diamond, until=16.0)
        config = QuasiStaticConfig(
            tl=4, ts=2, duration=24.0, warmup=0.0, damping=0.5
        )
        with obs.observe(audit=True) as ob:
            result = run(scenario, config)
            summary = ob.auditor.summary()
        assert result.plane == "fluid"
        assert result.protocol_stats["delivered"] > 0
        assert summary["verdict"] == "pass"
        assert summary["violations"] == 0


class TestCrossValidation:
    def test_cairn_fluid_vs_packet_same_controller(self):
        """The paper's CAIRN workload through both planes.

        The analytic M/M/1 evaluation and the discrete-event simulation
        must tell the same story when driven by the identical control
        loop: network mean delays within a modest tolerance, per-flow
        delays within sampling noise of each other.
        """
        scenario = cairn_scenario(load=1.0)
        fluid = run(
            scenario,
            QuasiStaticConfig(
                tl=10, ts=2, duration=40.0, warmup=10.0, damping=0.5
            ),
        )
        packet = run(
            scenario,
            PacketRunConfig(
                tl=10, ts=2, duration=40.0, warmup=10.0, damping=0.5, seed=0
            ),
        )
        assert fluid.mean_average_delay() == pytest.approx(
            packet.mean_average_delay(), rel=0.25
        )
        fluid_flows = fluid.mean_flow_delays()
        packet_flows = packet.mean_flow_delays()
        assert set(fluid_flows) == set(packet_flows)
        within_2x = sum(
            0.5 < packet_flows[name] / fluid_flows[name] < 2.0
            for name in fluid_flows
        )
        assert within_2x >= len(fluid_flows) - 1


class TestBurstyPacketSchedule:
    def test_scheduled_source_follows_periods(self):
        import random

        engine = Engine()
        emitted = []
        flow = Flow("s", "t", 100.0, name="x")
        ScheduledSource(
            engine,
            lambda packet: emitted.append(engine.now),
            flow,
            random.Random(1),
            periods=[(1.0, 2.0), (5.0, 6.5)],
            peak_rate=400.0,
        )
        engine.run(until=10.0)
        assert emitted
        assert all(
            1.0 <= t < 2.0 or 5.0 <= t < 6.5 for t in emitted
        )
        # ~400 pkt/s over 2.5 on-seconds
        assert 600 < len(emitted) < 1400

    def test_packet_plane_replays_scenario_schedule(self, diamond):
        base = Scenario(
            name="diamond",
            topo=diamond,
            traffic=TrafficMatrix([Flow("s", "t", 300.0, name="x")]),
        )
        scenario = bursty_scenario(base, burstiness=3.0, seed=2)
        result = run(
            scenario, PacketRunConfig(tl=4, ts=2, duration=16.0, seed=1)
        )
        # Windows where the schedule says "off" deliver (almost) nothing
        # beyond the tail of in-flight packets; "on" windows are hot.
        on_windows = [
            r
            for r in result.records
            if scenario.is_on("x", r.time)
            or scenario.is_on("x", r.time + 1.0)
        ]
        assert on_windows
        assert max(r.metrics["delivered"] for r in on_windows) > 100
