"""Gallager's OPT: descent, optimality, and a convex-programming oracle."""

import numpy as np
import pytest
from scipy import optimize as sciopt

from repro.exceptions import RoutingError
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import evaluate, link_flows
from repro.fluid.flows import Flow, TrafficMatrix
from repro.gallager.opt import optimize, shortest_path_phi
from repro.gallager.marginals import optimality_gap
from repro.graph.generators import random_connected
from repro.fluid.flows import uniform_random_rates


class TestShortestPathPhi:
    def test_is_single_path(self, diamond):
        phi = shortest_path_phi(diamond, ["t"])
        for node in ("s", "a", "b"):
            assert list(phi[node]["t"].values()) == [1.0]

    def test_unreachable_destination_left_empty(self):
        from repro.graph.topology import Topology

        topo = Topology()
        topo.add_duplex_link("a", "b")
        topo.add_node("z")  # isolated
        phi = shortest_path_phi(topo, ["z"])
        assert phi["a"] == {} and phi["b"] == {}

    def test_respects_custom_costs(self, diamond):
        costs = {ln.link_id: 1.0 for ln in diamond.links()}
        costs[("s", "a")] = 100.0  # push everything via b
        phi = shortest_path_phi(diamond, ["t"], costs)
        assert phi["s"]["t"] == {"b": 1.0}


class TestDescent:
    def test_monotone_history(self, diamond, diamond_traffic):
        result = optimize(diamond, diamond_traffic, eta=0.2, max_iterations=500)
        for earlier, later in zip(result.history, result.history[1:]):
            assert later <= earlier + 1e-9

    def test_improves_over_shortest_path(self, diamond, diamond_traffic):
        result = optimize(diamond, diamond_traffic, eta=0.2, max_iterations=500)
        assert result.total_delay < result.initial_delay * 0.9

    def test_converged_flag(self, diamond, diamond_traffic):
        result = optimize(
            diamond, diamond_traffic, eta=0.3, max_iterations=2000
        )
        assert result.converged

    def test_eta_controls_speed(self, diamond, diamond_traffic):
        slow = optimize(
            diamond, diamond_traffic, eta=0.01, max_iterations=4000
        )
        fast = optimize(
            diamond, diamond_traffic, eta=0.3, max_iterations=4000
        )
        assert fast.iterations < slow.iterations

    def test_property1_preserved(self, diamond, diamond_traffic):
        result = optimize(diamond, diamond_traffic, eta=0.2, max_iterations=300)
        for node, per_dest in result.phi.items():
            for dest, fractions in per_dest.items():
                assert all(v >= 0 for v in fractions.values())
                assert sum(fractions.values()) == pytest.approx(1.0)

    def test_splits_the_diamond_evenly(self, diamond, diamond_traffic):
        """By symmetry the optimum splits the hot flow 50/50."""
        result = optimize(
            diamond, diamond_traffic, eta=0.3, max_iterations=3000
        )
        fractions = result.phi["s"]["t"]
        assert fractions.get("a", 0.0) == pytest.approx(0.5, abs=0.02)
        assert fractions.get("b", 0.0) == pytest.approx(0.5, abs=0.02)


class TestOptimalityConditions:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_gap_small_on_random_networks(self, seed):
        topo = random_connected(8, extra_links=6, seed=seed)
        pairs = [(0, 5), (3, 1), (6, 2), (7, 4)]
        traffic = uniform_random_rates(pairs, 100.0, 300.0, seed=seed)
        result = optimize(topo, traffic, eta=0.1, max_iterations=4000)
        assert optimality_gap(topo, result.phi, traffic) < 0.05


class TestScipyOracle:
    """Path-flow convex program on the diamond as ground truth."""

    def _oracle_total_delay(self, topo, rate):
        model = DelayModel.for_topology(topo)
        paths = [
            ["s", "a", "t"],
            ["s", "b", "t"],
            ["s", "a", "b", "t"],
            ["s", "b", "a", "t"],
        ]

        def total(x):
            flows = {}
            for path, amount in zip(paths, x):
                for u, v in zip(path, path[1:]):
                    flows[(u, v)] = flows.get((u, v), 0.0) + amount
            return model.total_delay(flows)

        constraints = [
            {"type": "eq", "fun": lambda x: np.sum(x) - rate},
        ]
        best = None
        for start in ([rate, 0, 0, 0], [rate / 2, rate / 2, 0, 0]):
            res = sciopt.minimize(
                total,
                np.array(start, dtype=float),
                bounds=[(0, rate)] * 4,
                constraints=constraints,
                method="SLSQP",
                options={"maxiter": 500, "ftol": 1e-12},
            )
            if best is None or res.fun < best:
                best = res.fun
        return best

    @pytest.mark.parametrize("rate", [200.0, 600.0, 900.0])
    def test_matches_convex_optimum(self, diamond, rate):
        traffic = TrafficMatrix([Flow("s", "t", rate, name="hot")])
        result = optimize(diamond, traffic, eta=0.3, max_iterations=4000)
        oracle = self._oracle_total_delay(diamond, rate)
        assert result.total_delay == pytest.approx(oracle, rel=0.01)
        # and never better than the true optimum
        assert result.total_delay >= oracle - 1e-6


class TestEvaluationConsistency:
    def test_result_phi_evaluates_to_reported_delay(
        self, diamond, diamond_traffic
    ):
        result = optimize(diamond, diamond_traffic, eta=0.2, max_iterations=500)
        model = DelayModel.for_topology(diamond)
        flows = link_flows(result.phi, diamond_traffic)
        assert model.total_delay(flows) == pytest.approx(result.total_delay)

    def test_multi_destination(self, diamond):
        traffic = TrafficMatrix(
            [Flow("s", "t", 400.0), Flow("t", "s", 400.0), Flow("a", "b", 100.0)]
        )
        result = optimize(diamond, traffic, eta=0.2, max_iterations=2000)
        ev = evaluate(diamond, result.phi, traffic)
        assert ev.max_utilization < 1.0
        assert result.converged
