"""The resource profiler and self-time phase profile."""

import time
import tracemalloc

import pytest

from repro import obs
from repro.obs import export
from repro.obs.profile import (
    ResourceProfiler,
    phase_profile,
    render_profile,
)
from repro.obs.timing import PhaseTimers, ProfilingTimers


def _spin(seconds):
    """Burn wall + CPU time (sleep would leave cpu_s at zero)."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(100))


class TestResourceProfiler:
    def test_rejects_unknown_memory_mode(self):
        with pytest.raises(ValueError):
            ResourceProfiler(memory="psutil")

    def test_snapshot_before_start_is_an_error(self):
        with pytest.raises(RuntimeError):
            ResourceProfiler().snapshot()

    def test_rss_snapshot_shape(self):
        profiler = ResourceProfiler(memory="rss").start()
        _spin(0.01)
        snap = profiler.snapshot()
        assert snap["memory_mode"] == "rss"
        assert snap["wall_s"] >= 0.01
        assert snap["cpu_s"] > 0
        # Linux CI: both RSS readings resolve and are plausible.
        assert snap["rss_max_kb"] > 1000
        assert snap["rss_now_kb"] > 1000
        assert "py_heap_peak_kb" not in snap

    def test_tracemalloc_mode_reports_heap_peak_and_cleans_up(self):
        already_tracing = tracemalloc.is_tracing()
        profiler = ResourceProfiler(memory="tracemalloc").start()
        blob = [list(range(1000)) for _ in range(100)]
        snap = profiler.snapshot()
        del blob
        assert snap["memory_mode"] == "tracemalloc"
        assert snap["py_heap_peak_kb"] > 100
        assert snap["py_heap_kb"] > 0
        profiler.close()
        # close() stops tracing only if this profiler started it.
        assert tracemalloc.is_tracing() == already_tracing

    def test_restart_resets_the_region(self):
        profiler = ResourceProfiler(memory="none").start()
        _spin(0.01)
        first = profiler.snapshot()["wall_s"]
        profiler.start()
        assert profiler.snapshot()["wall_s"] < first

    def test_none_mode_still_times(self):
        snap = ResourceProfiler(memory="none").start().snapshot()
        assert snap["memory_mode"] == "none"
        assert snap["wall_s"] >= 0


class TestProfilingTimers:
    def test_self_time_excludes_enclosed_phases(self):
        timers = ProfilingTimers()
        with timers.phase("outer"):
            _spin(0.01)
            with timers.phase("inner"):
                _spin(0.02)
        stats = timers.as_dict()
        outer, inner = stats["outer"], stats["inner"]
        assert inner["self_s"] == pytest.approx(inner["total_s"])
        assert outer["total_s"] >= inner["total_s"]
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"], abs=1e-3
        )
        assert outer["cpu_s"] > 0

    def test_sibling_children_both_attributed(self):
        timers = ProfilingTimers()
        with timers.phase("outer"):
            with timers.phase("a"):
                _spin(0.01)
            with timers.phase("b"):
                _spin(0.01)
        stats = timers.as_dict()
        assert stats["outer"]["self_s"] == pytest.approx(
            stats["outer"]["total_s"]
            - stats["a"]["total_s"]
            - stats["b"]["total_s"],
            abs=1e-3,
        )

    def test_drop_in_for_phase_timers(self):
        """Instrumented call sites cannot tell the classes apart."""
        plain, profiling = PhaseTimers(), ProfilingTimers()
        for timers in (plain, profiling):
            with timers.phase("x"):
                pass
            assert timers.stats("x").calls == 1
        assert "self_s" not in plain.as_dict()["x"]
        assert "self_s" in profiling.as_dict()["x"]


class TestPhaseProfile:
    def test_plain_timers_get_defaults(self):
        """Without profiling, self time degrades to total (leaf-exact)."""
        with obs.observe() as ob:
            with ob.timers.phase("leaf"):
                _spin(0.005)
            profile = phase_profile(ob)
        assert profile["leaf"]["self_s"] == profile["leaf"]["total_s"]
        assert profile["leaf"]["cpu_s"] == 0.0

    def test_ranked_by_self_time(self):
        with obs.observe(profile=True) as ob:
            with ob.timers.phase("cold"):
                _spin(0.001)
            with ob.timers.phase("hot"):
                _spin(0.03)
            profile = phase_profile(ob)
        assert list(profile)[0] == "hot"

    def test_render_profile_report(self):
        with obs.observe(profile=True) as ob:
            with ob.timers.phase("work"):
                _spin(0.01)
            report = render_profile(ob, top=5)
        assert "ranked by self time" in report
        assert "work" in report
        assert "run: wall" in report  # profiler footer line
        assert "peak RSS" in report

    def test_render_profile_empty(self):
        with obs.observe() as ob:
            assert "no phases recorded" in render_profile(ob)

    def test_top_truncates(self):
        with obs.observe(profile=True) as ob:
            for name in ("p1", "p2", "p3"):
                with ob.timers.phase(name):
                    pass
            report = render_profile(ob, top=1)
        assert sum(report.count(p) for p in ("p1", "p2", "p3")) == 1


class TestSessionIntegration:
    def test_profile_true_installs_profiling_machinery(self):
        with obs.observe(profile=True) as ob:
            assert isinstance(ob.timers, ProfilingTimers)
            assert ob.profiler is not None
            assert ob.profiler.snapshot()["memory_mode"] == "rss"

    def test_profile_false_keeps_the_cheap_timers(self):
        with obs.observe() as ob:
            assert not isinstance(ob.timers, ProfilingTimers)
            assert ob.profiler is None

    def test_export_gains_profile_section_only_when_profiling(self):
        with obs.observe(profile=True) as ob:
            snap = export.snapshot(ob)
            assert "profile" in snap
            assert snap["profile"]["wall_s"] >= 0
        with obs.observe() as ob:
            assert "profile" not in export.snapshot(ob)

    def test_profile_memory_mode_flows_through(self):
        with obs.observe(profile=True, profile_memory="none") as ob:
            assert ob.profiler.snapshot()["memory_mode"] == "none"
