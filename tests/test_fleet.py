"""The parallel experiment fleet: plans, workers, merge, orchestrator."""

import json
import random
import warnings

import pytest

from repro import deprecation
from repro.cli import build_parser, main
from repro.fleet import (
    FUZZ_POLICIES,
    Cell,
    FleetPlan,
    collect_shards,
    execute_cell,
    fuzz_plan,
    merge_report,
    render_fuzz_summary,
    render_sweep_tables,
    render_zoo_table,
    run_fleet,
    run_shard,
    sweep_plan,
    zoo_plan,
)
from repro.fleet.merge import quantile, report_bytes
from repro.fleet.worker import shard_journal_path
from repro.testing.fuzz import replay

#: A small, fast policy pair for end-to-end fleet runs (policy cases
#: run in milliseconds; mp protocol cases take ~60ms each).
FAST_POLICIES = ("sp", "ecmp")


def diag_plan(actions, *, shards=1, **extra):
    """A plan of diag cells, one per action string."""
    cells = tuple(
        Cell(
            index=i,
            kind="diag",
            params={"action": action, **extra},
            label=f"diag:{action}:{i}",
        )
        for i, action in enumerate(actions)
    )
    return FleetPlan(kind="diag", cells=cells, shards=shards)


class TestPlan:
    def test_round_robin_shard_assignment(self):
        plan = fuzz_plan(10, shards=3)
        owned = {
            s: [cell.index for cell in plan.shard(s)] for s in range(3)
        }
        assert owned == {0: [0, 3, 6, 9], 1: [1, 4, 7], 2: [2, 5, 8]}

    def test_shards_partition_the_plan(self):
        plan = sweep_plan(shards=4)
        seen = sorted(
            cell.index for s in range(4) for cell in plan.shard(s)
        )
        assert seen == list(range(len(plan.cells)))

    def test_shard_index_out_of_range(self):
        with pytest.raises(ValueError):
            fuzz_plan(4, shards=2).shard(2)

    def test_plan_json_round_trip(self):
        plan = fuzz_plan(9, seed=5, shards=2, reliable=False)
        doc = json.loads(json.dumps(plan.as_dict()))
        clone = FleetPlan.from_dict(doc)
        assert clone.as_dict() == plan.as_dict()
        assert clone.shard(1) == plan.shard(1)

    def test_dense_indices_enforced(self):
        cells = (Cell(index=1, kind="diag", params={}),)
        with pytest.raises(ValueError):
            FleetPlan(kind="diag", cells=cells)

    def test_unknown_cell_kind_rejected(self):
        with pytest.raises(ValueError):
            Cell(index=0, kind="mystery", params={})

    def test_with_shards_keeps_cells(self):
        plan = fuzz_plan(6, shards=1)
        wide = plan.with_shards(3)
        assert wide.cells == plan.cells
        assert wide.shards == 3

    def test_fuzz_plan_interleaves_policies(self):
        """Seed-major order: a truncated campaign still covers the zoo,
        and every policy sees the same case seeds."""
        plan = fuzz_plan(len(FUZZ_POLICIES) * 2, seed=10)
        head = [c.params["policy"] for c in plan.cells[: len(FUZZ_POLICIES)]]
        assert head == list(FUZZ_POLICIES)
        assert all(
            c.params["seed"] == 10
            for c in plan.cells[: len(FUZZ_POLICIES)]
        )
        assert all(
            c.params["seed"] == 11
            for c in plan.cells[len(FUZZ_POLICIES):]
        )

    def test_sweep_plan_covers_the_grid(self):
        plan = sweep_plan(
            etas=(0.5, 1.0), tls=(10.0,), losses=(0.0, 0.1)
        )
        assert len(plan.cells) == 4
        keys = {
            (c.params["eta"], c.params["tl"], c.params["loss"])
            for c in plan.cells
        }
        assert keys == {
            (0.5, 10.0, 0.0),
            (0.5, 10.0, 0.1),
            (1.0, 10.0, 0.0),
            (1.0, 10.0, 0.1),
        }

    def test_zoo_plan_pins_the_registry(self):
        """Empty policies must expand eagerly: the plan on disk is
        self-describing, not dependent on worker import state."""
        plan = zoo_plan(networks=("cairn",))
        assert plan.meta["policies"]
        assert all(c.params["policy"] for c in plan.cells)
        assert "opt" in plan.meta["policies"]


class TestMerge:
    def test_quantile_nearest_rank(self):
        assert quantile([4, 1, 3, 2], 0.5) == 2
        assert quantile([4, 1, 3, 2], 0.9) == 4
        assert quantile([], 0.5) is None

    def test_merge_is_order_independent(self, tmp_path):
        plan = diag_plan(["pass"] * 6, shards=2)
        run_fleet(plan, out_dir=str(tmp_path), inline=True)
        records = collect_shards(str(tmp_path), plan.shards)
        shuffled = list(records.items())
        random.Random(7).shuffle(shuffled)
        assert report_bytes(
            merge_report(plan, dict(shuffled))
        ) == report_bytes(merge_report(plan, records))

    def test_missing_records_become_unrun(self):
        plan = diag_plan(["pass", "pass"])
        report = merge_report(
            plan, {0: {"cell": 0, "status": "pass", "result": {}}}
        )
        assert report["statuses"] == {"pass": 1, "unrun": 1}
        assert report["rows"][1]["status"] == "unrun"

    def test_start_without_end_is_a_crash(self, tmp_path):
        journal = shard_journal_path(str(tmp_path), 0)
        with open(journal, "w") as fh:
            fh.write(
                json.dumps({"event": "start", "cell": 0, "label": "x"})
                + "\n"
            )
        records = collect_shards(str(tmp_path), 1)
        assert records[0]["status"] == "crashed"

    def test_torn_tail_write_is_a_crash(self, tmp_path):
        journal = shard_journal_path(str(tmp_path), 0)
        with open(journal, "w") as fh:
            fh.write(
                json.dumps({"event": "start", "cell": 3, "label": "x"})
                + "\n"
            )
            fh.write('{"event": "end", "cell": 3, "stat')  # died mid-write
        records = collect_shards(str(tmp_path), 1)
        assert records[3]["status"] == "crashed"


class TestByteIdentity:
    """The merged report is a pure function of (plan, outcomes):
    worker count and completion order never reach the bytes."""

    def _fuzz_plan(self, shards):
        return fuzz_plan(
            8, policies=FAST_POLICIES, shards=shards, minimize=False
        )

    def test_inline_shard_counts_agree(self, tmp_path):
        reports = []
        for shards in (1, 3):
            out = tmp_path / f"s{shards}"
            report = run_fleet(
                self._fuzz_plan(shards), out_dir=str(out), inline=True
            )
            reports.append(report_bytes(report))
        assert reports[0] == reports[1]

    def test_worker_processes_match_inline(self, tmp_path):
        """The acceptance property: --workers N reproduces --workers 1
        byte for byte (real fork, real journals)."""
        inline = tmp_path / "inline"
        forked = tmp_path / "forked"
        run_fleet(self._fuzz_plan(1), out_dir=str(inline), inline=True)
        run_fleet(self._fuzz_plan(2), out_dir=str(forked), timeout=60.0)
        assert (inline / "report.json").read_bytes() == (
            forked / "report.json"
        ).read_bytes()


class TestHarnessPaths:
    def test_pass_and_error_and_timeout(self, tmp_path):
        plan = diag_plan(["pass", "fail", "sleep"], seconds=30.0)
        report = run_fleet(
            plan, out_dir=str(tmp_path), timeout=0.5, inline=True
        )
        statuses = [row["status"] for row in report["rows"]]
        assert statuses == ["pass", "error", "timeout"]
        assert report["rows"][1]["error"]["type"] == "RuntimeError"
        assert "budget" in report["rows"][2]["error"]

    def test_crash_is_attributed_and_rest_unrun(self, tmp_path):
        """A cell that kills its worker: the journal pins the death on
        exactly that cell, later cells on the shard surface as unrun."""
        plan = diag_plan(["pass", "crash", "pass"])
        report = run_fleet(plan, out_dir=str(tmp_path), timeout=60.0)
        statuses = [row["status"] for row in report["rows"]]
        assert statuses == ["pass", "crashed", "unrun"]

    def test_crash_on_one_shard_spares_the_other(self, tmp_path):
        plan = diag_plan(["pass", "crash", "pass", "pass"], shards=2)
        report = run_fleet(plan, out_dir=str(tmp_path), timeout=60.0)
        by_cell = {row["cell"]: row["status"] for row in report["rows"]}
        # Shard 1 died at cell 1, losing its cell 3; shard 0 unaffected.
        assert by_cell == {
            0: "pass",
            1: "crashed",
            2: "pass",
            3: "unrun",
        }

    def test_violation_cells_write_replayable_artifacts(self, tmp_path):
        plan = fuzz_plan(
            1, seed=100, policies=("mp",), reliable=False, minimize=True
        )
        report = run_fleet(plan, out_dir=str(tmp_path), inline=True)
        assert report["statuses"] == {"violation": 1}
        failure = report["summary"]["failures"][0]
        assert failure["artifact"]
        assert replay(failure["artifact"]).reproduced
        rendered = render_fuzz_summary(report)
        assert "repro replay" in rendered


class TestStateIsolation:
    """Satellite regression tests: two sequential in-process fleet cells
    must behave like two fresh processes."""

    def test_sequential_cells_do_not_leak_lsu_sequence(self):
        """The failing record (causal slice included, whose event ids
        derive from LSU sequence numbers) must not depend on which cells
        ran earlier in the same worker process."""
        failing = Cell(
            index=0,
            kind="fuzz",
            params={
                "seed": 100,
                "policy": "mp",
                "reliable": False,
                "minimize": False,
            },
        )
        dirtying = Cell(
            index=0,
            kind="fuzz",
            params={"seed": 0, "policy": "mp", "reliable": True},
        )
        baseline = execute_cell(failing)
        assert baseline["status"] == "violation"
        execute_cell(dirtying)  # advances the process-wide LSU sequence
        assert execute_cell(failing) == baseline

    def test_sequential_cells_do_not_leak_warn_once(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            deprecation.reset()
            assert deprecation.warn_once("fleet-test", "gone soon")
            assert not deprecation.warn_once("fleet-test", "gone soon")
            # A new cell resets the registry: it warns exactly as a
            # standalone process would.
            execute_cell(
                Cell(index=0, kind="diag", params={"action": "pass"})
            )
            assert deprecation.warn_once("fleet-test", "gone soon")
        deprecation.reset()

    def test_run_shard_resets_between_cells(self, tmp_path):
        """Same property through the journal path: a shard running the
        failing cell twice writes two identical end records."""
        cells = tuple(
            Cell(
                index=i,
                kind="fuzz",
                params={
                    "seed": 100,
                    "policy": "mp",
                    "reliable": False,
                    "minimize": False,
                },
                label="twin",
            )
            for i in range(2)
        )
        plan = FleetPlan(kind="fuzz", cells=cells)
        run_shard(plan, 0, str(tmp_path))
        records = collect_shards(str(tmp_path), 1)
        first = {k: v for k, v in records[0].items() if k != "cell"}
        second = {k: v for k, v in records[1].items() if k != "cell"}
        # Artifact paths differ by stem only when seeds differ; here the
        # twin cells overwrite the same artifact, so results match.
        assert first == second


class TestRenderers:
    def test_sweep_tables_have_one_section_per_loss(self, tmp_path):
        grid = [
            {
                "cell": i,
                "status": "pass",
                "eta": 1.0,
                "tl": 10.0,
                "loss": loss,
                "avg_ms": 6.5,
                "max_util": 0.8,
                "retransmits": 100 if loss else 0,
                "data_sent": 1000,
            }
            for i, loss in enumerate((0.0, 0.1))
        ]
        report = {"summary": {"grid": grid}}
        text = render_sweep_tables(report)
        assert "**loss = 0**" in text
        assert "**loss = 0.1**" in text
        assert "6.50 (100)" in text  # lossy cell shows retransmits

    def test_zoo_table_lists_policies_by_network(self):
        report = {
            "summary": {
                "networks": {
                    "cairn": {
                        "mp": {
                            "status": "pass",
                            "avg_ms": 6.5,
                            "max_util": 0.9,
                        },
                        "sp": {"status": "timeout"},
                    }
                }
            }
        }
        text = render_zoo_table(report)
        assert "| `mp` | 6.50 | 0.90 |" in text
        assert "| `sp` | - | - |" in text


class TestFleetCLI:
    def test_fuzz_parser_defaults(self):
        args = build_parser().parse_args(["fleet", "fuzz"])
        assert args.command == "fleet"
        assert args.fleet_command == "fuzz"
        assert args.cases == 200
        assert args.workers == 4
        assert args.out == "fleet-out"
        assert args.timeout == 120.0
        assert not args.inline

    def test_sweep_parser_axes(self):
        args = build_parser().parse_args(
            [
                "fleet",
                "sweep",
                "--etas",
                "0.5",
                "--tls",
                "10",
                "20",
                "--losses",
                "0",
                "--network",
                "net1",
            ]
        )
        assert args.etas == [0.5]
        assert args.tls == [10.0, 20.0]
        assert args.losses == [0.0]
        assert args.network == "net1"

    def test_zoo_parser_topo_choices(self):
        args = build_parser().parse_args(
            ["fleet", "zoo", "--topo", "all", "--policy", "mp"]
        )
        assert args.topo == "all"
        assert args.policy == ["mp"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "zoo", "--topo", "nope"])

    def test_fleet_verb_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet"])

    def test_fleet_fuzz_round_trip(self, tmp_path, capsys):
        code = main(
            [
                "fleet",
                "fuzz",
                "--cases",
                "4",
                "--policies",
                *FAST_POLICIES,
                "--inline",
                "--workers",
                "2",
                "--out",
                str(tmp_path),
                "--timeout",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet fuzz: 4 cases" in out
        assert (tmp_path / "report.json").exists()
        assert (tmp_path / "plan.json").exists()
        report = json.loads((tmp_path / "report.json").read_text())
        assert report["statuses"] == {"pass": 4}

    def test_fleet_fuzz_raw_exits_nonzero(self, tmp_path, capsys):
        code = main(
            [
                "fleet",
                "fuzz",
                "--cases",
                "1",
                "--seed",
                "100",
                "--policies",
                "mp",
                "--raw",
                "--no-minimize",
                "--inline",
                "--out",
                str(tmp_path),
                "--timeout",
                "60",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
