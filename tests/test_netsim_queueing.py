"""The FIFO packet queue."""

import pytest

from repro.netsim.packet import Packet
from repro.netsim.queueing import FIFOQueue


def pkt():
    return Packet("f", "a", "b", 0.0)


class TestFIFOQueue:
    def test_fifo_order_with_timestamps(self):
        q = FIFOQueue()
        p1, p2 = pkt(), pkt()
        q.push(p1, now=1.0)
        q.push(p2, now=2.0)
        out1, t1 = q.pop()
        out2, t2 = q.pop()
        assert (out1, t1) == (p1, 1.0)
        assert (out2, t2) == (p2, 2.0)

    def test_unbounded_by_default(self):
        q = FIFOQueue()
        for _ in range(1000):
            assert q.push(pkt(), 0.0)
        assert q.dropped == 0

    def test_capacity_drops(self):
        q = FIFOQueue(capacity=2)
        assert q.push(pkt(), 0.0)
        assert q.push(pkt(), 0.0)
        assert not q.push(pkt(), 0.0)
        assert q.dropped == 1
        assert q.enqueued == 2

    def test_max_depth_tracked(self):
        q = FIFOQueue()
        for _ in range(5):
            q.push(pkt(), 0.0)
        q.pop()
        q.push(pkt(), 0.0)
        assert q.max_depth == 5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FIFOQueue(capacity=-1)

    def test_truthiness(self):
        q = FIFOQueue()
        assert not q
        q.push(pkt(), 0.0)
        assert q
        assert len(q) == 1
