"""The pluggable transport layer: faulty wires and the reliable shim."""

import pytest

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.core.transport import (
    FaultyChannel,
    PerfectChannel,
    ReliableTransport,
    Segment,
)
from repro.exceptions import ConvergenceError, ReproError, TopologyError
from repro.graph.topologies import cairn, net1

#: One duplex link, as the driver would attach it.
DUPLEX = [("a", "b"), ("b", "a")]


def drain(transport):
    """Pop every deliverable frame (ticking through jitter/delay holds);
    the payload messages in delivery order."""
    delivered = []
    idle = 0
    while transport.pending() and idle < 10_000:
        busy = transport.busy_links()
        if not busy:
            transport.tick()
            idle += 1
            continue
        idle = 0
        for link in list(busy):
            delivered.extend(transport.pop(link))
    return delivered


class TestPerfectChannel:
    def test_fifo_in_order(self):
        channel = PerfectChannel()
        channel.attach(DUPLEX)
        for i in range(5):
            channel.send(("a", "b"), i)
        assert channel.busy_links() == [("a", "b")]
        assert [channel.pop(("a", "b"))[0] for _ in range(5)] == list(range(5))
        assert channel.pending() == 0

    def test_link_down_clears_both_directions(self):
        channel = PerfectChannel()
        channel.attach(DUPLEX)
        channel.send(("a", "b"), "x")
        channel.send(("b", "a"), "y")
        channel.link_down("a", "b")
        assert channel.pending() == 0

    def test_send_to_unknown_link_ignored(self):
        channel = PerfectChannel()
        channel.attach(DUPLEX)
        channel.send(("a", "z"), "x")
        assert channel.pending() == 0 and channel.sent == 0


class TestFaultyChannelValidation:
    def test_rates_must_be_probabilities(self):
        for kwargs in ({"loss": 1.0}, {"dup": -0.1}, {"reorder": 2.0}):
            with pytest.raises(ValueError):
                FaultyChannel(**kwargs)
        with pytest.raises(ValueError):
            FaultyChannel(jitter=-1)
        with pytest.raises(ValueError):
            FaultyChannel(delay=-1)

    def test_unknown_link_rejected(self):
        channel = FaultyChannel()
        channel.attach(DUPLEX)
        with pytest.raises(TopologyError):
            channel.send(("a", "z"), "x")
        with pytest.raises(TopologyError):
            channel.partition("a", "z")


class TestFaultyChannelRates:
    """Fault rates are honored statistically under a fixed seed."""

    N = 4000

    def _offered(self, **kwargs):
        channel = FaultyChannel(seed=42, **kwargs)
        channel.attach(DUPLEX)
        for i in range(self.N):
            channel.send(("a", "b"), i)
        return channel

    def test_loss_rate(self):
        channel = self._offered(loss=0.2)
        assert channel.drops / self.N == pytest.approx(0.2, abs=0.03)
        assert channel.sent == self.N - channel.drops

    def test_dup_rate(self):
        channel = self._offered(dup=0.1)
        assert channel.dups / self.N == pytest.approx(0.1, abs=0.03)
        assert channel.sent == self.N + channel.dups

    def test_reorder_rate(self):
        channel = self._offered(reorder=0.25)
        assert channel.reorders / self.N == pytest.approx(0.25, abs=0.03)

    def test_zero_rates_behave_perfectly(self):
        channel = self._offered()
        assert channel.drops == channel.dups == channel.reorders == 0
        assert drain(channel) == list(range(self.N))


class TestFaultyChannelPartition:
    def test_partition_drops_both_directions(self):
        channel = FaultyChannel(seed=1)
        channel.attach(DUPLEX)
        channel.send(("a", "b"), "queued")
        channel.partition("a", "b")
        channel.send(("a", "b"), "in")
        channel.send(("b", "a"), "out")
        assert channel.pending() == 0
        assert channel.partition_drops == 3  # 1 purged + 2 black-holed

    def test_heal_restores_delivery(self):
        channel = FaultyChannel(seed=1)
        channel.attach(DUPLEX)
        channel.partition("a", "b")
        channel.heal("a", "b")
        channel.send(("a", "b"), "x")
        assert drain(channel) == ["x"]

    def test_timed_partition_follows_channel_clock(self):
        channel = FaultyChannel(seed=1, partitions=((("a", "b"), 2, 4),))
        channel.attach(DUPLEX)
        channel.send(("a", "b"), "early")  # now=0: before the window
        assert drain(channel) == ["early"]
        while channel.now < 2:
            channel.tick()
        channel.send(("a", "b"), "during")
        assert channel.partition_drops == 1
        while channel.now < 4:
            channel.tick()
        channel.send(("a", "b"), "after")
        assert drain(channel) == ["after"]


class TestFaultyChannelBounds:
    def test_reordering_displacement_bounded_by_jitter(self):
        """A frame is overtaken by at most ``jitter`` later frames."""
        jitter = 3
        channel = FaultyChannel(seed=9, reorder=0.9, jitter=jitter)
        channel.attach(DUPLEX)
        n = 200
        for i in range(n):
            channel.send(("a", "b"), i)
        delivered = drain(channel)
        assert sorted(delivered) == list(range(n))
        assert delivered != list(range(n))  # reordering actually happened
        for position, seq in enumerate(delivered):
            overtakers = sum(1 for s in delivered[:position] if s > seq)
            assert overtakers <= jitter

    def test_delay_hold_bounded(self):
        """A queued frame is deliverable at most ``delay`` ticks late."""
        delay = 5
        channel = FaultyChannel(seed=9, delay=delay)
        channel.attach(DUPLEX)
        for i in range(50):
            channel.send(("a", "b"), i)
            ticks = 0
            while not channel.busy_links():
                channel.tick()
                ticks += 1
                assert ticks <= delay
            assert channel.pop(("a", "b")) == [i]


class TestReliableTransport:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReliableTransport(timeout=0)
        with pytest.raises(ValueError):
            ReliableTransport(backoff=0.5)

    def test_in_order_release_under_reordering(self):
        transport = ReliableTransport(
            FaultyChannel(seed=3, reorder=0.8, jitter=4)
        )
        transport.attach(DUPLEX)
        n = 100
        for i in range(n):
            transport.send(("a", "b"), i)
        assert drain(transport) == list(range(n))

    def test_duplicates_suppressed(self):
        transport = ReliableTransport(FaultyChannel(seed=3, dup=0.9))
        transport.attach(DUPLEX)
        for i in range(50):
            transport.send(("a", "b"), i)
        assert drain(transport) == list(range(50))
        assert transport.dup_suppressed > 0

    def test_loss_recovered_by_retransmission(self):
        transport = ReliableTransport(
            FaultyChannel(seed=3, loss=0.3), timeout=4
        )
        transport.attach(DUPLEX)
        for i in range(50):
            transport.send(("a", "b"), i)
        assert drain(transport) == list(range(50))
        assert transport.retransmits > 0 and transport.timeouts > 0

    def test_permanent_partition_exhausts_retries(self):
        transport = ReliableTransport(
            FaultyChannel(seed=3), timeout=1, max_retries=5
        )
        transport.attach(DUPLEX)
        transport.partition("a", "b")
        transport.send(("a", "b"), "lost")
        with pytest.raises(ConvergenceError):
            for _ in range(10_000):
                transport.tick()

    def test_link_down_forgets_transfer_state(self):
        transport = ReliableTransport(FaultyChannel(seed=3))
        transport.attach(DUPLEX)
        transport.send(("a", "b"), "doomed")
        transport.link_down("a", "b")
        assert transport.pending() == 0
        transport.link_up("a", "b")
        transport.send(("a", "b"), "fresh")
        assert drain(transport) == ["fresh"]

    def test_stats_merge_wire_counters(self):
        transport = ReliableTransport(FaultyChannel(seed=3, loss=0.2))
        transport.attach(DUPLEX)
        for i in range(30):
            transport.send(("a", "b"), i)
        drain(transport)
        stats = transport.stats()
        assert stats["payloads_delivered"] == 30
        assert stats["acks_sent"] > 0
        assert stats["wire_drops"] > 0  # inner counters, prefixed
        assert "wire_sent" in stats

    def test_default_inner_is_a_clean_wire(self):
        transport = ReliableTransport()
        transport.attach(DUPLEX)
        transport.send(("a", "b"), "x")
        assert drain(transport) == ["x"]
        assert transport.retransmits == 0

    def test_segment_is_frozen(self):
        segment = Segment("data", 0, 0, "payload")
        with pytest.raises(AttributeError):
            segment.seq = 1


class TestMPDAOverFaultyWire:
    """The acceptance criterion: the paper's results survive ≥10% loss
    once the delivery assumption is *enforced* rather than assumed."""

    @pytest.mark.parametrize("factory", [cairn, net1], ids=["cairn", "net1"])
    def test_converges_with_clean_audit_at_ten_percent_loss(self, factory):
        topo = factory()
        transport = ReliableTransport(
            FaultyChannel(seed=7, loss=0.1, dup=0.05, reorder=0.1, delay=2),
            max_retries=50,
        )
        observation = obs.start(audit=True)
        try:
            driver = ProtocolDriver(
                topo,
                MPDARouter,
                seed=0,
                check_invariants=True,
                transport=transport,
            )
            driver.start(topo.idle_marginal_costs())
            driver.run()
            driver.verify_converged()
            summary = observation.auditor.summary()
        finally:
            obs.stop()
        assert summary["violations"] == 0
        assert summary["checks"] > 0
        assert transport.stats()["wire_drops"] > 0  # the wire really lost

    def test_raw_faulty_channel_breaks_mpda(self):
        """Without the shim the correctness results really do fall over:
        some seed loses an LSU that is never repaired, so the oracle
        check fails (this is the paper's assumption, demonstrated)."""
        failures = 0
        for seed in range(5):
            topo = net1()
            driver = ProtocolDriver(
                topo,
                MPDARouter,
                seed=0,
                transport=FaultyChannel(seed=seed, loss=0.3),
            )
            driver.start(topo.idle_marginal_costs())
            try:
                driver.run()
                driver.verify_converged()
            except ReproError:
                failures += 1
        assert failures > 0


class TestDriverTransportMetrics:
    def test_transport_counters_harvested(self, diamond):
        transport = ReliableTransport(FaultyChannel(seed=5, loss=0.1))
        observation = obs.start()
        try:
            driver = ProtocolDriver(
                diamond, MPDARouter, seed=0, transport=transport
            )
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            metrics = observation.metrics
            assert metrics.value("transport.data_sent") == transport.data_sent
            assert metrics.value("transport.wire_sent") is not None
        finally:
            obs.stop()
