"""Link failures through the full routing plane (protocol mode).

The paper: "In the presence of link failures, MP can only perform better
than SP, because of availability of alternate paths."  These tests drive
the live-MPDA backend of MPRouting through failure and recovery and
check the data plane keeps a valid, loop-free configuration throughout.
"""

import pytest

from repro.core.router import MPRouting
from repro.exceptions import RoutingError
from repro.fluid.evaluator import evaluate
from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.validation import is_loop_free


@pytest.fixture
def live(diamond):
    routing = MPRouting(diamond, ["t"], mode="protocol")
    routing.update_routes(diamond.uniform_costs(1.0))
    return routing


class TestFailure:
    def test_oracle_mode_rejects_failures(self, diamond):
        routing = MPRouting(diamond, ["t"], mode="oracle")
        routing.update_routes(diamond.uniform_costs(1.0))
        with pytest.raises(RoutingError):
            routing.fail_link("s", "a")

    def test_before_start_rejected(self, diamond):
        routing = MPRouting(diamond, ["t"], mode="protocol")
        with pytest.raises(RoutingError):
            routing.fail_link("s", "a")

    def test_traffic_survives_failure(self, live, diamond):
        assert set(live.successors("t")["s"]) == {"a", "b"}
        live.fail_link("s", "a")
        assert live.successors("t")["s"] == ["b"]
        traffic = TrafficMatrix([Flow("s", "t", 100.0, name="x")])
        ev = evaluate(diamond, live.phi(), traffic)
        assert ev.flow_delays["x"] > 0  # still routed, via b

    def test_loop_free_after_failure(self, live, diamond):
        live.fail_link("a", "t")
        succ = {
            n: [k for k, v in live.phi()[n].get("t", {}).items() if v > 0]
            for n in diamond.nodes
        }
        assert is_loop_free(succ)
        # a now reaches t via b (a-b-t): MPDA found the alternate path
        assert live.successors("t")["a"] == ["b"]

    def test_recovery_restores_multipath(self, live, diamond):
        live.fail_link("s", "a")
        live.restore_link("s", "a", 1.0, 1.0)
        assert set(live.successors("t")["s"]) == {"a", "b"}

    def test_allocation_reseeded_on_failure(self, live):
        before = live.fractions("s", "t")
        assert len(before) == 2
        live.fail_link("s", "a")
        after = live.fractions("s", "t")
        assert after == {"b": 1.0}

    def test_partition_clears_routes(self, live):
        live.fail_link("s", "a")
        live.fail_link("s", "b")  # s is now cut off
        assert live.successors("t").get("s", []) == []
        assert live.fractions("s", "t") == {}
