"""Trace JSONL round-trip: every emitted event parses and is documented.

The contract enforced here is what external tooling (and ``repro
report``) relies on: every line a trace sink receives is plain
``json.loads``-able, every event kind appears in
:data:`repro.obs.trace.EVENT_SCHEMAS`, and every event's field set
matches its schema *exactly* — at least the documented required fields,
and nothing beyond the documented optional fields
(:data:`repro.obs.trace.OPTIONAL_FIELDS`) plus the universal
``kind``/``t``/``node`` envelope.  An emitter growing an undeclared
field fails here, not in a downstream consumer.
"""

import json
import os

import pytest

from repro import obs
from repro.bench.convergence import failover_experiment
from repro.fluid.flows import Flow, TrafficMatrix
from repro.gallager.opt import optimize
from repro.graph.topologies import net1
from repro.obs.trace import EVENT_SCHEMAS, OPTIONAL_FIELDS
from repro.sim.packet_runner import PacketRunConfig, run_packet_level
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import Scenario

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Envelope keys any event may carry (added by ``Tracer.event`` itself).
ENVELOPE = frozenset({"kind", "t", "node"})


def _parse(path):
    events = []
    with open(path) as fh:
        for line in fh:
            events.append(json.loads(line))  # must never raise
    assert events, f"trace {path} is empty"
    return events


def _assert_documented(events):
    for event in events:
        kind = event["kind"]
        assert kind in EVENT_SCHEMAS, f"undocumented event kind {kind!r}"
        missing = EVENT_SCHEMAS[kind] - event.keys()
        assert not missing, (
            f"event kind {kind!r} missing documented fields {missing}"
        )
        allowed = (
            EVENT_SCHEMAS[kind]
            | OPTIONAL_FIELDS.get(kind, frozenset())
            | ENVELOPE
        )
        extras = event.keys() - allowed
        assert not extras, (
            f"event kind {kind!r} carries undeclared fields {extras}; "
            "declare them in EVENT_SCHEMAS or OPTIONAL_FIELDS"
        )


@pytest.fixture
def diamond_scenario(diamond):
    traffic = TrafficMatrix([Flow("s", "t", 400.0, name="hot")])
    return Scenario("diamond", diamond, traffic)


class TestLiveTraces:
    def test_fluid_run_events_round_trip(self, tmp_path, diamond_scenario):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace)):
            run_quasi_static(
                diamond_scenario,
                QuasiStaticConfig(
                    tl=4, ts=2, duration=12.0, warmup=4.0, damping=0.5
                ),
            )
        events = _parse(trace)
        _assert_documented(events)
        kinds = {event["kind"] for event in events}
        # The fluid runner + live protocol driver cover most of the map.
        assert {"epoch", "route_update", "lsu_deliver", "disturbance",
                "quiescent", "dist_change"} <= kinds

    def test_packet_run_events_round_trip(self, tmp_path, diamond_scenario):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), audit=True,
                         audit_sample=10):
            run_packet_level(
                diamond_scenario,
                PacketRunConfig(tl=4, ts=2, duration=8.0, damping=0.5),
            )
        events = _parse(trace)
        _assert_documented(events)
        kinds = {event["kind"] for event in events}
        assert {"ts_tick", "audit_summary"} <= kinds

    def test_failover_covers_phase_and_audit_events(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), audit=True):
            failover_experiment(net1(), "NET1", seed=0)
        events = _parse(trace)
        _assert_documented(events)
        kinds = {event["kind"] for event in events}
        assert {"active_enter", "active_exit", "audit_summary",
                "disturbance", "dist_change", "quiescent"} <= kinds

    def test_causal_failover_covers_causal_events(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), audit=True, causal=True):
            failover_experiment(net1(), "NET1", seed=0)
        events = _parse(trace)
        _assert_documented(events)
        kinds = {event["kind"] for event in events}
        assert {"wave_span", "critical_path", "succ_change"} <= kinds
        # Causal runs decorate existing kinds with the optional fields.
        deliver = next(e for e in events if e["kind"] == "lsu_deliver")
        assert {"eid", "lamport"} <= deliver.keys()

    def test_opt_done_event(self, tmp_path, diamond_scenario):
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace)):
            optimize(
                diamond_scenario.topo,
                diamond_scenario.mean_traffic(),
                max_iterations=50,
            )
        events = _parse(trace)
        _assert_documented(events)
        assert any(event["kind"] == "opt_done" for event in events)

    def test_audit_violation_schema(self, tmp_path, diamond):
        """The one kind live clean runs never emit, forced via tampering."""
        from repro.core.driver import ProtocolDriver
        from repro.core.mpda import MPDARouter

        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), audit=True) as observation:
            driver = ProtocolDriver(diamond, MPDARouter, seed=0)
            driver.start(diamond.idle_marginal_costs())
            driver.run()
            router = driver.routers["s"]
            dest = next(iter(router.successor_sets))
            router.feasible_distance[dest] = -1.0
            observation.auditor.audit(
                driver.routers, observation, context="tamper"
            )
        events = _parse(trace)
        _assert_documented(events)
        assert any(e["kind"] == "audit_violation" for e in events)


class TestCommittedFixtures:
    @pytest.mark.parametrize(
        "name",
        [
            "converge.trace.jsonl",
            "packet_net1.trace.jsonl",
            "causal_cairn.trace.jsonl",
        ],
    )
    def test_fixture_traces_conform(self, name):
        events = _parse(os.path.join(FIXTURES, name))
        _assert_documented(events)
