"""MPDA: instantaneous loop freedom (Theorem 3) and liveness (Theorem 4).

The safety tests run with ``check_invariants=True``, which re-verifies
the LFI conditions and global successor-graph acyclicity after *every
single message delivery* — the literal statement of Theorem 3.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import ProtocolDriver
from repro.core.linkstate import INFINITY
from repro.core.mpda import MPDARouter, RouterState, check_safety
from repro.graph.generators import random_connected, ring
from repro.graph.topologies import net1


def converge(topo, costs, seed=0, check=True):
    driver = ProtocolDriver(
        topo, MPDARouter, seed=seed, check_invariants=check
    )
    driver.start(costs)
    driver.run()
    return driver


class TestSafety:
    @pytest.mark.parametrize("seed", range(5))
    def test_loop_free_at_every_instant_random_network(self, seed):
        topo = random_connected(7, extra_links=5, seed=seed, jitter=0.4)
        converge(topo, topo.idle_marginal_costs(), seed=seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_loop_free_through_cost_churn(self, seed):
        import random

        rng = random.Random(seed)
        topo = random_connected(6, extra_links=4, seed=seed)
        driver = converge(topo, topo.uniform_costs(1.0), seed=seed)
        for _ in range(5):
            updates = {}
            for ln in topo.links():
                if rng.random() < 0.4:
                    updates[ln.link_id] = rng.uniform(0.1, 5.0)
            driver.set_costs(updates)
            driver.run()
        driver.verify_converged()

    def test_loop_free_through_failures(self, seed=1):
        topo = ring(5)
        driver = converge(topo, topo.uniform_costs(1.0), seed=seed)
        driver.fail_link(0, 1)
        driver.run()
        driver.restore_link(0, 1, 1.0, 1.0)
        driver.run()
        driver.verify_converged()

    def test_check_safety_on_quiescent_net1(self):
        topo = net1()
        driver = converge(topo, topo.idle_marginal_costs(), check=False)
        check_safety(driver.routers)  # independent post-hoc verification


class TestLiveness:
    def test_converged_successor_sets(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        driver.verify_converged()  # includes S_j = {k : D_j^k < D_j^i}
        s = driver.routers["s"]
        assert s.successors("t") == {"a", "b"}

    def test_feasible_distance_equals_distance_at_rest(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        for router in driver.routers.values():
            for dest, fd in router.feasible_distance.items():
                assert fd == pytest.approx(router.distance_to(dest))

    def test_all_routers_passive_at_rest(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        for router in driver.routers.values():
            assert router.is_passive()
            assert not router._outstanding()

    def test_unequal_cost_multipath(self, diamond):
        costs = diamond.uniform_costs(1.0)
        costs[("b", "t")] = 1.5  # unequal but still loop-free path
        costs[("t", "b")] = 1.5
        driver = converge(diamond, costs)
        driver.verify_converged()
        assert driver.routers["s"].successors("t") == {"a", "b"}

    def test_cost_increase_shrinks_successor_set(self, diamond):
        costs = diamond.uniform_costs(1.0)
        driver = converge(diamond, costs)
        # make b so far that it is no longer closer to t than s is
        driver.set_costs({("b", "t"): 10.0, ("b", "a"): 10.0, ("b", "s"): 10.0})
        driver.run()
        driver.verify_converged()
        assert driver.routers["s"].successors("t") == {"a"}


class TestStateMachine:
    def test_transitions_counted(self, diamond):
        driver = converge(diamond, diamond.uniform_costs(1.0))
        assert all(r.transitions > 0 for r in driver.routers.values())

    def test_active_while_awaiting_ack(self):
        a, b = MPDARouter("a"), MPDARouter("b")
        a.link_up("b", 1.0)
        b.link_up("a", 1.0)
        assert a.state is RouterState.ACTIVE  # sent its first LSU
        # deliver a's LSU to b; b ACKs (entries required an ACK)
        for nbr, msg in list(a.outbox):
            if nbr == "b":
                b.receive(msg)
        a.outbox.clear()
        replies = [m for nbr, m in b.outbox if nbr == "a" and m.ack]
        assert replies, "b must acknowledge the LSU"

    def test_ack_returns_router_to_passive(self):
        a, b = MPDARouter("a"), MPDARouter("b")
        a.link_up("b", 1.0)
        b.link_up("a", 1.0)
        # run the two-router exchange by hand until both quiesce
        for _ in range(20):
            moved = False
            for src, dst in ((a, b), (b, a)):
                for nbr, msg in list(src.outbox):
                    if nbr == dst.node_id:
                        dst.receive(msg)
                        moved = True
                src.outbox.clear()
            if not moved:
                break
        assert a.is_passive() and b.is_passive()
        assert a.distance_to("b") == pytest.approx(1.0)
        assert b.distance_to("a") == pytest.approx(1.0)

    def test_link_down_releases_pending_acks(self):
        a = MPDARouter("a")
        a.link_up("b", 1.0)
        assert a.state is RouterState.ACTIVE
        a.link_down("b")
        assert not a._outstanding()

    def test_pure_ack_not_acknowledged(self):
        """ACKing ACKs would chatter forever; pure ACKs terminate."""
        from repro.core.linkstate import LSUMessage

        a = MPDARouter("a")
        a.link_up("b", 1.0)
        a.outbox.clear()
        a.receive(LSUMessage("b", (), ack=True))
        assert all(not m.entries and not m.ack for _, m in a.outbox)


class TestBestSuccessor:
    def test_best_successor_minimizes_marginal_distance(self, diamond):
        costs = diamond.uniform_costs(1.0)
        costs[("s", "a")] = 0.2  # via a is now strictly cheaper
        driver = converge(diamond, costs)
        assert driver.routers["s"].best_successor("t") == "a"

    def test_no_route_returns_none(self):
        router = MPDARouter("a")
        assert router.best_successor("nowhere") is None


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    churn=st.lists(
        st.tuples(st.integers(0, 100), st.floats(0.1, 8.0)), max_size=6
    ),
)
def test_safety_under_random_schedules_and_churn(seed, churn):
    """Theorem 3, property-based: any delivery interleaving of any
    cost-churn sequence keeps every instant loop-free."""
    topo = random_connected(6, extra_links=4, seed=seed % 17)
    driver = ProtocolDriver(
        topo, MPDARouter, seed=seed, check_invariants=True
    )
    driver.start(topo.uniform_costs(1.0))
    links = [ln.link_id for ln in topo.links()]
    for pick, cost in churn:
        driver.set_costs({links[pick % len(links)]: cost})
        # interleave: deliver only a few messages before the next change
        for _ in range(pick % 7):
            driver.step()
    driver.run()
    driver.verify_converged()
