"""Packet forwarding: weighted splitting and loop guards."""

import random

import pytest

from repro.exceptions import SimulationError
from repro.netsim.monitor import FlowMonitor
from repro.netsim.node import SimNode, StaticRouting
from repro.netsim.packet import Packet


class FakeLink:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def make_node(phi, links, seed=0):
    node = SimNode(
        "s", StaticRouting(phi), FlowMonitor(), random.Random(seed), 10
    )
    node.bind_links(links)
    return node


class TestForwarding:
    def test_delivery_at_destination(self):
        monitor = FlowMonitor()
        node = SimNode("t", StaticRouting({}), monitor, random.Random(0), 10)
        packet = Packet("f", "s", "t", created_at=1.0)
        node.receive(packet, now=3.5)
        assert monitor.flows["f"].delivered == 1
        assert monitor.flows["f"].mean_delay == pytest.approx(2.5)

    def test_single_successor(self):
        link = FakeLink()
        node = make_node({"s": {"t": {"a": 1.0}}}, {"a": link})
        node.receive(Packet("f", "s", "t", 0.0), now=0.0)
        assert len(link.sent) == 1

    def test_split_frequencies_follow_phi(self):
        la, lb = FakeLink(), FakeLink()
        node = make_node(
            {"s": {"t": {"a": 0.25, "b": 0.75}}}, {"a": la, "b": lb}, seed=7
        )
        n = 4000
        for _ in range(n):
            node.receive(Packet("f", "s", "t", 0.0), now=0.0)
        assert len(la.sent) / n == pytest.approx(0.25, abs=0.03)
        assert len(lb.sent) / n == pytest.approx(0.75, abs=0.03)

    def test_no_route_counted(self):
        node = make_node({}, {})
        node.receive(Packet("f", "s", "t", 0.0), now=0.0)
        assert node.flow_monitor.no_route_drops == 1

    def test_zero_fraction_successor_never_used(self):
        la, lb = FakeLink(), FakeLink()
        node = make_node(
            {"s": {"t": {"a": 0.0, "b": 1.0}}}, {"a": la, "b": lb}
        )
        for _ in range(100):
            node.receive(Packet("f", "s", "t", 0.0), now=0.0)
        assert la.sent == []

    def test_successor_without_link_treated_as_no_route(self):
        """A provider naming a non-link neighbor must not crash the
        data plane; the packet counts as unroutable."""
        node = make_node({"s": {"t": {"ghost": 1.0}}}, {})
        node.receive(Packet("f", "s", "t", 0.0), now=0.0)
        assert node.flow_monitor.no_route_drops == 1

    def test_hop_limit_detects_loops(self):
        link = FakeLink()
        node = make_node({"s": {"t": {"a": 1.0}}}, {"a": link})
        packet = Packet("f", "s", "t", 0.0)
        packet.hops = 10_000
        with pytest.raises(SimulationError):
            node.forward(packet)

    def test_hops_incremented(self):
        link = FakeLink()
        node = make_node({"s": {"t": {"a": 1.0}}}, {"a": link})
        packet = Packet("f", "s", "t", 0.0)
        node.forward(packet)
        assert packet.hops == 1
