"""Regenerate the committed observability fixtures.

Usage (from the repo root)::

    PYTHONPATH=src python tests/fixtures/regen.py

Produces, next to this script:

- ``converge.trace.jsonl`` / ``converge.metrics.json`` /
  ``converge.report.json`` — the audited single-link-failure
  convergence experiment on CAIRN and NET1 (equivalent to
  ``python -m repro converge --trace ... --metrics-out ...`` followed by
  ``python -m repro report``);
- ``packet_net1.trace.jsonl`` / ``packet_net1.metrics.json`` /
  ``packet_net1.report.json`` — a short audited packet-level NET1 run,
  the source of the delay quantiles and the queueing / transmission /
  propagation decomposition;
- ``causal_cairn.trace.jsonl`` / ``causal_cairn.report.json`` — the
  CAIRN cold-start/failover/restore run with causal tracing enabled
  (``converge --causal``): the source of the pinned wave counts, wave
  depths and critical-path lengths.

Every number in the fixtures is deterministic (seeded interleaving,
seeded packet arrivals, message-count clocks) except the ``wall_s``
trace fields, which record real elapsed time and differ run to run —
tests and EXPERIMENTS.md only cite the deterministic fields.
"""

from __future__ import annotations

import os

from repro import obs
from repro.bench.convergence import converge_experiment
from repro.obs.convergence import read_trace
from repro.obs.export import write_metrics
from repro.obs.report import build_report, write_report
from repro.sim.packet_runner import PacketRunConfig, run_packet_level
from repro.sim.scenario import net1_scenario

HERE = os.path.dirname(os.path.abspath(__file__))


def _path(name: str) -> str:
    return os.path.join(HERE, name)


def regen_converge() -> None:
    trace = _path("converge.trace.jsonl")
    metrics = _path("converge.metrics.json")
    observation = obs.start(trace_path=trace, audit=True, audit_sample=1)
    try:
        converge_experiment(seed=0, topologies=("cairn", "net1"))
        write_metrics(metrics, observation)
    finally:
        obs.stop()
    _report("converge")


def regen_causal_cairn() -> None:
    trace = _path("causal_cairn.trace.jsonl")
    obs.start(trace_path=trace, audit=True, causal=True)
    try:
        converge_experiment(seed=0, topologies=("cairn",))
    finally:
        obs.stop()
    events = read_trace(trace)
    report = build_report(
        events,
        None,
        source={"trace": "tests/fixtures/causal_cairn.trace.jsonl"},
    )
    write_report(_path("causal_cairn.report.json"), report)


def regen_packet_net1() -> None:
    trace = _path("packet_net1.trace.jsonl")
    metrics = _path("packet_net1.metrics.json")
    observation = obs.start(trace_path=trace, audit=True, audit_sample=25)
    try:
        run_packet_level(
            net1_scenario(load=1.0),
            PacketRunConfig(tl=10, ts=2, duration=20.0, seed=0),
        )
        write_metrics(metrics, observation)
    finally:
        obs.stop()
    _report("packet_net1")


def _report(stem: str) -> None:
    import json

    events = read_trace(_path(f"{stem}.trace.jsonl"))
    with open(_path(f"{stem}.metrics.json")) as fh:
        metrics_doc = json.load(fh)
    report = build_report(
        events,
        metrics_doc,
        source={
            "trace": f"tests/fixtures/{stem}.trace.jsonl",
            "metrics": f"tests/fixtures/{stem}.metrics.json",
        },
    )
    write_report(_path(f"{stem}.report.json"), report)


if __name__ == "__main__":
    regen_converge()
    regen_causal_cairn()
    regen_packet_net1()
    print("fixtures regenerated under", HERE)
