"""The MPDA vs. flooding control-message overhead experiment."""

import pytest

from repro.bench.overhead import (
    OverheadReport,
    flood_lsa,
    flooding_full_update,
    measure_overhead,
    render_overhead_table,
)


class TestFlooding:
    def test_triangle_flood_count(self, triangle):
        """K3: origin sends 2; each receiver forwards on 1 non-arrival
        link; the two duplicate receptions are still transmissions."""
        assert flood_lsa(triangle, "a") == 4

    def test_line_topology_flood_count(self):
        from repro.graph.topology import Topology

        topo = Topology("line")
        topo.add_duplex_link("a", "b", capacity=1000.0, prop_delay=1e-3)
        topo.add_duplex_link("b", "c", capacity=1000.0, prop_delay=1e-3)
        # a->b, b->c: no duplicates on a line
        assert flood_lsa(topo, "a") == 2
        # b floods both ways
        assert flood_lsa(topo, "b") == 2

    def test_full_update_sums_all_origins(self, triangle):
        assert flooding_full_update(triangle) == 3 * 4


class TestMeasureOverhead:
    def test_triangle_report(self, triangle):
        report = measure_overhead(triangle, "K3", epochs=2, seed=1)
        assert report.topology == "K3"
        assert report.nodes == 3
        assert report.links == 6
        assert report.mpda_cold_start > 0
        assert len(report.mpda_per_epoch) == 2
        assert all(count > 0 for count in report.mpda_per_epoch)
        assert report.flooding_per_epoch == 12
        assert report.mpda_entries_sent > 0

    def test_deterministic_under_seed(self, triangle):
        first = measure_overhead(triangle, "K3", epochs=2, seed=7)
        second = measure_overhead(triangle, "K3", epochs=2, seed=7)
        assert first.mpda_per_epoch == second.mpda_per_epoch


class TestReport:
    def test_update_ratio(self):
        report = OverheadReport(
            topology="T", nodes=3, links=6, epochs=2,
            mpda_cold_start=10, mpda_per_epoch=[4, 6],
            flooding_cold_start=12, flooding_per_epoch=12,
        )
        assert report.mpda_update_mean == pytest.approx(5.0)
        assert report.update_ratio == pytest.approx(2.4)

    def test_render_table(self, triangle):
        report = measure_overhead(triangle, "K3", epochs=1)
        text = render_overhead_table([report])
        assert "K3" in text
        assert "flood/MPDA" in text
        assert "cold:MPDA" in text
