"""MPRouting: the assembled routing plane (both backends)."""

import pytest

from repro.core.router import MPRouting
from repro.exceptions import RoutingError
from repro.fluid.evaluator import evaluate
from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.validation import is_loop_free


@pytest.fixture
def routing(diamond):
    return MPRouting(diamond, ["t"])


class TestRouteComputation:
    def test_invalid_mode_rejected(self, diamond):
        with pytest.raises(RoutingError):
            MPRouting(diamond, ["t"], mode="quantum")

    def test_oracle_successors_multipath(self, routing, diamond):
        routing.update_routes(diamond.uniform_costs(1.0))
        assert set(routing.successors("t")["s"]) == {"a", "b"}

    def test_single_path_limit(self, diamond):
        routing = MPRouting(diamond, ["t"], successor_limit=1)
        routing.update_routes(diamond.uniform_costs(1.0))
        phi = routing.phi()
        assert list(phi["s"]["t"].values()) == [1.0]

    def test_phi_satisfies_property1(self, routing, diamond):
        routing.update_routes(diamond.uniform_costs(1.0))
        for node, per_dest in routing.phi().items():
            for dest, fractions in per_dest.items():
                if fractions:
                    assert sum(fractions.values()) == pytest.approx(1.0)

    def test_phi_loop_free(self, routing, diamond):
        routing.update_routes(diamond.uniform_costs(1.0))
        succ = {
            n: [k for k, v in routing.phi()[n].get("t", {}).items() if v > 0]
            for n in diamond.nodes
        }
        assert is_loop_free(succ)

    def test_allocation_shifts_toward_cheap_link(self, routing, diamond):
        costs = diamond.uniform_costs(1.0)
        routing.update_routes(costs)
        before = routing.fractions("s", "t")
        # make the link to a locally cheap and adjust
        costs[("s", "a")] = 0.1
        routing.adjust_allocation(costs)
        after = routing.fractions("s", "t")
        assert after["a"] > before["a"]

    def test_update_counts(self, routing, diamond):
        routing.update_routes(diamond.uniform_costs(1.0))
        routing.adjust_allocation(diamond.uniform_costs(1.0))
        assert routing.route_updates == 1
        assert routing.allocation_updates == 1


class TestBackendsAgree:
    @pytest.mark.parametrize("dest", ["t", "s"])
    def test_oracle_equals_protocol(self, diamond, dest):
        costs = diamond.uniform_costs(1.0)
        oracle = MPRouting(diamond, [dest], mode="oracle")
        protocol = MPRouting(diamond, [dest], mode="protocol")
        oracle.update_routes(costs)
        protocol.update_routes(costs)
        for node in diamond.nodes:
            assert sorted(
                map(repr, oracle.successors(dest).get(node, []))
            ) == sorted(map(repr, protocol.successors(dest).get(node, [])))

    def test_protocol_mode_tracks_cost_changes(self, diamond):
        protocol = MPRouting(diamond, ["t"], mode="protocol")
        costs = diamond.uniform_costs(1.0)
        protocol.update_routes(costs)
        costs[("b", "t")] = 10.0
        costs[("b", "a")] = 10.0
        costs[("b", "s")] = 10.0
        protocol.update_routes(costs)
        assert protocol.successors("t")["s"] == ["a"]

    def test_protocol_stats_exposed(self, diamond):
        protocol = MPRouting(diamond, ["t"], mode="protocol")
        protocol.update_routes(diamond.uniform_costs(1.0))
        stats = protocol.protocol_stats()
        assert stats["delivered"] > 0
        oracle = MPRouting(diamond, ["t"])
        assert oracle.protocol_stats() == {}


class TestDataPlaneIntegration:
    def test_phi_routes_all_traffic(self, diamond):
        routing = MPRouting(diamond, ["t"])
        routing.update_routes(diamond.uniform_costs(1.0))
        traffic = TrafficMatrix([Flow("s", "t", 100.0, name="x")])
        ev = evaluate(diamond, routing.phi(), traffic)
        assert ev.flow_delays["x"] > 0

    def test_used_successors_subset_of_successors(self, diamond):
        routing = MPRouting(diamond, ["t"])
        routing.update_routes(diamond.uniform_costs(1.0))
        used = routing.used_successors("t")
        all_succ = routing.successors("t")
        for node, chosen in used.items():
            assert set(chosen) <= set(all_succ.get(node, []))
