"""Cross-cutting property-based tests (hypothesis).

These stress the paper's invariants over generated inputs that the
per-module suites do not reach: random topologies, random demand
matrices, random allocation trajectories.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationTable, validate_property1
from repro.core.lfi import lfi_successors, shortest_successor
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import evaluate, link_flows, node_flows
from repro.fluid.flows import Flow, TrafficMatrix
from repro.gallager.marginals import marginal_distances
from repro.gallager.opt import optimize, shortest_path_phi
from repro.graph.generators import random_connected
from repro.graph.validation import is_loop_free
from repro.testing.fuzz import check_case, generate_case


def _random_traffic(topo, rng, n_flows=4, max_rate=300.0):
    nodes = topo.nodes
    flows = []
    for i in range(n_flows):
        src, dst = rng.sample(nodes, 2)
        flows.append(Flow(src, dst, rng.uniform(10.0, max_rate), name=f"f{i}"))
    return TrafficMatrix(flows)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lfi_sets_loop_free_under_random_costs(seed):
    rng = random.Random(seed)
    topo = random_connected(9, extra_links=7, seed=seed % 31)
    costs = {ln.link_id: rng.uniform(0.05, 4.0) for ln in topo.links()}
    for dest in topo.nodes[:3]:
        succ = lfi_successors(topo, costs, dest)
        assert is_loop_free(succ)
        single = shortest_successor(topo, costs, dest)
        for node in topo.nodes:
            if node != dest:
                assert set(single[node]) <= set(succ[node]) or not single[node]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fluid_conservation_on_random_networks(seed):
    """Every injected packet/s shows up at its destination (Eq. 1)."""
    rng = random.Random(seed)
    topo = random_connected(8, extra_links=5, seed=seed % 13)
    traffic = _random_traffic(topo, rng)
    phi = shortest_path_phi(topo, traffic.destinations())
    for dest in traffic.destinations():
        rates = traffic.rates_to(dest)
        t = node_flows(phi, rates, dest)
        assert t[dest] == pytest.approx(sum(rates.values()), rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gallager_never_increases_delay(seed):
    rng = random.Random(seed)
    topo = random_connected(7, extra_links=5, seed=seed % 11)
    traffic = _random_traffic(topo, rng, n_flows=3, max_rate=250.0)
    result = optimize(topo, traffic, eta=0.1, max_iterations=200)
    for earlier, later in zip(result.history, result.history[1:]):
        assert later <= earlier + 1e-9
    # and the final routing parameters stay valid everywhere
    for node, per_dest in result.phi.items():
        for dest, fractions in per_dest.items():
            validate_property1(fractions, fractions.keys())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gallager_marginal_distance_bounds_shortest_path(seed):
    """delta_ij >= shortest marginal-cost distance (it is phi-weighted)."""
    rng = random.Random(seed)
    topo = random_connected(7, extra_links=4, seed=seed % 7)
    traffic = _random_traffic(topo, rng, n_flows=2)
    phi = shortest_path_phi(topo, traffic.destinations())
    model = DelayModel.for_topology(topo)
    costs = model.marginals(link_flows(phi, traffic))
    from repro.graph.shortest_paths import bellman_ford

    for dest in traffic.destinations():
        delta = marginal_distances(phi, dest, costs)
        best = bellman_ford(costs, dest, nodes=topo.nodes)
        for node, value in delta.items():
            if value != float("inf"):
                assert value >= best[node] - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    steps=st.integers(1, 25),
)
def test_allocation_table_property1_through_random_trajectory(seed, steps):
    """Any sequence of successor sets and distances keeps Property 1."""
    rng = random.Random(seed)
    table = AllocationTable("r", damping=rng.choice([0.5, 1.0]))
    neighbors = ["a", "b", "c", "d"]
    for _ in range(steps):
        size = rng.randint(0, 4)
        chosen = rng.sample(neighbors, size)
        via = {k: rng.uniform(0.001, 5.0) for k in chosen}
        phi = table.update("j", via)
        validate_property1(phi, via.keys())
        if via:
            assert sum(phi.values()) == pytest.approx(1.0)


@settings(deadline=None)
@given(seed=st.integers(0, 100_000))
def test_mpda_quiesces_under_fuzzed_fault_schedules(seed):
    """Driver-level schedule property (the harness as a hypothesis
    strategy): any generated topology + fault profile + event schedule,
    run over the reliable transport, quiesces with Theorem 3 checked
    after every delivery and the Dijkstra oracle satisfied at the end —
    ``check_case`` returns the failure record, so clean is ``None``.

    ``max_examples`` comes from the active hypothesis profile (see
    ``conftest.py``): small for the dev default, larger under the CI
    fuzz job's ``HYPOTHESIS_PROFILE=ci``."""
    assert check_case(generate_case(seed)) is None


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_evaluate_consistent_total_vs_per_flow(seed):
    """Sum over flows of rate*delay equals D_T when every link has a
    single destination's traffic... more generally the total equals the
    flow-weighted sum of per-flow delays (both count every packet-second
    exactly once)."""
    rng = random.Random(seed)
    topo = random_connected(7, extra_links=4, seed=seed % 5)
    traffic = _random_traffic(topo, rng, n_flows=3, max_rate=200.0)
    phi = shortest_path_phi(topo, traffic.destinations())
    ev = evaluate(topo, phi, traffic)
    weighted = sum(
        flow.rate * ev.flow_delays[flow.label()] for flow in traffic.flows
    )
    assert weighted == pytest.approx(ev.total_delay, rel=1e-6)
