"""The curvature-scaled (Bertsekas-Gallager) OPT variant."""

import pytest

from repro.exceptions import RoutingError
from repro.gallager.marginals import optimality_gap
from repro.gallager.opt import optimize
from repro.sim.scenario import net1_scenario


@pytest.fixture(scope="module")
def scenario():
    return net1_scenario(load=1.2)


class TestCurvatureScaling:
    def test_unknown_scaling_rejected(self, scenario):
        with pytest.raises(RoutingError):
            optimize(scenario.topo, scenario.traffic, scaling="psychic")

    def test_reaches_same_optimum(self, scenario):
        plain = optimize(
            scenario.topo, scenario.traffic, eta=0.1, max_iterations=4000
        )
        scaled = optimize(
            scenario.topo,
            scenario.traffic,
            eta=0.2,
            max_iterations=500,
            scaling="curvature",
        )
        assert scaled.converged
        assert scaled.total_delay == pytest.approx(
            plain.total_delay, rel=1e-3
        )

    def test_converges_much_faster(self, scenario):
        plain = optimize(
            scenario.topo, scenario.traffic, eta=0.1, max_iterations=4000
        )
        scaled = optimize(
            scenario.topo,
            scenario.traffic,
            eta=0.2,
            max_iterations=4000,
            scaling="curvature",
        )
        assert scaled.iterations < plain.iterations / 5

    def test_monotone_descent_at_safe_eta(self, scenario):
        scaled = optimize(
            scenario.topo,
            scenario.traffic,
            eta=0.2,
            max_iterations=300,
            scaling="curvature",
        )
        for a, b in zip(scaled.history, scaled.history[1:]):
            assert b <= a + 1e-9

    def test_satisfies_optimality_conditions(self, scenario):
        scaled = optimize(
            scenario.topo,
            scenario.traffic,
            eta=0.2,
            max_iterations=500,
            scaling="curvature",
        )
        gap = optimality_gap(scenario.topo, scaled.phi, scenario.traffic)
        assert gap < 0.05

    def test_diamond_split(self, diamond, diamond_traffic):
        scaled = optimize(
            diamond,
            diamond_traffic,
            eta=0.2,
            max_iterations=500,
            scaling="curvature",
        )
        assert scaled.phi["s"]["t"]["a"] == pytest.approx(0.5, abs=0.02)
