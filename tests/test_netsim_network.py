"""The assembled packet network."""

import pytest

from repro.exceptions import SimulationError, TopologyError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.netsim.network import PacketNetwork
from repro.netsim.node import StaticRouting
from repro.netsim.packet import Packet


def diamond_network(diamond, split=0.5, **kwargs):
    phi = {
        "s": {"t": {"a": split, "b": 1.0 - split}},
        "a": {"t": {"t": 1.0}},
        "b": {"t": {"t": 1.0}},
    }
    return PacketNetwork(diamond, StaticRouting(phi), **kwargs)


class TestConstruction:
    def test_builds_all_links_and_nodes(self, diamond):
        net = diamond_network(diamond)
        assert len(net.nodes) == diamond.num_nodes
        assert len(net.links) == diamond.num_links

    def test_unknown_estimator_rejected(self, diamond):
        with pytest.raises(SimulationError):
            diamond_network(diamond, estimator="psychic")


class TestEndToEnd:
    def test_packets_delivered_with_conservation(self, diamond):
        net = diamond_network(diamond)
        traffic = TrafficMatrix([Flow("s", "t", 200.0, name="x")])
        net.attach_poisson(traffic, stop=20.0)
        net.run(until=30.0)
        fm = net.flow_monitor
        assert fm.total_injected() > 0
        # lossless network: everything injected is eventually delivered
        assert fm.total_delivered() == fm.total_injected()
        assert fm.no_route_drops == 0

    def test_delay_matches_mm1_prediction(self, diamond):
        """Two-hop path, both links M/M/1 at rho = 0.3."""
        net = diamond_network(diamond, split=1.0, seed=3)
        rate = 300.0
        traffic = TrafficMatrix([Flow("s", "t", rate, name="x")])
        net.attach_poisson(traffic, stop=60.0)
        net.run(until=80.0)
        expect = 2 * (1.0 / (1000.0 - rate) + 1e-3)
        measured = net.mean_flow_delays()["x"]
        assert measured == pytest.approx(expect, rel=0.1)

    def test_split_shares_load(self, diamond):
        net = diamond_network(diamond, split=0.5, seed=5)
        traffic = TrafficMatrix([Flow("s", "t", 400.0, name="x")])
        net.attach_poisson(traffic, stop=30.0)
        net.run(until=40.0)
        utils = net.link_utilizations()
        assert utils[("s", "a")] == pytest.approx(utils[("s", "b")], rel=0.2)

    def test_inject_unknown_source_rejected(self, diamond):
        net = diamond_network(diamond)
        with pytest.raises(TopologyError):
            net.inject(Packet("x", "ghost", "t", 0.0))


class TestMeasurement:
    def test_measured_costs_track_load(self, diamond):
        net = diamond_network(diamond, split=1.0, seed=1)
        traffic = TrafficMatrix([Flow("s", "t", 600.0, name="x")])
        net.attach_poisson(traffic, stop=20.0)
        net.run(until=20.0)
        costs = net.measure_costs()
        # loaded path must cost more than the idle alternative
        assert costs[("s", "a")] > costs[("s", "b")]

    def test_online_estimator_variant(self, diamond):
        net = diamond_network(diamond, split=1.0, seed=1, estimator="online")
        traffic = TrafficMatrix([Flow("s", "t", 500.0, name="x")])
        net.attach_poisson(traffic, stop=10.0)
        for k in range(1, 11):
            net.run(until=float(k))
            costs = net.measure_costs()
        assert costs[("s", "a")] > 0.0

    def test_onoff_attachment(self, diamond):
        net = diamond_network(diamond, seed=2)
        sources = net.attach_onoff(
            [Flow("s", "t", 100.0, name="x")], burstiness=3.0, stop=30.0
        )
        net.run(until=40.0)
        assert sources[0].emitted > 0
        delivered = net.flow_monitor.total_delivered()
        assert delivered == net.flow_monitor.total_injected()

    def test_bad_burstiness_rejected(self, diamond):
        net = diamond_network(diamond)
        with pytest.raises(SimulationError):
            net.attach_onoff([Flow("s", "t", 1.0)], burstiness=1.0)
