"""End-to-end checks of the paper's qualitative claims (fast settings).

The benchmarks regenerate the figures at full scale; these integration
tests assert the same *orderings* at reduced duration so the claims are
guarded by the ordinary test suite:

1. OPT <= MP < SP in delay under load (Figs. 9-12);
2. MP stays within a modest envelope of OPT (the near-optimality claim);
3. MP's successor graphs are loop-free throughout;
4. MP is insensitive to Tl while SP is not (Figs. 13-14);
5. MP beats SP under bursty traffic (the dynamic-environment claim).
"""

import pytest

from repro.graph.validation import is_loop_free
from repro.sim.runner import QuasiStaticConfig, run_opt, run_quasi_static
from repro.sim.scenario import bursty_scenario, cairn_scenario, net1_scenario

MP_CFG = dict(tl=10.0, ts=2.0, duration=120.0, warmup=40.0, damping=0.5)
SP_CFG = dict(tl=10.0, ts=2.0, duration=120.0, warmup=40.0, successor_limit=1)


@pytest.fixture(scope="module")
def net1_results():
    scenario = net1_scenario(load=1.5)
    mp = run_quasi_static(scenario, QuasiStaticConfig(**MP_CFG))
    sp = run_quasi_static(scenario, QuasiStaticConfig(**SP_CFG))
    opt, gallager = run_opt(scenario, max_iterations=1500)
    return scenario, mp, sp, opt, gallager


class TestNet1Claims:
    def test_opt_below_mp_below_sp_on_average(self, net1_results):
        _, mp, sp, opt, _ = net1_results
        assert opt.mean_average_delay() <= mp.mean_average_delay() * 1.02
        assert mp.mean_average_delay() < sp.mean_average_delay()

    def test_mp_within_small_envelope_of_opt(self, net1_results):
        """The paper reports MP within ~8% of OPT on NET1."""
        _, mp, _, opt, _ = net1_results
        mp_delays = mp.mean_flow_delays()
        opt_delays = opt.mean_flow_delays()
        ratios = [mp_delays[f] / opt_delays[f] for f in mp_delays]
        assert sum(ratios) / len(ratios) < 1.10
        assert max(ratios) < 1.35

    def test_sp_multiples_of_mp_for_some_flows(self, net1_results):
        """The paper: SP delays reach several times MP's."""
        _, mp, sp, _, _ = net1_results
        mp_delays = mp.mean_flow_delays()
        sp_delays = sp.mean_flow_delays()
        worst = max(sp_delays[f] / mp_delays[f] for f in mp_delays)
        assert worst > 2.0

    def test_mp_spreads_load(self, net1_results):
        _, mp, sp, _, _ = net1_results
        assert mp.peak_utilization() < sp.peak_utilization()


class TestCairnClaims:
    def test_orderings_hold(self):
        scenario = cairn_scenario(load=1.5)
        cfg_mp = dict(MP_CFG, duration=200.0, warmup=60.0)
        cfg_sp = dict(SP_CFG, duration=200.0, warmup=60.0)
        mp = run_quasi_static(scenario, QuasiStaticConfig(**cfg_mp))
        sp = run_quasi_static(scenario, QuasiStaticConfig(**cfg_sp))
        opt, _ = run_opt(scenario, max_iterations=1500)
        assert opt.mean_average_delay() <= mp.mean_average_delay() * 1.02
        assert mp.mean_average_delay() < sp.mean_average_delay()
        mp_delays = mp.mean_flow_delays()
        opt_delays = opt.mean_flow_delays()
        mean_ratio = sum(
            mp_delays[f] / opt_delays[f] for f in mp_delays
        ) / len(mp_delays)
        assert mean_ratio < 1.10  # the paper's 5% envelope, with slack


class TestTlSensitivity:
    def test_mp_insensitive_sp_sensitive(self):
        """Figs. 13-14: MP barely moves with Tl; SP moves a lot."""
        scenario = cairn_scenario(load=1.25)
        mp_delays, sp_delays = [], []
        for tl in (10.0, 40.0):
            # long runs: at Tl=40 a 160 s run sees too few route updates
            cfg = dict(
                tl=tl, ts=2.0, duration=280.0, warmup=60.0, queue_limit=750.0
            )
            mp = run_quasi_static(
                scenario, QuasiStaticConfig(damping=0.5, **cfg)
            )
            sp = run_quasi_static(
                scenario, QuasiStaticConfig(successor_limit=1, **cfg)
            )
            mp_delays.append(mp.mean_average_delay())
            sp_delays.append(sp.mean_average_delay())
        mp_change = abs(mp_delays[1] - mp_delays[0]) / mp_delays[0]
        sp_change = abs(sp_delays[1] - sp_delays[0]) / sp_delays[0]
        assert mp_change < 0.15
        assert sp_change > 0.5
        # and on CAIRN the paper's direction: longer Tl hurts SP
        assert sp_delays[1] > sp_delays[0]


class TestDynamicTraffic:
    def test_mp_beats_sp_under_bursts(self):
        scenario = bursty_scenario(
            net1_scenario(load=0.7), burstiness=3.0, mean_on=8.0, seed=3
        )
        cfg = dict(tl=10.0, ts=2.0, duration=300.0, warmup=60.0)
        mp = run_quasi_static(scenario, QuasiStaticConfig(damping=0.5, **cfg))
        sp = run_quasi_static(
            scenario, QuasiStaticConfig(successor_limit=1, **cfg)
        )
        assert mp.mean_average_delay() < 0.5 * sp.mean_average_delay()


class TestLoopFreedomEndToEnd:
    def test_mp_successor_graphs_loop_free_every_update(self):
        """Re-runs a short MP run and checks the DAG after each epoch."""
        from repro.core.router import MPRouting
        from repro.fluid.delay import DelayModel
        from repro.fluid.evaluator import link_flows

        scenario = net1_scenario(load=1.5)
        topo = scenario.topo
        model = DelayModel.for_topology(topo, queue_limit=100.0)
        routing = MPRouting(topo, scenario.traffic.destinations())
        routing.update_routes(topo.idle_marginal_costs())
        for step in range(12):
            flows = link_flows(routing.phi(), scenario.traffic)
            costs = model.marginals(flows)
            if step % 5 == 4:
                routing.update_routes(costs)
            else:
                routing.adjust_allocation(costs)
            for dest in scenario.traffic.destinations():
                phi = routing.phi()
                succ = {
                    n: [k for k, v in phi[n].get(dest, {}).items() if v > 0]
                    for n in topo.nodes
                }
                assert is_loop_free(succ)
