"""The scale-trajectory benchmark and its regression gate."""

import copy
import json
import os

import pytest

from repro.bench.scale import (
    SCALE_SCHEMA,
    SCALE_SIZES,
    compare_scale,
    render_scale_table,
    scale_point,
    scale_scenario,
    write_scale,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def cairn_entry():
    """One real (fast) trajectory point, shared across this module."""
    return scale_point(27)


class TestScalePoint:
    def test_entry_shape(self, cairn_entry):
        entry = cairn_entry
        assert entry["n"] == 27
        assert entry["generator"] == "cairn"
        assert entry["nodes"] == 27
        assert entry["messages"] > 0
        assert entry["wall_s"] > 0
        assert entry["cpu_s"] > 0
        assert entry["rss_max_kb"] > 0
        assert entry["deliveries_per_second"] > 0
        assert "protocol.driver.run" in entry["phases"]
        driver_phase = entry["phases"]["protocol.driver.run"]
        assert driver_phase["calls"] == 4  # boot + fail + restore + Tl
        assert set(driver_phase) == {"total_s", "self_s", "cpu_s", "calls"}
        assert "self time" in entry["profile_report"]

    def test_message_counts_deterministic(self, cairn_entry):
        again = scale_point(27)
        assert again["messages"] == cairn_entry["messages"]
        assert again["lsu_sent"] == cairn_entry["lsu_sent"]
        assert again["mtu_runs"] == cairn_entry["mtu_runs"]
        assert {k: v["calls"] for k, v in again["phases"].items()} == {
            k: v["calls"] for k, v in cairn_entry["phases"].items()
        }

    def test_self_time_never_exceeds_total(self, cairn_entry):
        for name, phase in cairn_entry["phases"].items():
            assert phase["self_s"] <= phase["total_s"] + 1e-9, name

    def test_generated_scenario_is_reproducible(self):
        a, gen_a = scale_scenario(50)
        b, gen_b = scale_scenario(50)
        assert gen_a == gen_b == "waxman"
        assert a.topo.num_links == b.topo.num_links
        assert [f.label() for f in a.traffic.flows] == [
            f.label() for f in b.traffic.flows
        ]
        assert a.links_down_at(3.0) != frozenset()
        assert a.links_down_at(7.0) == frozenset()


def _fake_doc():
    """A minimal two-size document for pure compare_scale tests."""
    entry = {
        "name": "cairn",
        "generator": "cairn",
        "n": 27,
        "nodes": 27,
        "links": 74,
        "seed": 0,
        "messages": 1922,
        "lsu_sent": 961,
        "mtu_runs": 500,
        "wall_s": 0.2,
        "cpu_s": 0.2,
        "rss_max_kb": 17000.0,
        "phases": {
            "protocol.driver.run": {
                "total_s": 0.19,
                "self_s": 0.19,
                "cpu_s": 0.18,
                "calls": 4,
            }
        },
    }
    big = dict(entry, name="waxman50-0", n=50, nodes=50, links=246)
    return {
        "schema": SCALE_SCHEMA,
        "workload": {"seed": 0},
        "entries": [entry, copy.deepcopy(big)],
    }


class TestCompareScale:
    def test_identical_documents_pass(self):
        doc = _fake_doc()
        assert compare_scale(doc, copy.deepcopy(doc)) == []

    def test_wall_clock_regression_fails(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][0]["wall_s"] = baseline["entries"][0]["wall_s"] * 10
        problems = compare_scale(baseline, fresh)
        assert len(problems) == 1
        assert "wall_s regressed" in problems[0]

    def test_wall_clock_noise_within_factor_passes(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][0]["wall_s"] = baseline["entries"][0]["wall_s"] * 3
        assert compare_scale(baseline, fresh) == []

    def test_message_count_change_fails_exactly(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][0]["messages"] += 1
        problems = compare_scale(baseline, fresh)
        assert any("messages changed" in p for p in problems)

    def test_phase_call_count_change_fails(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][0]["phases"]["protocol.driver.run"]["calls"] = 5
        problems = compare_scale(baseline, fresh)
        assert any("call count changed" in p for p in problems)

    def test_subset_fresh_document_checks_only_what_ran(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"] = fresh["entries"][:1]  # CI --max-nodes subset
        assert compare_scale(baseline, fresh) == []

    def test_unknown_size_in_fresh_is_flagged(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][1]["n"] = 999
        problems = compare_scale(baseline, fresh)
        assert any("no baseline entry" in p for p in problems)

    def test_memory_regression_uses_its_own_factor(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["entries"][0]["rss_max_kb"] = (
            baseline["entries"][0]["rss_max_kb"] * 4
        )
        assert compare_scale(baseline, fresh) != []
        assert (
            compare_scale(baseline, fresh, factors={"rss_max_kb": 5.0})
            == []
        )

    def test_schema_mismatch_fails_fast(self):
        baseline, fresh = _fake_doc(), _fake_doc()
        fresh["schema"] = "something-else"
        problems = compare_scale(baseline, fresh)
        assert problems and "schema mismatch" in problems[0]

    def test_render_table(self, tmp_path):
        doc = _fake_doc()
        table = render_scale_table(doc)
        assert "cairn" in table and "waxman50-0" in table
        path = tmp_path / "scale.json"
        write_scale(str(path), doc)
        assert json.loads(path.read_text())["schema"] == SCALE_SCHEMA


class TestCommittedArtifact:
    def test_bench_scale_has_the_full_trajectory(self):
        with open(os.path.join(REPO_ROOT, "BENCH_scale.json")) as fh:
            committed = json.load(fh)
        assert committed["schema"] == SCALE_SCHEMA
        sizes = [entry["n"] for entry in committed["entries"]]
        assert sizes == sorted(SCALE_SIZES)
        for entry in committed["entries"]:
            assert entry["messages"] > 0
            assert entry["wall_s"] > 0
            assert entry["cpu_s"] > 0
            assert entry["rss_max_kb"] > 0
            assert entry["phases"], entry["name"]
            for phase in entry["phases"].values():
                assert {"total_s", "self_s", "cpu_s", "calls"} <= set(
                    phase
                )

    def test_fresh_cairn_run_matches_committed_counts(self, cairn_entry):
        """The deterministic half of the committed artifact is live."""
        with open(os.path.join(REPO_ROOT, "BENCH_scale.json")) as fh:
            committed = json.load(fh)
        recorded = {e["n"]: e for e in committed["entries"]}[27]
        assert cairn_entry["messages"] == recorded["messages"]
        assert cairn_entry["lsu_sent"] == recorded["lsu_sent"]
        assert cairn_entry["links"] == recorded["links"]
