"""Measurement plumbing: link windows and flow statistics."""

import pytest

from repro.exceptions import SimulationError
from repro.netsim.monitor import (
    FlowMonitor,
    LinkMonitor,
    check_hop_limit,
    hop_limit,
)
from repro.netsim.packet import Packet


class TestLinkMonitor:
    def test_window_flow_and_delay(self):
        monitor = LinkMonitor(prop_delay=1e-3)
        monitor.record(0.004, 0.006)
        monitor.record(0.008, 0.012)
        m = monitor.take_window(now=2.0)
        assert m.flow == pytest.approx(1.0)  # 2 packets / 2 seconds
        assert m.per_unit_delay == pytest.approx(0.015 + 1e-3)

    def test_window_resets(self):
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.record(0.005, 0.005)
        monitor.take_window(now=1.0)
        m = monitor.take_window(now=3.0)
        assert m.flow == 0.0

    def test_empty_window_reports_idle(self):
        monitor = LinkMonitor(prop_delay=2e-3)
        m = monitor.take_window(now=1.0)
        assert m.flow == 0.0
        assert m.per_unit_delay == pytest.approx(2e-3)

    def test_zero_length_window_rejected(self):
        monitor = LinkMonitor(prop_delay=0.0)
        with pytest.raises(SimulationError):
            monitor.take_window(now=0.0)

    def test_total_packets_not_reset(self):
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.record(0.01, 0.0)
        monitor.take_window(now=1.0)
        monitor.record(0.01, 0.0)
        assert monitor.total_packets == 2

    def test_backwards_window_rejected(self):
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.take_window(now=2.0)
        with pytest.raises(SimulationError):
            monitor.take_window(now=1.0)

    def test_consecutive_windows_partition_records(self):
        """A record landing after a close belongs to the next window."""
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.record(0.01, 0.0)
        first = monitor.take_window(now=1.0)
        monitor.record(0.0, 0.03)
        second = monitor.take_window(now=2.0)
        assert first.flow == pytest.approx(1.0)
        assert second.flow == pytest.approx(1.0)
        assert second.per_unit_delay == pytest.approx(0.03)

    def test_tiny_window_scales_flow(self):
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.record(0.01, 0.0)
        m = monitor.take_window(now=1e-6)
        assert m.flow == pytest.approx(1e6)

    def test_delay_decomposition_totals(self):
        monitor = LinkMonitor(prop_delay=2e-3)
        monitor.record(0.010, 0.004)
        monitor.record(0.020, 0.006)
        monitor.record(0.001, 0.002, propagated=False)
        assert monitor.total_wait_s == pytest.approx(0.031)
        assert monitor.total_service_s == pytest.approx(0.012)
        # only the two propagated packets accrue propagation time
        assert monitor.total_prop_s == pytest.approx(4e-3)

    def test_decomposition_survives_window_close(self):
        monitor = LinkMonitor(prop_delay=0.0)
        monitor.record(0.01, 0.02)
        monitor.take_window(now=1.0)
        assert monitor.total_wait_s == pytest.approx(0.01)
        assert monitor.total_service_s == pytest.approx(0.02)


class TestFlowMonitor:
    def test_delivery_statistics(self):
        monitor = FlowMonitor()
        p = Packet("f", "a", "b", created_at=1.0)
        p.hops = 3
        monitor.note_injected("f")
        monitor.note_delivered(p, now=1.5)
        rec = monitor.flows["f"]
        assert rec.delivered == 1
        assert rec.mean_delay == pytest.approx(0.5)
        assert rec.mean_hops == 3
        assert rec.max_delay == pytest.approx(0.5)

    def test_in_flight_accounting(self):
        monitor = FlowMonitor()
        monitor.note_injected("f")
        monitor.note_injected("f")
        monitor.note_injected("g")
        monitor.note_no_route()
        p = Packet("f", "a", "b", 0.0)
        monitor.note_delivered(p, now=1.0)
        assert monitor.total_injected() == 3
        assert monitor.total_delivered() == 1
        assert monitor.in_flight() == 1

    def test_mean_delays_empty(self):
        assert FlowMonitor().mean_delays() == {}

    def test_queue_drops_counted(self):
        monitor = FlowMonitor()
        monitor.note_queue_drop()
        monitor.note_queue_drop()
        assert monitor.queue_drops == 2
        assert monitor.total_dropped() == 2

    def test_total_dropped_sums_both_causes(self):
        monitor = FlowMonitor()
        monitor.note_no_route()
        monitor.note_queue_drop()
        assert monitor.total_dropped() == 2

    def test_in_flight_excludes_queue_drops(self):
        monitor = FlowMonitor()
        for _ in range(4):
            monitor.note_injected("f")
        monitor.note_queue_drop()
        monitor.note_no_route()
        p = Packet("f", "a", "b", 0.0)
        monitor.note_delivered(p, now=1.0)
        assert monitor.in_flight() == 1


class TestHopLimit:
    def test_scales_with_network(self):
        assert hop_limit(100) == 800
        assert hop_limit(2) == 32  # floor for tiny networks

    def test_check_raises_beyond_limit(self):
        p = Packet("f", "a", "b", 0.0)
        p.hops = hop_limit(10) + 1
        with pytest.raises(SimulationError):
            check_hop_limit(p, 10, "r")

    def test_check_passes_within_limit(self):
        p = Packet("f", "a", "b", 0.0)
        p.hops = 5
        check_hop_limit(p, 10, "r")
