"""Regenerate the committed fuzz regression corpus.

Usage (from the repo root)::

    PYTHONPATH=src python tests/corpus/regen.py

The corpus is distilled from two fleet campaigns, run inline so the
selection is deterministic:

- a ~2000-case **reliable** campaign across the whole fuzz policy zoo
  (seed-major interleave, so every policy sees the same adversarial
  schedules).  The campaign must come back clean; from it the script
  keeps, per policy, the *deepest* passing case (most protocol
  deliveries for ``mp``, most audited fraction checks for the zoo
  policies) plus the pinned CAIRN case whose schedule hits the
  ``tis <-> udel`` link under ``ecmp-k`` — the hashed k-subset split is
  most sensitive to losing a bridge between its east-coast clusters;
- a 40-seed **raw-channel** ``mp`` campaign (the reliable-delivery
  assumption of the paper deliberately violated), whose failures are
  minimized by the fleet and committed as expected-failure entries, one
  per distinct (failure type, topology kind).

Every corpus document embeds the full case plus the expected outcome:

- ``expect: "pass"`` entries pin the exact deterministic metrics
  (deliveries, message counts, audit totals) — any drift is a
  behavioral regression, not just a new failure;
- ``expect: "violation"`` entries are ordinary replay artifacts (the
  ``failure`` field is verbatim what ``repro replay`` checks) with the
  corpus fields added, so ``repro replay tests/corpus/<f>.json`` works.

``tests/test_corpus_replay.py`` re-executes every entry.  Regenerate
only when behavior changes on purpose; the diff is the review artifact.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile

from repro.fleet import FUZZ_POLICIES, fuzz_plan, run_fleet
from repro.testing.fuzz import ARTIFACT_VERSION, FuzzCase, generate_case, load_artifact

HERE = os.path.dirname(os.path.abspath(__file__))

#: Reliable campaign size: ~2000 cells, seed-major across the zoo.
CAMPAIGN_SEEDS = 286  # x len(FUZZ_POLICIES) = 2002 cells
#: Raw-channel campaign: seeds 100.. are the known-failing band.
RAW_SEEDS = 40
RAW_SEED_BASE = 100
#: At most this many expected-failure entries (distinct failure modes).
MAX_VIOLATIONS = 6


def _depth(row: dict) -> tuple:
    """Selection key: how much work a passing cell actually exercised."""
    metrics = row.get("result", {}).get("metrics", {})
    return (
        metrics.get("delivered", 0),
        metrics.get("audit_checks", 0),
        metrics.get("route_updates", 0),
        -row["params"]["seed"],  # ties break toward the smallest seed
    )


def _touches(schedule, *nodes) -> bool:
    return all(
        any(node in event[1:3] for event in schedule if len(event) >= 3)
        for node in nodes
    )


def _pinned_tricky_case(rows) -> dict | None:
    """The CAIRN ``tis <-> udel`` / ``ecmp-k`` cell (lowest seed)."""
    candidates = []
    for row in rows:
        if row["params"]["policy"] != "ecmp-k" or row["status"] != "pass":
            continue
        case = generate_case(row["params"]["seed"], policy="ecmp-k")
        if case.topology != {"kind": "named", "name": "cairn"}:
            continue
        if _touches(case.schedule, "tis", "udel"):
            candidates.append(row)
    return min(candidates, key=lambda r: r["params"]["seed"], default=None)


def _pass_doc(row: dict, note: str) -> dict:
    params = row["params"]
    case = generate_case(params["seed"], policy=params["policy"])
    return {
        "version": ARTIFACT_VERSION,
        "expect": "pass",
        "note": note,
        "case": case.as_dict(),
        "metrics": row["result"]["metrics"],
    }


def _violation_doc(artifact_path: str, note: str) -> dict:
    case, failure = load_artifact(artifact_path)
    return {
        "version": ARTIFACT_VERSION,
        "expect": "violation",
        "note": note,
        "case": case.as_dict(),
        "failure": failure,
    }


def _entry_name(doc: dict) -> str:
    case = doc["case"]
    return f"{doc['expect']}-{case['policy']}-{case['seed']}.json"


def build_corpus() -> list[str]:
    docs = []

    with tempfile.TemporaryDirectory() as tmp:
        plan = fuzz_plan(
            CAMPAIGN_SEEDS * len(FUZZ_POLICIES), seed=0, minimize=False
        )
        report = run_fleet(
            plan, out_dir=os.path.join(tmp, "reliable"), inline=True
        )
        if set(report["statuses"]) != {"pass"}:
            raise SystemExit(
                f"reliable campaign not clean: {report['statuses']} — "
                "fix the regression before regenerating the corpus"
            )
        rows = report["rows"]
        for policy in FUZZ_POLICIES:
            best = max(
                (r for r in rows if r["params"]["policy"] == policy),
                key=_depth,
            )
            docs.append(
                _pass_doc(
                    best,
                    f"deepest passing {policy} cell of the "
                    f"{len(plan.cells)}-case reliable campaign",
                )
            )
        pinned = _pinned_tricky_case(rows)
        if pinned is None:
            raise SystemExit(
                "no CAIRN tis<->udel ecmp-k case in the campaign; "
                "widen CAMPAIGN_SEEDS"
            )
        pinned_doc = _pass_doc(
            pinned,
            "CAIRN schedule hitting the tis<->udel link under ecmp-k "
            "(hashed k-subset split losing an east-coast bridge)",
        )
        if not any(d["case"] == pinned_doc["case"] for d in docs):
            docs.append(pinned_doc)

        raw = fuzz_plan(
            RAW_SEEDS,
            seed=RAW_SEED_BASE,
            policies=("mp",),
            reliable=False,
            minimize=True,
        )
        raw_report = run_fleet(
            raw, out_dir=os.path.join(tmp, "raw"), inline=True
        )
        seen_modes = set()
        for failure in raw_report["summary"]["failures"]:
            case = generate_case(failure["seed"], reliable=False)
            mode = (failure["failure"]["type"], case.topology["kind"])
            if mode in seen_modes or not failure.get("artifact"):
                continue
            seen_modes.add(mode)
            docs.append(
                _violation_doc(
                    failure["artifact"],
                    "raw channel (reliable-delivery assumption removed): "
                    f"minimized {failure['failure']['type']} on a "
                    f"{case.topology['kind']} topology",
                )
            )
            if len(seen_modes) >= MAX_VIOLATIONS:
                break
        if not seen_modes:
            raise SystemExit("raw campaign produced no failures to commit")

    for stale in glob.glob(os.path.join(HERE, "*.json")):
        os.remove(stale)
    names = []
    for doc in docs:
        name = _entry_name(doc)
        with open(os.path.join(HERE, name), "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        names.append(name)
    return sorted(names)


if __name__ == "__main__":
    for name in build_corpus():
        print("wrote", os.path.join("tests/corpus", name))
