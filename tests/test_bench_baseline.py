"""The BENCH_report.json performance-baseline collector."""

import json
import os

from repro.bench.baseline import (
    BASELINE_SCHEMA,
    collect_baseline,
    write_baseline,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestCollect:
    def test_structure_and_determinism(self, tmp_path):
        baseline = collect_baseline(
            epochs=1, seed=0, topologies=("net1",)
        )
        assert baseline["schema"] == BASELINE_SCHEMA
        names = [
            t["topology"] for t in baseline["overhead"]["topologies"]
        ]
        assert names == ["CAIRN", "NET1"]
        (run,) = baseline["converge"]["runs"]
        # Deterministic message counts (seed 0) and a clean audit.
        assert run["cold_messages"] == 259
        assert run["audit"]["verdict"] == "pass"
        assert run["audit"]["violations"] == 0
        # Auditing must not change the protocol's behaviour.
        assert baseline["converge"]["plain_runs_match"] == [True]
        path = tmp_path / "b.json"
        write_baseline(str(path), baseline)
        assert json.loads(path.read_text())["schema"] == BASELINE_SCHEMA


class TestCommittedArtifact:
    def test_bench_report_is_current_schema(self):
        with open(os.path.join(REPO_ROOT, "BENCH_report.json")) as fh:
            committed = json.load(fh)
        assert committed["schema"] == BASELINE_SCHEMA
        # The deterministic halves must match a fresh run's values.
        runs = {
            run["topology"]: run for run in committed["converge"]["runs"]
        }
        assert runs["CAIRN"]["cold_messages"] == 844
        assert runs["CAIRN"]["fail_messages"] == 254
        assert runs["CAIRN"]["restore_messages"] == 118
        assert runs["NET1"]["cold_messages"] == 259
        assert all(
            run["audit"]["violations"] == 0 for run in runs.values()
        )

    def test_recorded_audit_slowdown_is_bounded(self):
        """The incremental auditor keeps every-event auditing cheap.

        Asserted against the committed artifact (a deterministic read)
        rather than a fresh timing, so CI noise cannot flake this; the
        artifact itself is regenerated whenever audit performance work
        lands.  Before the incremental per-destination cache this ratio
        was 28x.
        """
        with open(os.path.join(REPO_ROOT, "BENCH_report.json")) as fh:
            committed = json.load(fh)
        assert committed["converge"]["audit_slowdown"] < 10.0
