"""Causal tracing: tracker mechanics, pinned CAIRN waves, provenance.

Three layers of guarantees:

- :class:`~repro.obs.causal.CausalTracker` unit mechanics (parent
  links, Lamport clocks, orphan accounting, wave folding, the critical
  path's exact wall-time decomposition);
- the committed ``causal_cairn`` fixture pins every deterministic wave
  and critical-path number of the CAIRN cold-start/failover/restore
  run;
- the differential contract: a causal run's trace is byte-identical to
  a non-causal run modulo the declared causal kinds/fields, and
  ``provenance_chain`` walks a post-failure route all the way back to
  the ``link_down`` root.
"""

import json
import os

import pytest

from repro import obs
from repro.bench.convergence import (
    failover_experiment,
    pick_failure_link,
)
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.graph.topologies import cairn, net1
from repro.obs.causal import (
    CAUSAL_FIELDS,
    CAUSAL_KINDS,
    CausalTracker,
    provenance_chain,
    render_explanation,
)
from repro.obs.convergence import read_trace

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
CAUSAL_TRACE = os.path.join(FIXTURES, "causal_cairn.trace.jsonl")
CAUSAL_REPORT = os.path.join(FIXTURES, "causal_cairn.report.json")


class TestCausalTracker:
    def test_delivery_chain_depth_and_lamport(self):
        tracker = CausalTracker()
        root = tracker.open_root("link_down", ("a", "b"), delivered=0)
        tracker.sent(seq=7)
        first = tracker.deliver(("a", "b"), seq=7, delivered=1)
        assert first.parent == root
        assert first.root == root
        assert first.depth == 1
        assert first.lamport == 1
        tracker.sent(seq=8)
        second = tracker.deliver(("b", "c"), seq=8, delivered=2)
        assert second.parent == first.eid
        assert second.depth == 2
        # Lamport: max(receiver clock 0, sender clock 1) + 1.
        assert second.lamport == 2
        assert tracker.orphans == 0

    def test_lamport_clock_merges_message_clock(self):
        tracker = CausalTracker()
        tracker.open_root("start", None, delivered=0)
        # Drive b's clock up via a chain, then deliver to c from deep
        # in the chain: c's first event must jump past its local 0.
        tracker.sent(seq=1)
        tracker.deliver(("a", "b"), seq=1, delivered=1)
        tracker.sent(seq=2)
        tracker.deliver(("x", "b"), seq=2, delivered=2)
        tracker.sent(seq=3)
        event = tracker.deliver(("b", "c"), seq=3, delivered=3)
        assert event.lamport == 3

    def test_untagged_delivery_is_an_orphan(self):
        tracker = CausalTracker()
        tracker.open_root("start", None, delivered=0)
        event = tracker.deliver(("a", "b"), seq=999, delivered=1)
        assert tracker.orphans == 1
        assert event.parent is None
        assert event.root is None
        waves, _ = tracker.quiesce(delivered=1)
        # Orphans belong to no wave.
        assert waves[0]["messages"] == 0

    def test_quiesce_folds_wave_stats(self):
        tracker = CausalTracker()
        root = tracker.open_root("link_down", ("a", "b"), delivered=0)
        tracker.sent(seq=1)
        tracker.sent(seq=2)  # the root fans out two messages
        tracker.deliver(("a", "b"), seq=1, delivered=1)
        tracker.sent(seq=3)  # b relays one
        tracker.deliver(("a", "c"), seq=2, delivered=2)
        tracker.deliver(("b", "d"), seq=3, delivered=3)
        waves, _ = tracker.quiesce(delivered=3)
        (wave,) = waves
        assert wave["root"] == root
        assert wave["op"] == "link_down"
        assert wave["messages"] == 3
        assert wave["depth"] == 2
        assert wave["breadth"] == 2  # two deliveries at depth 1
        assert wave["max_fanout"] == 2  # the root sent two messages
        assert wave["nodes"] == 3  # b, c, d
        assert wave["start_delivered"] == 0
        assert wave["end_delivered"] == 3

    def test_critical_path_decomposition_telescopes(self):
        tracker = CausalTracker()
        tracker.open_root("link_down", ("a", "b"), delivered=0)
        tracker.sent(seq=1)
        tracker.deliver(("a", "b"), seq=1, delivered=1)
        tracker.touch()
        tracker.sent(seq=2)
        tracker.deliver(("b", "c"), seq=2, delivered=2)
        tracker.touch()
        _, critical = tracker.quiesce(delivered=2)
        assert critical["length"] == 2
        assert [hop["node"] for hop in critical["path"]] == ["b", "c"]
        parts = (
            critical["processing_s"]
            + critical["propagation_s"]
            + critical["timer_wait_s"]
        )
        # Serial driver: the decomposition is exact up to 1e-6 rounding.
        assert parts == pytest.approx(critical["total_s"], abs=1e-5)

    def test_window_without_deliveries_has_empty_path(self):
        tracker = CausalTracker()
        tracker.open_root("link_cost_change", ("a", "b"), delivered=5)
        waves, critical = tracker.quiesce(delivered=5)
        assert waves[0]["messages"] == 0
        assert critical["length"] == 0
        assert critical["path"] == []
        assert critical["propagation_s"] == 0.0

    def test_quiesce_clears_inflight_tags(self):
        tracker = CausalTracker()
        tracker.open_root("start", None, delivered=0)
        tracker.sent(seq=1)
        tracker.quiesce(delivered=0)
        assert tracker.tags == {}
        tracker.open_root("link_down", ("a", "b"), delivered=0)
        tracker.deliver(("a", "b"), seq=1, delivered=1)
        assert tracker.orphans == 1

    def test_failure_slice_is_root_first_and_deterministic(self):
        tracker = CausalTracker()
        root = tracker.open_root("link_down", ("a", "b"), delivered=0)
        tracker.sent(seq=1)
        tracker.deliver(("a", "b"), seq=1, delivered=1)
        tracker.sent(seq=2)
        tracker.deliver(("b", "c"), seq=2, delivered=2)
        chain = tracker.failure_slice()
        assert [entry["kind"] for entry in chain] == [
            "root", "deliver", "deliver",
        ]
        assert chain[0]["eid"] == root
        # No wall-clock fields: the slice must replay verbatim.
        for entry in chain:
            assert "start" not in entry and "end" not in entry


class TestCairnFixturePins:
    """Every deterministic causal number of the committed CAIRN run."""

    @pytest.fixture(scope="class")
    def events(self):
        return read_trace(CAUSAL_TRACE)

    def test_wave_spans(self, events):
        waves = [e for e in events if e["kind"] == "wave_span"]
        assert [w["op"] for w in waves] == ["start", "link_down", "link_up"]
        assert [w["messages"] for w in waves] == [844, 254, 118]
        assert [w["depth"] for w in waves] == [15, 11, 11]
        assert [w["breadth"] for w in waves] == [79, 45, 26]
        assert [w["max_fanout"] for w in waves] == [74, 5, 5]
        assert [w["nodes"] for w in waves] == [27, 25, 25]

    def test_critical_paths(self, events):
        paths = [e for e in events if e["kind"] == "critical_path"]
        assert [p["op"] for p in paths] == ["start", "link_down", "link_up"]
        assert [p["length"] for p in paths] == [13, 10, 11]
        for path in paths:
            assert len(path["path"]) == path["length"]
            parts = (
                path["processing_s"]
                + path["propagation_s"]
                + path["timer_wait_s"]
            )
            assert parts == pytest.approx(path["total_s"], abs=1e-4)
            # Lamport values strictly increase along a causal chain.
            lamports = [hop["lamport"] for hop in path["path"]]
            assert lamports == sorted(lamports)

    def test_quiescent_wave_accounting(self, events):
        quiescents = [e for e in events if e["kind"] == "quiescent"]
        assert [q["waves"] for q in quiescents] == [1, 1, 1]
        assert all(q["orphans"] == 0 for q in quiescents)

    def test_report_causal_section(self):
        with open(CAUSAL_REPORT) as fh:
            report = json.load(fh)
        causal = report["causal"]
        assert causal["waves"] == 3
        assert causal["messages_in_waves"] == 844 + 254 + 118
        assert causal["max_depth"] == 15
        assert causal["orphans"] == 0
        paths = causal["critical_paths"]
        assert [p["label"] for p in paths] == [
            "start", "link_down", "link_up",
        ]
        # Acceptance bound: on the failover window the critical path
        # accounts for the measured convergence window within 5%.  The
        # other windows only get a sanity band — their roots predate
        # the run() wall clock (cold-start bring-up; injection-time
        # processing on the very short restore window), so coverage
        # legitimately exceeds 1 by the pre-run() work.
        down = next(p for p in paths if p["label"] == "link_down")
        assert down["coverage"] == pytest.approx(1.0, abs=0.05)
        for path in paths:
            assert 0.85 <= path["coverage"] <= 1.3

    def test_explain_walks_fixture_to_a_root(self):
        events = read_trace(CAUSAL_TRACE)
        chain = provenance_chain(events, "mit", "anl")
        assert chain is not None
        assert chain[-1]["kind"] == "disturbance"
        text = render_explanation(chain, "mit", "anl")
        assert "route provenance: mit -> anl" in text
        assert "chain:" in text
        assert "truncated" not in text


class TestDifferential:
    """Causal tracing must not perturb the observed protocol run."""

    def _trace(self, tmp_path, name, *, causal):
        path = tmp_path / name
        with obs.observe(trace_path=str(path), causal=causal):
            result = failover_experiment(net1(), "NET1", seed=0)
        return result, read_trace(str(path))

    @staticmethod
    def _normalize(events):
        kept = []
        for event in events:
            if event["kind"] in CAUSAL_KINDS:
                continue
            drop = CAUSAL_FIELDS.get(event["kind"], frozenset())
            kept.append(
                {
                    k: v
                    for k, v in event.items()
                    if k not in drop and k != "wall_s"
                }
            )
        return kept

    def test_traces_identical_modulo_causal_fields(self, tmp_path):
        plain_result, plain = self._trace(tmp_path, "off.jsonl",
                                          causal=False)
        causal_result, causal = self._trace(tmp_path, "on.jsonl",
                                            causal=True)
        assert plain_result.as_dict() == causal_result.as_dict()
        assert self._normalize(causal) == self._normalize(plain)
        # The causal run really did carry the extra artifacts.
        assert any(e["kind"] == "wave_span" for e in causal)
        assert not any(e["kind"] == "wave_span" for e in plain)


class TestProvenanceToLinkDownRoot:
    """`repro explain` reaches the link_down trigger after a failure."""

    @pytest.mark.parametrize("factory", [net1, cairn])
    def test_chain_ends_at_link_down(self, tmp_path, factory):
        topo = factory()
        a, b = pick_failure_link(topo)
        trace = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(trace), causal=True):
            costs = topo.idle_marginal_costs()
            driver = ProtocolDriver(topo, MPDARouter, seed=0)
            driver.start(costs)
            driver.run()
            driver.fail_link(a, b)
            driver.run()
            driver.verify_converged()
        events = read_trace(str(trace))
        down = next(
            e for e in events
            if e["kind"] == "disturbance" and e["op"] == "link_down"
        )
        # Pick a change from the failover wave at a node that is *not*
        # an endpoint of the failed link: its chain must cross >= 1
        # message hop before reaching the root.
        start = events.index(down)
        target = next(
            e for e in events[start:]
            if e["kind"] in ("dist_change", "succ_change")
            and e.get("cause") is not None
            and e["node"] not in (str(a), str(b))
        )
        dest = target["dests"][0]
        chain = provenance_chain(events, target["node"], str(dest))
        assert chain is not None
        root = chain[-1]
        assert root["kind"] == "disturbance"
        assert root["op"] == "link_down"
        assert len(chain) >= 3  # change + >=1 delivery + root
        hops = [e for e in chain if e["kind"] == "lsu_deliver"]
        text = render_explanation(
            chain, target["node"], str(dest)
        )
        assert f"chain: {len(hops)} message(s)" in text
