"""IH and AH flow-allocation heuristics (Figs. 6-7) and Property 1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationTable, ah, ih, validate_property1
from repro.exceptions import AllocationError

distances = st.dictionaries(
    st.sampled_from(["k1", "k2", "k3", "k4", "k5"]),
    st.floats(1e-6, 10.0),
    min_size=1,
    max_size=5,
)


class TestIH:
    def test_single_successor_gets_everything(self):
        assert ih({"k": 3.0}) == {"k": 1.0}

    def test_two_successors_inverse_to_distance(self):
        phi = ih({"near": 1.0, "far": 3.0})
        # (1 - 1/4) / 1 = 0.75 and (1 - 3/4) / 1 = 0.25
        assert phi["near"] == pytest.approx(0.75)
        assert phi["far"] == pytest.approx(0.25)

    def test_equal_distances_equal_split(self):
        phi = ih({"a": 2.0, "b": 2.0, "c": 2.0})
        assert all(v == pytest.approx(1 / 3) for v in phi.values())

    def test_all_zero_distances_uniform(self):
        phi = ih({"a": 0.0, "b": 0.0})
        assert phi == {"a": 0.5, "b": 0.5}

    def test_empty_set_rejected(self):
        with pytest.raises(AllocationError):
            ih({})

    def test_invalid_distance_rejected(self):
        with pytest.raises(AllocationError):
            ih({"a": -1.0})
        with pytest.raises(AllocationError):
            ih({"a": float("nan")})

    @settings(max_examples=200, deadline=None)
    @given(d=distances)
    def test_property1_always(self, d):
        phi = ih(d)
        validate_property1(phi, d.keys())

    @settings(max_examples=100, deadline=None)
    @given(d=distances)
    def test_monotone_larger_distance_smaller_share(self, d):
        """The paper: 'the greater the marginal delay through a neighbor,
        the smaller the fraction of traffic forwarded to it'."""
        phi = ih(d)
        items = sorted(d.items(), key=lambda kv: kv[1])
        for (k1, d1), (k2, d2) in zip(items, items[1:]):
            if d1 < d2:
                assert phi[k1] >= phi[k2] - 1e-12


class TestAH:
    def test_fixed_point_when_equalized(self):
        phi = {"a": 0.6, "b": 0.4}
        assert ah(phi, {"a": 2.0, "b": 2.0}) == phi

    def test_moves_toward_best(self):
        phi = {"a": 0.5, "b": 0.5}
        adjusted = ah(phi, {"a": 1.0, "b": 3.0})
        assert adjusted["a"] > 0.5
        assert adjusted["b"] < 0.5

    def test_min_ratio_zeroes_one_successor(self):
        """The paper's eta = min(phi/a) drives (at least) one phi to 0."""
        phi = {"a": 0.5, "b": 0.3, "c": 0.2}
        adjusted = ah(phi, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert min(adjusted.values()) == pytest.approx(0.0, abs=1e-12)

    def test_damping_halves_the_step(self):
        phi = {"a": 0.5, "b": 0.5}
        full = ah(phi, {"a": 1.0, "b": 2.0})
        half = ah(phi, {"a": 1.0, "b": 2.0}, damping=0.5)
        assert full["a"] - 0.5 == pytest.approx(2 * (half["a"] - 0.5))

    def test_amount_moved_proportional_to_excess(self):
        phi = {"a": 0.4, "b": 0.3, "c": 0.3}
        adjusted = ah(phi, {"a": 1.0, "b": 2.0, "c": 3.0}, damping=0.5)
        moved_b = phi["b"] - adjusted["b"]
        moved_c = phi["c"] - adjusted["c"]
        # excesses are 1.0 and 2.0
        assert moved_c == pytest.approx(2 * moved_b)

    def test_single_successor_identity(self):
        assert ah({"a": 1.0}, {"a": 7.0}) == {"a": 1.0}

    def test_key_mismatch_rejected(self):
        with pytest.raises(AllocationError):
            ah({"a": 1.0}, {"b": 1.0})

    def test_bad_damping_rejected(self):
        with pytest.raises(AllocationError):
            ah({"a": 0.5, "b": 0.5}, {"a": 1.0, "b": 2.0}, damping=0.0)

    @settings(max_examples=200, deadline=None)
    @given(d=distances, data=st.data())
    def test_property1_always(self, d, data):
        start = ih(d)
        adjusted = ah(start, d)
        validate_property1(adjusted, d.keys())

    @settings(max_examples=100, deadline=None)
    @given(d=distances)
    def test_repeated_ah_converges_to_best_successor(self, d):
        """With static distances, AH concentrates on the minimum (the
        fixed points of AH are exactly the equal-marginal allocations;
        with frozen inputs only the best successor survives)."""
        phi = ih(d)
        for _ in range(60):
            phi = ah(phi, d)
        best = min(d.values())
        mass_on_best = sum(
            phi[k] for k in phi if d[k] == pytest.approx(best)
        )
        assert mass_on_best == pytest.approx(1.0, abs=1e-6)


class TestValidateProperty1:
    def test_accepts_empty(self):
        validate_property1({}, [])

    def test_rejects_negative(self):
        with pytest.raises(AllocationError):
            validate_property1({"a": -0.1, "b": 1.1}, ["a", "b"])

    def test_rejects_off_successor_mass(self):
        with pytest.raises(AllocationError):
            validate_property1({"x": 1.0}, ["a"])

    def test_rejects_bad_sum(self):
        with pytest.raises(AllocationError):
            validate_property1({"a": 0.7}, ["a"])


class TestAllocationTable:
    def test_first_update_runs_ih(self):
        table = AllocationTable("r")
        phi = table.update("j", {"a": 1.0, "b": 3.0})
        assert phi == ih({"a": 1.0, "b": 3.0})

    def test_same_set_runs_ah(self):
        table = AllocationTable("r")
        first = table.update("j", {"a": 1.0, "b": 3.0})
        second = table.update("j", {"a": 1.0, "b": 3.0})
        assert second == ah(first, {"a": 1.0, "b": 3.0})

    def test_set_change_reruns_ih(self):
        table = AllocationTable("r")
        table.update("j", {"a": 1.0, "b": 3.0})
        phi = table.update("j", {"a": 1.0, "c": 2.0})
        assert phi == ih({"a": 1.0, "c": 2.0})

    def test_empty_update_clears(self):
        table = AllocationTable("r")
        table.update("j", {"a": 1.0})
        assert table.update("j", {}) == {}
        assert table.fractions("j") == {}
        assert table.destinations() == []

    def test_reset_forces_ih(self):
        table = AllocationTable("r")
        table.update("j", {"a": 1.0, "b": 3.0})
        table.update("j", {"a": 1.0, "b": 3.0})  # AH happened
        phi = table.reset("j", {"a": 1.0, "b": 3.0})
        assert phi == ih({"a": 1.0, "b": 3.0})

    def test_as_phi_shape(self):
        table = AllocationTable("r")
        table.update("j", {"a": 1.0})
        table.update("k", {"b": 1.0})
        phi = table.as_phi()
        assert phi == {"j": {"a": 1.0}, "k": {"b": 1.0}}

    def test_damping_passed_through(self):
        plain = AllocationTable("r")
        damped = AllocationTable("r", damping=0.5)
        d = {"a": 1.0, "b": 2.0}
        plain.update("j", d)
        damped.update("j", d)
        assert plain.update("j", d)["a"] > damped.update("j", d)["a"]
