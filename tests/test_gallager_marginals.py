"""Marginal distances (Eq. 5) and the optimality-gap metric."""

import pytest

from repro.exceptions import RoutingError
from repro.fluid.delay import DelayModel
from repro.fluid.flows import Flow, TrafficMatrix
from repro.gallager.marginals import marginal_distances, optimality_gap
from repro.gallager.opt import optimize, shortest_path_phi


class TestMarginalDistances:
    def test_chain(self):
        phi = {"a": {"c": {"b": 1.0}}, "b": {"c": {"c": 1.0}}}
        costs = {("a", "b"): 2.0, ("b", "c"): 3.0}
        delta = marginal_distances(phi, "c", costs)
        assert delta["c"] == 0.0
        assert delta["b"] == pytest.approx(3.0)
        assert delta["a"] == pytest.approx(5.0)

    def test_split_is_phi_weighted(self):
        phi = {
            "s": {"t": {"a": 0.25, "b": 0.75}},
            "a": {"t": {"t": 1.0}},
            "b": {"t": {"t": 1.0}},
        }
        costs = {
            ("s", "a"): 1.0,
            ("s", "b"): 2.0,
            ("a", "t"): 1.0,
            ("b", "t"): 2.0,
        }
        delta = marginal_distances(phi, "t", costs)
        # 0.25*(1+1) + 0.75*(2+2) = 3.5
        assert delta["s"] == pytest.approx(3.5)

    def test_unreachable_node_infinite(self):
        phi = {"a": {"t": {"t": 1.0}}}
        delta = marginal_distances(
            phi, "t", {("a", "t"): 1.0}, nodes=["a", "t", "z"]
        )
        assert delta["z"] == float("inf")

    def test_missing_cost_raises(self):
        phi = {"a": {"t": {"t": 1.0}}}
        with pytest.raises(RoutingError):
            marginal_distances(phi, "t", {})

    def test_matches_numeric_gradient(self, diamond):
        """delta truly is dD_T/dr (checked by finite differences)."""
        model = DelayModel.for_topology(diamond)
        traffic = TrafficMatrix([Flow("s", "t", 300.0)])
        phi = {
            "s": {"t": {"a": 0.5, "b": 0.5}},
            "a": {"t": {"t": 1.0}},
            "b": {"t": {"t": 1.0}},
        }
        from repro.fluid.evaluator import link_flows

        def total(rate):
            tm = TrafficMatrix([Flow("s", "t", rate)])
            return model.total_delay(link_flows(phi, tm))

        flows = link_flows(phi, traffic)
        costs = model.marginals(flows)
        delta = marginal_distances(phi, "t", costs)
        h = 0.01
        numeric = (total(300.0 + h) - total(300.0 - h)) / (2 * h)
        assert delta["s"] == pytest.approx(numeric, rel=1e-4)


class TestOptimalityGap:
    def test_zero_for_converged_opt(self, diamond, diamond_traffic):
        result = optimize(
            diamond, diamond_traffic, eta=0.3, max_iterations=2000
        )
        gap = optimality_gap(diamond, result.phi, diamond_traffic)
        assert gap < 1e-2

    def test_positive_for_single_path_under_load(
        self, diamond, diamond_traffic
    ):
        phi = shortest_path_phi(diamond, ["t"])
        gap = optimality_gap(diamond, phi, diamond_traffic)
        assert gap > 0.1

    def test_zero_when_no_traffic(self, diamond):
        phi = shortest_path_phi(diamond, ["t"])
        empty = TrafficMatrix([Flow("s", "t", 0.0)])
        assert optimality_gap(diamond, phi, empty) == 0.0
