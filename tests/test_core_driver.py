"""The synchronous protocol driver."""

import pytest

from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.exceptions import ConvergenceError, RoutingError, TopologyError


class TestLifecycle:
    def test_double_start_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        with pytest.raises(RoutingError):
            driver.start(diamond.uniform_costs(1.0))

    def test_operations_before_start_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        with pytest.raises(RoutingError):
            driver.set_costs({})
        with pytest.raises(RoutingError):
            driver.fail_link("s", "a")

    def test_missing_initial_cost_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        with pytest.raises(TopologyError):
            driver.start({})

    def test_set_cost_on_down_link_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.fail_link("s", "a")
        driver.run()
        with pytest.raises(TopologyError):
            driver.set_costs({("s", "a"): 2.0})

    def test_message_budget_enforced(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        with pytest.raises(ConvergenceError):
            driver.run(max_messages=1)


class TestDeterminism:
    def test_same_seed_same_trace(self, diamond):
        def run(seed):
            driver = ProtocolDriver(diamond, MPDARouter, seed=seed)
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            return driver.delivered, {
                n: r.distances for n, r in driver.routers.items()
            }

        assert run(3) == run(3)

    def test_different_seeds_same_outcome(self, diamond):
        """Interleaving varies, converged state must not (Theorem 2)."""
        outcomes = []
        for seed in (0, 1, 2):
            driver = ProtocolDriver(diamond, MPDARouter, seed=seed)
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            outcomes.append(
                {n: r.distances for n, r in driver.routers.items()}
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestCurrentCosts:
    def test_reflects_updates(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.set_costs({("s", "a"): 4.0})
        driver.run()
        assert driver.current_costs()[("s", "a")] == 4.0

    def test_excludes_failed_links(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.fail_link("s", "a")
        driver.run()
        assert ("s", "a") not in driver.current_costs()
