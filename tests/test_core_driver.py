"""The synchronous protocol driver."""

import json

import pytest

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.core.transport import FaultyChannel, PerfectChannel, ReliableTransport
from repro.exceptions import ConvergenceError, RoutingError, TopologyError


class TestLifecycle:
    def test_double_start_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        with pytest.raises(RoutingError):
            driver.start(diamond.uniform_costs(1.0))

    def test_operations_before_start_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        with pytest.raises(RoutingError):
            driver.set_costs({})
        with pytest.raises(RoutingError):
            driver.fail_link("s", "a")

    def test_missing_initial_cost_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        with pytest.raises(TopologyError):
            driver.start({})

    def test_set_cost_on_down_link_rejected(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.fail_link("s", "a")
        driver.run()
        with pytest.raises(TopologyError):
            driver.set_costs({("s", "a"): 2.0})

    def test_message_budget_enforced(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        with pytest.raises(ConvergenceError):
            driver.run(max_messages=1)


class TestDeterminism:
    def test_same_seed_same_trace(self, diamond):
        def run(seed):
            driver = ProtocolDriver(diamond, MPDARouter, seed=seed)
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            return driver.delivered, {
                n: r.distances for n, r in driver.routers.items()
            }

        assert run(3) == run(3)

    def test_different_seeds_same_outcome(self, diamond):
        """Interleaving varies, converged state must not (Theorem 2)."""
        outcomes = []
        for seed in (0, 1, 2):
            driver = ProtocolDriver(diamond, MPDARouter, seed=seed)
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            outcomes.append(
                {n: r.distances for n, r in driver.routers.items()}
            )
        assert outcomes[0] == outcomes[1] == outcomes[2]


class TestUnknownLinks:
    """Regression: unknown pairs used to escape as a bare ``KeyError``."""

    def test_fail_unknown_link_raises_topology_error(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        with pytest.raises(TopologyError):
            driver.fail_link("s", "zz")

    def test_restore_unknown_link_raises_topology_error(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        with pytest.raises(TopologyError):
            driver.restore_link("zz", "t", 1.0, 1.0)


def _trace_lines(path):
    """Trace lines with the wall-clock fields stripped (the only
    non-deterministic payload in an otherwise byte-identical run)."""
    lines = []
    with open(path) as fh:
        for raw in fh:
            record = json.loads(raw)
            record.pop("wall_s", None)
            lines.append(json.dumps(record, sort_keys=True))
    return lines


class TestTransportDeterminism:
    def _faulty_run(self, topo, trace_path):
        transport = ReliableTransport(
            FaultyChannel(seed=11, loss=0.15, dup=0.05, reorder=0.2, delay=2)
        )
        obs.start(trace_path=trace_path)
        try:
            driver = ProtocolDriver(
                topo, MPDARouter, seed=4, transport=transport
            )
            driver.start(topo.uniform_costs(1.0))
            driver.run()
            driver.fail_link("s", "a")
            driver.run()
            driver.restore_link("s", "a", 1.0, 1.0)
            driver.run()
        finally:
            obs.stop()
        return driver.message_stats(), transport.stats()

    def test_same_seeds_same_trace_under_faults(self, diamond, tmp_path):
        """(driver seed, transport seed) fully determines a faulty run:
        equal stats and byte-identical traces modulo wall seconds."""
        first = self._faulty_run(diamond, str(tmp_path / "a.jsonl"))
        second = self._faulty_run(diamond, str(tmp_path / "b.jsonl"))
        assert first == second
        assert _trace_lines(tmp_path / "a.jsonl") == _trace_lines(
            tmp_path / "b.jsonl"
        )

    def test_explicit_perfect_channel_matches_default(self, diamond):
        """The refactor is invisible: the default transport and an
        explicit PerfectChannel replay the historical behavior."""

        def run(transport):
            driver = ProtocolDriver(
                diamond, MPDARouter, seed=3, transport=transport
            )
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            return driver.message_stats(), {
                n: r.distances for n, r in driver.routers.items()
            }

        assert run(None) == run(PerfectChannel())

    def test_faulty_runs_reach_the_same_converged_state(self, diamond):
        """Theorem 2 across delivery models: the converged distances do
        not depend on the wire, only the message counts do."""
        outcomes = []
        for transport in (
            None,
            ReliableTransport(FaultyChannel(seed=2, loss=0.2, reorder=0.3)),
        ):
            driver = ProtocolDriver(
                diamond, MPDARouter, seed=0, transport=transport
            )
            driver.start(diamond.uniform_costs(1.0))
            driver.run()
            driver.verify_converged()
            outcomes.append(
                {n: r.distances for n, r in driver.routers.items()}
            )
        assert outcomes[0] == outcomes[1]


class TestCurrentCosts:
    def test_reflects_updates(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.set_costs({("s", "a"): 4.0})
        driver.run()
        assert driver.current_costs()[("s", "a")] == 4.0

    def test_excludes_failed_links(self, diamond):
        driver = ProtocolDriver(diamond)
        driver.start(diamond.uniform_costs(1.0))
        driver.run()
        driver.fail_link("s", "a")
        driver.run()
        assert ("s", "a") not in driver.current_costs()
