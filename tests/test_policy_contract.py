"""Conformance suite: every registered policy honors the same contract.

The registry is only useful if a name can be swapped for another without
re-reading the implementation, so the whole zoo is parametrized through
one set of obligations: validated lookup, deterministic runs under a
fixed seed, well-formed successor sets and split fractions, and — for
policies that claim ``loop_free`` — a clean Theorem-3 audit across a
CAIRN link-failure/restore window.
"""

from __future__ import annotations

import pytest

from repro.bench.convergence import pick_failure_link
from repro.exceptions import ConfigError
from repro.graph.validation import assert_loop_free
from repro.policy import (
    available_policies,
    create_policy,
    policy_class,
    policy_name_for_config,
)
from repro.sim.control import (
    QuasiStaticConfig,
    RunConfig,
    TwoTimescaleController,
)
from repro.sim.scenario import cairn_scenario, with_failures

ALL_POLICIES = sorted(available_policies())

#: Constructor knobs pinned small so the suite stays fast.
POLICY_PARAMS = {"ecmp-k": {"k": 2}, "opt": {"max_iterations": 400}}


def _config(name: str, **overrides) -> QuasiStaticConfig:
    base = dict(
        tl=10.0,
        ts=2.0,
        duration=30.0,
        warmup=10.0,
        seed=0,
        policy=name,
        policy_params=dict(POLICY_PARAMS.get(name, {})),
    )
    base.update(overrides)
    return QuasiStaticConfig(**base)


def _run(scenario, config):
    controller = TwoTimescaleController(scenario, config)
    result = controller.run()
    return controller.policy, result


# ----------------------------------------------------------------------
# the registry: validated lookup
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_known_name_resolves(self):
        for name in ALL_POLICIES:
            assert policy_class(name).name == name

    def test_unknown_name_lists_known_policies(self):
        with pytest.raises(ConfigError) as exc:
            policy_class("ospfv9")
        message = str(exc.value)
        assert "ospfv9" in message
        for name in ALL_POLICIES:
            assert name in message

    def test_bad_policy_params_name_the_policy(self):
        with pytest.raises(ConfigError, match="bad parameters.*'sp'"):
            create_policy("sp", bogus_knob=3)

    def test_ecmp_k_validates_k(self):
        with pytest.raises(ConfigError, match="integer k >= 1"):
            create_policy("ecmp-k", k=0)
        assert create_policy("ecmp-k", k=1).k == 1


class TestConfigValidation:
    """Satellite: unknown mode/policy strings fail loudly at config time."""

    def test_unknown_policy_raises_config_error(self):
        with pytest.raises(ConfigError, match="known policies"):
            QuasiStaticConfig(policy="bogus")

    def test_unknown_mode_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown routing mode"):
            RunConfig(mode="bogus")

    def test_unknown_path_rule_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown path rule"):
            QuasiStaticConfig(path_rule="bogus")

    def test_legacy_fields_derive_the_policy(self):
        assert QuasiStaticConfig().policy == "mp-oracle"
        assert QuasiStaticConfig(successor_limit=1).policy == "sp"
        assert QuasiStaticConfig(mode="protocol").policy == "mp"
        assert QuasiStaticConfig(path_rule="ecmp").policy == "ecmp"
        assert QuasiStaticConfig(path_rule="ecmp-hop").policy == "ecmp-hop"

    def test_policy_names_backfill_legacy_fields(self):
        sp = QuasiStaticConfig(policy="sp")
        assert sp.successor_limit == 1 and sp.mode == "oracle"
        assert sp.label.startswith("SP-TL-")
        mp = QuasiStaticConfig(policy="mp")
        assert mp.mode == "protocol"
        assert mp.label.startswith("MP-TL-")
        ecmp = QuasiStaticConfig(policy="ecmp")
        assert ecmp.path_rule == "ecmp"

    def test_sp_rejects_contradictory_successor_limit(self):
        with pytest.raises(ConfigError, match="successor_limit=1"):
            QuasiStaticConfig(policy="sp", successor_limit=3)

    def test_non_paper_policies_get_generic_labels(self):
        assert (
            QuasiStaticConfig(policy="ecmp-k").label == "ECMP-K-TL-10"
        )
        assert (
            QuasiStaticConfig(policy="backpressure-lr", tl=20.0, ts=4.0).label
            == "BACKPRESSURE-LR-TL-20"
        )

    def test_derivation_function_rejects_unknown_mode(self):
        class Legacy:
            mode = "chaotic"
            successor_limit = None

        with pytest.raises(ConfigError, match="unknown routing mode"):
            policy_name_for_config(Legacy())


# ----------------------------------------------------------------------
# the run contract, parametrized over the whole zoo
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cairn():
    return cairn_scenario(load=1.0)


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestPolicyContract:
    def test_deterministic_under_fixed_seed(self, name, cairn):
        first_policy, first = _run(cairn, _config(name))
        second_policy, second = _run(cairn, _config(name))
        assert [r.average_delay for r in first.records] == [
            r.average_delay for r in second.records
        ]
        assert first_policy.routing() == second_policy.routing()

    def test_fractions_and_successors_are_well_formed(self, name, cairn):
        policy, result = _run(cairn, _config(name))
        topo = cairn.topo
        tables = policy.routing()
        assert tables, f"{name} produced no routing tables"
        for dest, by_node in tables.items():
            for node, successors in by_node.items():
                neighbors = set(topo.neighbors(node))
                assert set(successors) <= neighbors, (
                    f"{name}: {node}->{dest} successors {successors} "
                    f"not all neighbors"
                )
                fractions = policy.fractions(node, dest)
                assert set(fractions) <= neighbors
                if fractions:
                    assert all(f >= 0.0 for f in fractions.values())
                    assert sum(fractions.values()) == pytest.approx(1.0)
        assert result.records, f"{name} produced no epochs"
        assert policy.route_updates >= 1

    def test_loop_free_policies_survive_a_failover_window(self, name, cairn):
        cls = available_policies()[name]
        if not cls.loop_free:
            pytest.skip(f"{name} makes no loop-freedom claim")
        a, b = pick_failure_link(cairn.topo)
        scenario = with_failures(cairn, {(a, b): [(10.0, 20.0)]})
        policy, result = _run(scenario, _config(name))
        # The run survived the down *and* up edges of the window; the
        # final tables must be loop-free for every destination.
        for dest, by_node in policy.routing().items():
            assert_loop_free(by_node, dest)
        checks_before = policy.audit_checks
        policy.audit_loop_free()
        assert policy.audit_checks > checks_before
