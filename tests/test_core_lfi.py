"""The LFI conditions (Theorem 1) and converged successor sets."""

import pytest

from repro.core.lfi import (
    LFIViolation,
    check_lfi,
    lfi_successors,
    shortest_successor,
)
from repro.graph.validation import is_loop_free


class TestCheckLFI:
    def test_valid_state_passes(self):
        check_lfi(
            "j",
            feasible_distance={"a": 2.0, "b": 1.0},
            reported={"a": {"b": 1.0}, "b": {"j": 0.0}},
            successors={"a": {"b"}, "b": {"j"}},
        )

    def test_eq17_violation_detected(self):
        with pytest.raises(LFIViolation):
            check_lfi(
                "j",
                feasible_distance={"a": 1.0},
                reported={"a": {"b": 2.0}},  # successor not strictly closer
                successors={"a": {"b"}},
            )

    def test_missing_reported_distance_detected(self):
        with pytest.raises(LFIViolation):
            check_lfi(
                "j",
                feasible_distance={"a": 5.0},
                reported={"a": {}},
                successors={"a": {"b"}},
            )

    def test_cycle_detected_even_if_distances_consistent(self):
        # Internally inconsistent state that a broken impl could reach.
        with pytest.raises(LFIViolation):
            check_lfi(
                "j",
                feasible_distance={"a": 10.0, "b": 10.0},
                reported={"a": {"b": 1.0}, "b": {"a": 1.0}},
                successors={"a": {"b"}, "b": {"a"}},
            )


class TestLfiSuccessors:
    def test_diamond_multipath(self, diamond):
        costs = diamond.uniform_costs(1.0)
        succ = lfi_successors(diamond, costs, "t")
        assert set(succ["s"]) == {"a", "b"}  # both are closer than s
        assert succ["a"] == ["t"]
        assert succ["t"] == []

    def test_unequal_cost_multipath(self, diamond):
        """Successors need not be on equal-cost paths (the paper's key
        difference from OSPF's ECMP)."""
        costs = diamond.uniform_costs(1.0)
        costs[("a", "t")] = 5.0  # path via a now costs 6, via b costs 2
        succ = lfi_successors(diamond, costs, "t")
        # a (distance 5 via its own link... a->t direct is 5, a->b->t is 2)
        # both a (D=2 via b) and b (D=1) are closer than s (D=2)? s: D=2
        # via b. a has D=2 which is NOT < 2, so only b qualifies.
        assert succ["s"] == ["b"]

    def test_always_loop_free(self, small_grid):
        import random

        rng = random.Random(4)
        costs = {
            ln.link_id: rng.uniform(0.1, 3.0) for ln in small_grid.links()
        }
        for dest in small_grid.nodes:
            succ = lfi_successors(small_grid, costs, dest)
            assert is_loop_free(succ)

    def test_every_node_has_route_when_connected(self, small_grid):
        costs = small_grid.uniform_costs(1.0)
        dest = (2, 2)
        succ = lfi_successors(small_grid, costs, dest)
        for node in small_grid.nodes:
            if node != dest:
                assert succ[node], f"{node} has no successor"


class TestShortestSuccessor:
    def test_single_best(self, diamond):
        costs = diamond.uniform_costs(1.0)
        succ = shortest_successor(diamond, costs, "t")
        assert len(succ["s"]) == 1
        assert succ["s"][0] in ("a", "b")

    def test_deterministic_tie_break(self, diamond):
        costs = diamond.uniform_costs(1.0)
        first = shortest_successor(diamond, costs, "t")
        second = shortest_successor(diamond, costs, "t")
        assert first == second

    def test_follows_cost_changes(self, diamond):
        costs = diamond.uniform_costs(1.0)
        costs[("s", "a")] = 10.0
        succ = shortest_successor(diamond, costs, "t")
        assert succ["s"] == ["b"]

    def test_subset_of_multipath(self, small_grid):
        costs = small_grid.uniform_costs(1.0)
        for dest in [(0, 0), (1, 1)]:
            multi = lfi_successors(small_grid, costs, dest)
            single = shortest_successor(small_grid, costs, dest)
            for node in small_grid.nodes:
                if node == dest:
                    continue
                assert set(single[node]) <= set(multi[node])
