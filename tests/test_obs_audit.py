"""The online invariant auditor: LFI + loop checks during live runs."""

import pytest

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.lfi import LFIViolation
from repro.core.mpda import MPDARouter, check_safety
from repro.exceptions import LoopError
from repro.graph.topologies import net1
from repro.obs.audit import InvariantAuditor


@pytest.fixture
def observed():
    """An active observation with a tracer buffer and an auditor."""
    events = []

    class ListTracer:
        enabled = True

        def event(self, kind, **payload):
            events.append({"kind": kind, **payload})

        def close(self):
            pass

    observation = obs.start(audit=True)
    observation.tracer = ListTracer()
    yield observation, events
    obs.stop()


def _converged_driver(topo, seed=0):
    driver = ProtocolDriver(topo, MPDARouter, seed=seed)
    driver.start(topo.idle_marginal_costs())
    driver.run()
    return driver


class TestHealthyRuns:
    def test_cold_start_passes_with_zero_violations(self, diamond):
        with obs.observe(audit=True) as observation:
            _converged_driver(diamond)
            auditor = observation.auditor
            assert auditor is not None
            assert auditor.checks > 0
            assert auditor.violations == 0
            assert auditor.verdict == "pass"

    def test_failover_run_stays_clean(self, diamond):
        """Theorem 3 machine-checked across fail + restore."""
        with obs.observe(audit=True) as observation:
            driver = _converged_driver(diamond)
            driver.fail_link("s", "a")
            driver.run()
            driver.restore_link("s", "a", 1.0, 1.0)
            driver.run()
            assert observation.auditor.violations == 0
            assert observation.auditor.verdict == "pass"

    def test_metrics_family_recorded(self, diamond):
        with obs.observe(audit=True) as observation:
            _converged_driver(diamond)
            snap = observation.metrics.snapshot()
            assert snap["counters"]["lfi_audit.checks"][""]["value"] > 0
            assert (
                snap["counters"]["lfi_audit.violations"][""]["value"] == 0
            )
            assert (
                snap["histograms"]["lfi_audit.check_seconds"][""]["count"]
                > 0
            )


class TestSamplingCadence:
    def test_sample_every_n_skips_intermediate_events(self, diamond):
        with obs.observe(audit=True, audit_sample=1) as observation:
            _converged_driver(diamond)
            every = observation.auditor.checks
        with obs.observe(audit=True, audit_sample=10) as observation:
            _converged_driver(diamond)
            sampled = observation.auditor
        # Same deterministic run, 10x coarser cadence; the forced
        # quiescent audit adds one check on top of the sampled ones.
        assert sampled.checks < every
        assert sampled.checks == sampled.events_seen // 10 + 1
        assert sampled.verdict == "pass"

    def test_quiescent_state_is_always_audited(self, diamond):
        with obs.observe(audit=True, audit_sample=10_000) as observation:
            _converged_driver(diamond)
            # Cadence larger than the event count: only the forced
            # end-of-window audit ran, so a verdict still exists.
            assert observation.auditor.checks == 1
            assert observation.auditor.verdict == "pass"

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            InvariantAuditor(sample_every=0)


class TestViolationDetection:
    def test_corrupted_fd_is_recorded_not_raised(self, diamond, observed):
        observation, events = observed
        driver = _converged_driver(diamond)
        router = driver.routers["s"]
        dest = next(iter(router.successor_sets))
        # Force Eq. 17 to fail: FD below every successor's reported
        # distance while successors are still installed.
        router.feasible_distance[dest] = -1.0
        auditor = observation.auditor
        auditor.audit(driver.routers, observation, context="tamper")
        assert auditor.violations == 1
        assert auditor.verdict == "fail"
        assert auditor.last_error
        violation_events = [
            e for e in events if e["kind"] == "audit_violation"
        ]
        assert len(violation_events) == 1
        assert violation_events[0]["check"] == "tamper"
        assert "s" in violation_events[0]["error"]

    def test_summary_shape(self, diamond, observed):
        observation, _ = observed
        driver = _converged_driver(diamond)
        summary = observation.auditor.summary()
        assert set(summary) == {
            "events_seen",
            "sample_every",
            "checks",
            "violations",
            "verdict",
            "last_error",
        }
        assert summary["verdict"] == "pass"

    def test_net1_full_audit_is_clean(self):
        """Acceptance-criteria scale: every delivery on NET1 audited."""
        with obs.observe(audit=True) as observation:
            driver = _converged_driver(net1())
            driver.fail_link(0, 1)
            driver.run()
            assert observation.auditor.violations == 0
            assert (
                observation.auditor.checks
                >= observation.auditor.events_seen
            )


class _DifferentialAuditor(InvariantAuditor):
    """Runs the ground-truth check next to every audit and compares."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.compared = 0

    def audit(self, routers, observation, **kwargs):
        mpda = {
            n: r for n, r in routers.items() if isinstance(r, MPDARouter)
        }
        expect_clean = True
        try:
            check_safety(mpda)
        except (LFIViolation, LoopError):
            expect_clean = False
        got_clean = super().audit(routers, observation, **kwargs)
        assert got_clean == expect_clean, (
            f"incremental audit disagrees with check_safety "
            f"(incremental={got_clean}, full={expect_clean}, "
            f"context={kwargs.get('context')!r})"
        )
        self.compared += 1
        return got_clean


class TestIncrementalAudit:
    """The cached per-destination audit must equal a full check_safety."""

    def _differential_run(self, topo):
        with obs.observe(audit=True) as observation:
            observation.auditor = _DifferentialAuditor()
            driver = _converged_driver(topo)
            driver.fail_link(*_first_link(topo))
            driver.run()
            driver.restore_link(*_first_link(topo), 1.0, 1.0)
            driver.run()
            return observation, observation.auditor

    def test_agrees_with_full_check_on_diamond(self, diamond):
        observation, auditor = self._differential_run(diamond)
        assert auditor.compared == auditor.checks
        assert auditor.compared > 50
        assert auditor.verdict == "pass"

    def test_agrees_with_full_check_on_net1(self):
        observation, auditor = self._differential_run(net1())
        assert auditor.compared == auditor.checks
        assert auditor.verdict == "pass"

    def test_incremental_path_is_exercised(self, diamond):
        with obs.observe(audit=True) as observation:
            _converged_driver(diamond)
            snap = observation.metrics.snapshot()["counters"]
        # Sampled per-event audits went through the cache: at least some
        # re-checked only a subset of destinations or skipped outright.
        assert "lfi_audit.destinations_checked" in snap
        assert observation.auditor._cache is not None

    def test_event_counts_unchanged_by_audit_mode(self, diamond):
        """The auditor observes; it must not alter the run itself."""
        plain = _converged_driver(diamond).delivered
        with obs.observe(audit=True):
            audited = _converged_driver(diamond).delivered
        assert plain == audited

    def test_quiescent_audit_rebuilds_ground_truth(self, diamond):
        with obs.observe(audit=True) as observation:
            driver = _converged_driver(diamond)
            auditor = observation.auditor
            # Tamper behind the protocol's back: no route_version tick.
            router = driver.routers["s"]
            dest = next(iter(router.successor_sets))
            router.feasible_distance[dest] = -1.0
            # A direct audit (what the driver issues at quiescence) must
            # catch it even though the incremental cache thinks nothing
            # changed.
            assert not auditor.audit(
                driver.routers, observation, context="quiescent"
            )
            assert auditor.verdict == "fail"


def _first_link(topo):
    link = next(iter(topo.links()))
    return link.head, link.tail
