"""Differential tests: optimized hot paths vs reference semantics.

PR 7 made the protocol core incremental (dirty-destination MTU state,
snapshot flooding, patched neighbor distances) and vectorized the
allocation heuristics.  Every shortcut claims *bit-for-bit* equality
with the straightforward implementation; these tests run both sides —
``INCREMENTAL = False`` routers and the scalar IH/AH kernels are kept
precisely to serve as oracles — over converged states, failover
windows, and adversarial fuzz schedules, and assert the claim.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import ah, ah_batch, ih, ih_batch
from repro.core.driver import ProtocolDriver
from repro.core.linkstate import (
    EntryOp,
    FrozenTree,
    LinkEntry,
    LSUMessage,
    TopologyTable,
)
from repro.core.mpda import MPDARouter
from repro.core.pda import PDARouter
from repro.graph.generators import waxman
from repro.graph.topologies import cairn, net1
from repro.testing.fuzz import build_topology, generate_case


class ReferenceRouter(MPDARouter):
    """MPDA with every incremental shortcut disabled."""

    INCREMENTAL = False


def _assert_same_state(optimized: ProtocolDriver, reference: ProtocolDriver):
    """The two drivers must agree on every protocol-visible quantity."""
    assert optimized.message_stats() == reference.message_stats()
    for node, router in optimized.routers.items():
        ref = reference.routers[node]
        assert router.distances == ref.distances, node
        assert router.feasible_distance == ref.feasible_distance, node
        assert router.successor_sets == ref.successor_sets, node
        assert router.nbr_distances == ref.nbr_distances, node


def _pair(topo, seed=0):
    optimized = ProtocolDriver(topo, MPDARouter, seed=seed)
    reference = ProtocolDriver(topo, ReferenceRouter, seed=seed)
    costs = topo.idle_marginal_costs()
    for driver in (optimized, reference):
        driver.start(costs)
        driver.run()
    return optimized, reference, costs


@pytest.mark.parametrize("make_topo", [net1, cairn, lambda: waxman(40, seed=2)])
def test_failover_window_differential(make_topo):
    """Cold start, link failure, and restoration: identical throughout."""
    topo = make_topo()
    optimized, reference, costs = _pair(topo)
    _assert_same_state(optimized, reference)

    link = next(iter(topo.links())).link_id
    a, b = link
    for driver in (optimized, reference):
        driver.fail_link(a, b)
        driver.run()
    _assert_same_state(optimized, reference)

    for driver in (optimized, reference):
        driver.restore_link(a, b, costs[(a, b)], costs[(b, a)])
        driver.run()
    _assert_same_state(optimized, reference)

    bumped = {link_id: cost * 1.7 for link_id, cost in list(costs.items())[:4]}
    for driver in (optimized, reference):
        driver.set_costs(bumped)
        driver.run()
    _assert_same_state(optimized, reference)


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_schedule_differential(seed):
    """Adversarial schedules (in-flight events, partial pumping):
    the optimized core must stay message-for-message identical."""
    case = generate_case(seed)
    topo_spec = case.topology
    base_costs = build_topology(topo_spec).idle_marginal_costs()

    def execute(router_cls):
        driver = ProtocolDriver(
            build_topology(topo_spec), router_cls, seed=case.driver_seed
        )
        driver.start(base_costs)
        driver.run()
        for event in case.schedule:
            op, *args = event
            if op == "fail_link":
                driver.fail_link(args[0], args[1])
            elif op == "restore_link":
                a, b = args
                driver.restore_link(
                    a, b, base_costs[(a, b)], base_costs[(b, a)]
                )
            elif op == "set_cost":
                head, tail, cost = args
                if tail in driver.routers[head].link_costs:
                    driver.set_costs({(head, tail): cost})
            elif op == "pump":
                for _ in range(args[0]):
                    if not driver.step():
                        break
            # "partition" needs the faulty transport; irrelevant here —
            # the schedules still interleave events with in-flight LSUs.
        driver.run()
        driver.verify_converged()
        return driver

    _assert_same_state(execute(MPDARouter), execute(ReferenceRouter))


# ----------------------------------------------------------------------
# allocation kernels
# ----------------------------------------------------------------------
@st.composite
def _allocation_rows(draw):
    n_rows = draw(st.integers(1, 20))
    rows = []
    for _ in range(n_rows):
        keys = draw(
            st.lists(
                st.integers(0, 30), min_size=1, max_size=5, unique=True
            )
        )
        rows.append(
            {
                k: draw(
                    st.floats(
                        0.0, 50.0, allow_nan=False, allow_infinity=False
                    )
                )
                for k in keys
            }
        )
    return rows


@settings(max_examples=60, deadline=None)
@given(rows=_allocation_rows())
def test_ih_batch_matches_scalar(rows):
    scalar = [ih(row) for row in rows]
    batched = ih_batch(rows)
    assert batched == scalar
    # bit-for-bit includes each result dict's key order
    assert [list(b) for b in batched] == [list(s) for s in scalar]


@settings(max_examples=60, deadline=None)
@given(rows=_allocation_rows(), steps=st.integers(1, 3))
def test_ah_batch_matches_scalar(rows, steps):
    phis = [ih(row) for row in rows]
    for _ in range(steps):
        scalar = [ah(phi, row) for phi, row in zip(phis, rows)]
        batched = ah_batch(phis, rows)
        assert batched == scalar
        assert [list(b) for b in batched] == [list(s) for s in scalar]
        phis = batched


def test_ah_tie_break_is_natural_order():
    """Regression: equal-distance ties pick the *naturally* smallest
    successor.  A repr-based tie-break would sort node 10 ahead of
    node 2 and move the traffic the other way."""
    phi = {10: 0.3, 2: 0.3, 3: 0.4}
    distance_via = {10: 1.0, 2: 1.0, 3: 2.0}
    adjusted = ah(phi, distance_via)
    assert adjusted[2] == pytest.approx(0.7)
    assert adjusted[10] == pytest.approx(0.3)
    assert adjusted[3] == 0.0
    assert ah_batch([phi], [distance_via]) == [adjusted]


# ----------------------------------------------------------------------
# snapshot flooding (FrozenTree)
# ----------------------------------------------------------------------
def _snap(tree, root, dist, *, version, prev_version, prev_flood):
    return FrozenTree.from_tree(
        tree,
        root,
        dist,
        version=version,
        prev_version=prev_version,
        applies_to_empty=prev_version is None,
        prev_flood=prev_flood,
    )


def test_frozen_tree_from_tree_shape():
    tree = {("s", "x"): 1.0, ("x", "y"): 2.0}
    dist = {"s": 0.0, "x": 1.0, "y": 3.0}
    snap = _snap(
        tree, "s", dist, version=1, prev_version=None, prev_flood={"s": 0.0}
    )
    assert snap.dist == dist
    assert snap.changed_rows == {"x", "y"}
    assert snap.links() == tree
    assert dict(snap.links_with_head_view("x")) == {("x", "y"): 2.0}
    assert set(snap.nodes_view()) == {"s", "x", "y"}
    assert len(snap) == 2
    assert snap.thaw().links() == tree


def test_snapshot_accept_swaps_reference():
    """An in-sync receiver adopts the frozen tree without replaying."""
    router = PDARouter("i")
    router.link_up("s", 1.0)
    tree = {("s", "x"): 1.0}
    snap1 = _snap(
        tree,
        "s",
        {"s": 0.0, "x": 1.0},
        version=1,
        prev_version=None,
        prev_flood={"s": 0.0},
    )
    router.receive(
        LSUMessage(
            sender="s",
            entries=(LinkEntry(EntryOp.ADD, "s", "x", 1.0),),
            snapshot=snap1,
        )
    )
    assert router.neighbor_tables["s"] is snap1
    assert router.nbr_distances["s"] is snap1.dist
    assert router.distances["x"] == 2.0

    snap2 = _snap(
        {("s", "x"): 3.0},
        "s",
        {"s": 0.0, "x": 3.0},
        version=2,
        prev_version=1,
        prev_flood=snap1.dist,
    )
    router.receive(
        LSUMessage(
            sender="s",
            entries=(LinkEntry(EntryOp.CHANGE, "s", "x", 3.0),),
            snapshot=snap2,
        )
    )
    assert router.neighbor_tables["s"] is snap2
    assert router.distances["x"] == 4.0


def test_snapshot_desync_falls_back_to_entries():
    """Duplicated or reordered delivery: the snapshot's baseline no
    longer matches, so the receiver must thaw and replay the entries —
    same state, different representation."""
    router = PDARouter("i")
    router.link_up("s", 1.0)
    snap1 = _snap(
        {("s", "x"): 1.0},
        "s",
        {"s": 0.0, "x": 1.0},
        version=1,
        prev_version=None,
        prev_flood={"s": 0.0},
    )
    message = LSUMessage(
        sender="s",
        entries=(LinkEntry(EntryOp.ADD, "s", "x", 1.0),),
        snapshot=snap1,
    )
    router.receive(message)
    assert router.neighbor_tables["s"] is snap1

    # Duplicate delivery: version 1 does not follow version 1.
    router.receive(message)
    table = router.neighbor_tables["s"]
    assert isinstance(table, TopologyTable)
    assert table.links() == {("s", "x"): 1.0}
    assert router.nbr_distances["s"] == {"s": 0.0, "x": 1.0}
    assert router.distances["x"] == 2.0

    # A snapshot from the future (version 3 diffed against a version 2
    # this router never saw): entries still carry the protocol content.
    snap3 = _snap(
        {("s", "x"): 5.0},
        "s",
        {"s": 0.0, "x": 5.0},
        version=3,
        prev_version=2,
        prev_flood={"s": 0.0, "x": 4.0},
    )
    router.receive(
        LSUMessage(
            sender="s",
            entries=(LinkEntry(EntryOp.CHANGE, "s", "x", 5.0),),
            snapshot=snap3,
        )
    )
    assert isinstance(router.neighbor_tables["s"], TopologyTable)
    assert router.nbr_distances["s"] == {"s": 0.0, "x": 5.0}
    assert router.distances["x"] == 6.0


def test_fused_mtu_snapshot_matches_from_tree():
    """The fused MTU tail builds its FrozenTree inline; it must agree
    with the documented :meth:`FrozenTree.from_tree` construction and
    with the router's own main table."""
    topo = net1()
    driver = ProtocolDriver(topo, MPDARouter, seed=0)
    driver.start(topo.idle_marginal_costs())
    driver.run()
    for node, router in driver.routers.items():
        snap = router._snap
        assert snap is not None
        tree = router.main_table.links()
        assert snap.links() == tree
        assert snap.dist == router._flood_dist
        rebuilt = FrozenTree.from_tree(
            tree,
            node,
            router.distances,
            version=snap.version,
            prev_version=snap.prev_version,
            applies_to_empty=snap.applies_to_empty,
            prev_flood={node: 0.0},
        )
        assert rebuilt.dist == snap.dist
        assert rebuilt.links() == snap.links()
        assert set(rebuilt.nodes_view()) == set(snap.nodes_view())


# ----------------------------------------------------------------------
# incremental neighbor-table patching
# ----------------------------------------------------------------------
def _tree_table():
    table = TopologyTable()
    table.set_link("r", "a", 1.0)
    table.set_link("r", "b", 2.0)
    table.set_link("a", "c", 1.0)
    table.set_link("c", "d", 1.0)
    return table


def _check_incremental(table, entries):
    dist = table.distances_from("r")
    dist.setdefault("r", 0.0)
    changed, changed_nodes = table.apply_incremental(entries, "r", dist)
    fresh = table.distances_from("r")
    fresh.setdefault("r", 0.0)
    assert changed_nodes is not None
    assert dist == fresh
    return changed, changed_nodes


def test_apply_incremental_cost_change_updates_subtree():
    table = _tree_table()
    changed, rows = _check_incremental(
        table, [LinkEntry(EntryOp.CHANGE, "a", "c", 3.0)]
    )
    assert changed
    assert rows == {"c", "d"}  # the subtree below the edited link


def test_apply_incremental_prunes_unchanged_branches():
    table = _tree_table()
    # Re-adding an identical link is a no-op: nothing recomputed.
    changed, rows = _check_incremental(
        table, [LinkEntry(EntryOp.ADD, "r", "a", 1.0)]
    )
    assert not changed
    assert rows == set()


def test_apply_incremental_grows_and_shrinks():
    table = _tree_table()
    changed, rows = _check_incremental(
        table,
        [
            LinkEntry(EntryOp.ADD, "d", "e", 2.0),
            LinkEntry(EntryOp.DELETE, "r", "b", 0.0),
        ],
    )
    assert changed
    assert rows == {"e", "b"}  # one node entered, one left


def test_apply_incremental_non_tree_transient_returns_none():
    table = _tree_table()
    dist = table.distances_from("r")
    dist.setdefault("r", 0.0)
    before = dict(dist)
    # A second parent for "c" makes the table not a tree: the fast
    # path must decline and leave ``dist`` untouched.
    changed, changed_nodes = table.apply_incremental(
        [LinkEntry(EntryOp.ADD, "b", "c", 1.0)], "r", dist
    )
    assert changed
    assert changed_nodes is None
    assert dist == before
