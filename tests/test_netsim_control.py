"""MPDA over the timed control plane (LSUs with propagation delays)."""

import pytest

from repro.core.mpda import MPDARouter, check_safety
from repro.exceptions import RoutingError
from repro.graph.generators import random_connected
from repro.netsim.control import ControlPlane
from repro.netsim.engine import Engine


def timed_converge(topo, costs, check=True, processing_delay=0.0):
    engine = Engine()
    routers = {n: MPDARouter(n) for n in topo.nodes}
    plane = ControlPlane(
        engine,
        topo,
        routers,
        check_invariants=check,
        processing_delay=processing_delay,
    )
    plane.start(costs)
    engine.run()
    return engine, plane, routers


class TestTimedConvergence:
    def test_converges_with_real_delays(self, diamond):
        engine, plane, routers = timed_converge(
            diamond, diamond.uniform_costs(1.0)
        )
        assert plane.quiescent()
        assert engine.now > 0.0  # took real simulated time
        for node, router in routers.items():
            assert router.is_passive()
        assert routers["s"].distance_to("t") == pytest.approx(2.0)
        assert routers["s"].successors("t") == {"a", "b"}

    @pytest.mark.parametrize("seed", range(3))
    def test_safety_after_every_timed_delivery(self, seed):
        topo = random_connected(6, extra_links=4, seed=seed, jitter=0.3)
        timed_converge(topo, topo.idle_marginal_costs())

    def test_convergence_time_scales_with_prop_delay(self):
        from repro.graph.generators import line

        fast = line(4, prop_delay=1e-3)
        slow = line(4, prop_delay=50e-3)
        t_fast, _, _ = timed_converge(fast, fast.uniform_costs(1.0))
        t_slow, _, _ = timed_converge(slow, slow.uniform_costs(1.0))
        assert t_slow.now > t_fast.now

    def test_processing_delay_adds_latency(self, diamond):
        without, _, _ = timed_converge(diamond, diamond.uniform_costs(1.0))
        with_proc, _, _ = timed_converge(
            diamond, diamond.uniform_costs(1.0), processing_delay=5e-3
        )
        assert with_proc.now > without.now


class TestChanges:
    def test_cost_change_propagates(self, diamond):
        engine, plane, routers = timed_converge(
            diamond, diamond.uniform_costs(1.0)
        )
        plane.set_costs({("b", "t"): 9.0, ("b", "a"): 9.0, ("b", "s"): 9.0})
        engine.run()
        assert routers["s"].successors("t") == {"a"}
        check_safety(routers)

    def test_link_failure_drops_in_flight(self, diamond):
        engine, plane, routers = timed_converge(
            diamond, diamond.uniform_costs(1.0)
        )
        plane.set_costs({("s", "a"): 3.0})  # generates in-flight LSUs
        plane.fail_link("s", "a")  # lose them with the link
        engine.run()
        assert plane.quiescent()
        assert "a" not in routers["s"].up_neighbors()
        # the network reconverges around the failure
        assert routers["s"].distance_to("t") == pytest.approx(2.0)

    def test_restore_link(self, diamond):
        engine, plane, routers = timed_converge(
            diamond, diamond.uniform_costs(1.0)
        )
        plane.fail_link("s", "a")
        engine.run()
        plane.restore_link("s", "a", 1.0, 1.0)
        engine.run()
        assert routers["s"].successors("t") == {"a", "b"}
        check_safety(routers)

    def test_double_start_rejected(self, diamond):
        engine = Engine()
        routers = {n: MPDARouter(n) for n in diamond.nodes}
        plane = ControlPlane(engine, diamond, routers)
        plane.start(diamond.uniform_costs(1.0))
        with pytest.raises(RoutingError):
            plane.start(diamond.uniform_costs(1.0))
