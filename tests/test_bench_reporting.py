"""The plain-text figure renderers."""

from repro.bench.reporting import render_flow_table, render_series


class TestFlowTable:
    def test_all_labels_and_flows_present(self):
        text = render_flow_table(
            "T",
            {"OPT": {"f0": 1.0, "f1": 2.0}, "MP": {"f0": 1.5}},
        )
        assert "OPT" in text and "MP" in text
        assert "f0" in text and "f1" in text
        assert "1.500" in text

    def test_missing_value_dash(self):
        text = render_flow_table("T", {"A": {"f0": 1.0}, "B": {}})
        row = next(line for line in text.splitlines() if line.startswith("f0"))
        assert "-" in row

    def test_flow_ordering_numeric(self):
        """f10 must sort after f9, not between f1 and f2."""
        series = {"A": {f"f{i}": float(i) for i in range(11)}}
        text = render_flow_table("T", series)
        lines = [l for l in text.splitlines() if l.startswith("f")]
        assert lines.index(next(l for l in lines if l.startswith("f9 "))) < \
            lines.index(next(l for l in lines if l.startswith("f10")))

    def test_unit_note(self):
        assert "(delays in ms)" in render_flow_table("T", {"A": {"f0": 1.0}})

    def test_empty_series_yields_stub(self):
        """Regression: max(10, *()) used to raise TypeError."""
        text = render_flow_table("Fig. X", {})
        assert "Fig. X" in text
        assert "(no series)" in text


class TestSeries:
    def test_rows_are_x_values(self):
        text = render_series(
            "T",
            {"MP": [(10.0, 1.0), (20.0, 1.1)], "SP": [(10.0, 5.0)]},
            x_name="Tl",
        )
        assert "Tl" in text
        assert "10" in text and "20" in text
        assert "5.000" in text

    def test_missing_point_dash(self):
        text = render_series("T", {"A": [(1.0, 2.0)], "B": [(3.0, 4.0)]})
        assert "-" in text

    def test_empty_series_yields_stub(self):
        """Regression: the empty-series TypeError, series variant."""
        text = render_series("Fig. Y", {})
        assert "Fig. Y" in text
        assert "(no series)" in text
