"""Fluid queue dynamics: backlog integration across epochs."""

import pytest

from repro.exceptions import CapacityError
from repro.fluid.delay import DelayModel, MM1Delay
from repro.fluid.queues import FluidQueues


def _model(capacity=1000.0, tau=1e-3, queue_limit=None):
    return DelayModel(
        {("a", "b"): MM1Delay(capacity, tau, queue_limit=queue_limit)}
    )


class TestBacklog:
    def test_subcapacity_flow_builds_no_backlog(self):
        q = FluidQueues(_model(), queue_limit=100.0)
        q.step({("a", "b"): 500.0}, dt=1.0)
        assert q.backlog[("a", "b")] == 0.0

    def test_oversubscription_integrates(self):
        q = FluidQueues(_model(), queue_limit=1000.0)
        q.step({("a", "b"): 1200.0}, dt=1.0)
        assert q.backlog[("a", "b")] == pytest.approx(200.0)
        q.step({("a", "b"): 1200.0}, dt=1.0)
        assert q.backlog[("a", "b")] == pytest.approx(400.0)

    def test_backlog_drains_when_load_drops(self):
        q = FluidQueues(_model(), queue_limit=1000.0)
        q.step({("a", "b"): 1200.0}, dt=1.0)  # +200
        q.step({("a", "b"): 900.0}, dt=1.0)  # -100
        assert q.backlog[("a", "b")] == pytest.approx(100.0)

    def test_backlog_never_negative(self):
        q = FluidQueues(_model(), queue_limit=1000.0)
        q.step({("a", "b"): 0.0}, dt=100.0)
        assert q.backlog[("a", "b")] == 0.0

    def test_buffer_limit_caps_and_counts_drops(self):
        q = FluidQueues(_model(), queue_limit=50.0)
        q.step({("a", "b"): 2000.0}, dt=1.0)  # tries to add 1000
        assert q.backlog[("a", "b")] == 50.0
        assert q.dropped == pytest.approx(950.0)

    def test_invalid_limit_rejected(self):
        with pytest.raises(CapacityError):
            FluidQueues(_model(), queue_limit=0.0)


class TestDelays:
    def test_idle_link_reports_steady_state(self):
        q = FluidQueues(_model(tau=1e-3), queue_limit=100.0)
        delays = q.step({("a", "b"): 500.0}, dt=1.0)
        expect = 1.0 / (1000.0 - 500.0) + 1e-3
        assert delays[("a", "b")] == pytest.approx(expect)

    def test_backlogged_link_reports_drain_time(self):
        q = FluidQueues(_model(tau=0.0), queue_limit=1000.0)
        q.step({("a", "b"): 1200.0}, dt=1.0)  # backlog 0 -> 200, mid 100
        delays = q.step({("a", "b"): 1200.0}, dt=1.0)  # 200 -> 400, mid 300
        assert delays[("a", "b")] == pytest.approx((300.0 + 1.0) / 1000.0)

    def test_delay_grows_with_time_under_oversubscription(self):
        """The Fig. 13 mechanism: stale routes integrate delay."""
        q = FluidQueues(_model(tau=0.0), queue_limit=10_000.0)
        first = q.step({("a", "b"): 1100.0}, dt=2.0)[("a", "b")]
        later = None
        for _ in range(5):
            later = q.step({("a", "b"): 1100.0}, dt=2.0)[("a", "b")]
        assert later > 3 * first

    def test_costs_at_least_experienced_delay(self):
        q = FluidQueues(_model(tau=0.0), queue_limit=1000.0)
        flows = {("a", "b"): 1500.0}
        delays = q.step(flows, dt=2.0)
        costs = q.costs(flows, delays)
        assert costs[("a", "b")] >= delays[("a", "b")]

    def test_costs_match_marginal_when_uncongested(self):
        model = _model(tau=1e-3)
        q = FluidQueues(model, queue_limit=1000.0)
        flows = {("a", "b"): 100.0}
        delays = q.step(flows, dt=1.0)
        costs = q.costs(flows, delays)
        assert costs[("a", "b")] == pytest.approx(
            model[("a", "b")].marginal(100.0)
        )

    def test_total_backlog(self):
        q = FluidQueues(_model(), queue_limit=1000.0)
        q.step({("a", "b"): 1300.0}, dt=1.0)
        assert q.total_backlog() == pytest.approx(300.0)
