"""The package's public surface stays importable and consistent."""

import repro


class TestPublicAPI:
    def test_all_symbols_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet_runs(self):
        """The docstring's quick-start recipe must actually work."""
        scenario = repro.net1_scenario(load=1.0)
        mp = repro.run_quasi_static(
            scenario,
            repro.QuasiStaticConfig(
                tl=10, ts=2, duration=60, warmup=20, damping=0.5
            ),
        )
        delays = mp.mean_flow_delays_ms()
        assert len(delays) == 10
        assert all(d > 0 for d in delays.values())

    def test_key_types_are_the_real_ones(self):
        from repro.core.mpda import MPDARouter
        from repro.graph.topology import Topology

        assert repro.MPDARouter is MPDARouter
        assert repro.Topology is Topology
