"""The legacy runner shims warn exactly once per process.

``run_quasi_static`` / ``run_packet_level`` survive as deprecated
wrappers over :func:`repro.sim.control.run`; the warning must fire on
the first call and never again (sweeps call the shims hundreds of
times).  The flags live in the pid-keyed registry of
:mod:`repro.deprecation`, so a forked fleet worker warns afresh (it is
a new process) and the fleet's per-cell reset restores standalone
behavior; the registry is reset around each test so the suite is
order-independent even when other tests exercised the shims first.
"""

from __future__ import annotations

import warnings

import pytest

from repro import deprecation
from repro.fluid.flows import Flow, TrafficMatrix
from repro.sim import packet_runner, runner
from repro.sim.control import PacketRunConfig, QuasiStaticConfig
from repro.sim.scenario import Scenario


@pytest.fixture
def diamond_scenario(diamond):
    return Scenario(
        name="diamond",
        topo=diamond,
        traffic=TrafficMatrix([Flow("s", "t", 600.0, name="hot")]),
    )


@pytest.fixture(autouse=True)
def fresh_registry():
    deprecation.reset()
    yield
    deprecation.reset()


def _collect(func):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        func()
    return [w for w in caught if w.category is DeprecationWarning]


def test_run_quasi_static_warns_once_per_process(diamond_scenario):
    config = QuasiStaticConfig(tl=4.0, ts=2.0, duration=8.0, warmup=2.0)

    def call():
        runner.run_quasi_static(diamond_scenario, config)

    first = _collect(call)
    assert len(first) == 1
    assert "run_quasi_static is deprecated" in str(first[0].message)
    assert "repro.sim.control.run" in str(first[0].message)
    assert _collect(call) == []
    assert _collect(call) == []


def test_run_packet_level_warns_once_per_process(diamond_scenario):
    config = PacketRunConfig(tl=4.0, ts=2.0, duration=8.0, seed=0)

    def call():
        packet_runner.run_packet_level(diamond_scenario, config)

    first = _collect(call)
    assert len(first) == 1
    assert "run_packet_level is deprecated" in str(first[0].message)
    assert _collect(call) == []


def test_registry_is_keyed_by_pid(monkeypatch):
    """A forked worker (new pid) warns again despite inherited state.

    The old module-level boolean was copied by ``fork`` as ``True``,
    silencing the child forever; pid keying makes the child's first
    call warn exactly as a standalone process would.
    """
    assert deprecation.warn_once("k", "legacy k is deprecated") is True
    assert deprecation.warn_once("k", "legacy k is deprecated") is False
    parent = deprecation.os.getpid()
    monkeypatch.setattr(deprecation.os, "getpid", lambda: parent + 1)
    assert deprecation.warn_once("k", "legacy k is deprecated") is True
    assert deprecation.warn_once("k", "legacy k is deprecated") is False


def test_reset_restores_standalone_behavior():
    """The fleet's per-cell reset makes the next call warn again."""
    assert deprecation.warn_once("cell", "legacy cell path") is True
    assert deprecation.warn_once("cell", "legacy cell path") is False
    deprecation.reset()
    assert deprecation.warn_once("cell", "legacy cell path") is True


def test_shims_still_deliver_results(diamond_scenario):
    """Deprecated does not mean broken: the shims route through the
    registry-backed controller and return ordinary results."""
    config = QuasiStaticConfig(tl=4.0, ts=2.0, duration=8.0, warmup=2.0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        result = runner.run_quasi_static(diamond_scenario, config)
    assert result.plane == "fluid"
    assert config.policy == "mp-oracle"
    assert result.mean_average_delay() > 0.0
