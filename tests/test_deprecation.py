"""The legacy runner shims warn exactly once per process.

``run_quasi_static`` / ``run_packet_level`` survive as deprecated
wrappers over :func:`repro.sim.control.run`; the warning must fire on
the first call and never again (sweeps call the shims hundreds of
times).  The module flag is reset around each test so the suite is
order-independent even when other tests exercised the shims first.
"""

from __future__ import annotations

import warnings

import pytest

from repro.fluid.flows import Flow, TrafficMatrix
from repro.sim import packet_runner, runner
from repro.sim.control import PacketRunConfig, QuasiStaticConfig
from repro.sim.scenario import Scenario


@pytest.fixture
def diamond_scenario(diamond):
    return Scenario(
        name="diamond",
        topo=diamond,
        traffic=TrafficMatrix([Flow("s", "t", 600.0, name="hot")]),
    )


def _collect(func):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        func()
    return [w for w in caught if w.category is DeprecationWarning]


def test_run_quasi_static_warns_once_per_process(
    diamond_scenario, monkeypatch
):
    monkeypatch.setattr(runner, "_warned", False)
    config = QuasiStaticConfig(tl=4.0, ts=2.0, duration=8.0, warmup=2.0)

    def call():
        runner.run_quasi_static(diamond_scenario, config)

    first = _collect(call)
    assert len(first) == 1
    assert "run_quasi_static is deprecated" in str(first[0].message)
    assert "repro.sim.control.run" in str(first[0].message)
    assert _collect(call) == []
    assert _collect(call) == []


def test_run_packet_level_warns_once_per_process(
    diamond_scenario, monkeypatch
):
    monkeypatch.setattr(packet_runner, "_warned", False)
    config = PacketRunConfig(tl=4.0, ts=2.0, duration=8.0, seed=0)

    def call():
        packet_runner.run_packet_level(diamond_scenario, config)

    first = _collect(call)
    assert len(first) == 1
    assert "run_packet_level is deprecated" in str(first[0].message)
    assert _collect(call) == []


def test_shims_still_deliver_results(diamond_scenario, monkeypatch):
    """Deprecated does not mean broken: the shims route through the
    registry-backed controller and return ordinary results."""
    monkeypatch.setattr(runner, "_warned", True)
    config = QuasiStaticConfig(tl=4.0, ts=2.0, duration=8.0, warmup=2.0)
    result = runner.run_quasi_static(diamond_scenario, config)
    assert result.plane == "fluid"
    assert config.policy == "mp-oracle"
    assert result.mean_average_delay() > 0.0
