"""The exception hierarchy: everything is catchable as ReproError."""

import pytest

from repro import exceptions


class TestHierarchy:
    @pytest.mark.parametrize(
        "name",
        [
            "TopologyError",
            "RoutingError",
            "LoopError",
            "CapacityError",
            "AllocationError",
            "ConvergenceError",
            "SimulationError",
        ],
    )
    def test_all_derive_from_repro_error(self, name):
        exc_type = getattr(exceptions, name)
        assert issubclass(exc_type, exceptions.ReproError)

    def test_loop_error_is_routing_error(self):
        assert issubclass(exceptions.LoopError, exceptions.RoutingError)

    def test_allocation_error_is_routing_error(self):
        assert issubclass(exceptions.AllocationError, exceptions.RoutingError)

    def test_library_failures_are_catchable(self, diamond):
        """A representative failure from each layer lands under ReproError."""
        from repro.fluid.delay import MM1Delay
        from repro.graph.topology import Link

        with pytest.raises(exceptions.ReproError):
            Link("a", "a")
        with pytest.raises(exceptions.ReproError):
            MM1Delay(capacity=-5)
        with pytest.raises(exceptions.ReproError):
            diamond.neighbors("nope")
