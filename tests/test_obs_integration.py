"""Observability wired through the runners, end to end.

A tiny NET1 run under an active observation must yield the control-plane
metrics the paper's overhead discussion needs (per-router LSU counts,
ACTIVE-phase durations) plus phase timings — and produce the same
figures as the unobserved run (Theorem 4: oracle and protocol backends
converge to identical successor sets).
"""

import json

import pytest

from repro import obs
from repro.fluid.flows import Flow, TrafficMatrix
from repro.sim.packet_runner import PacketRunConfig, run_packet_level
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import Scenario, net1_scenario


def tiny_config(**kwargs) -> QuasiStaticConfig:
    return QuasiStaticConfig(
        tl=10.0, ts=2.0, duration=40.0, warmup=10.0, **kwargs
    )


class TestFluidRunner:
    def test_metrics_snapshot_attached(self):
        scenario = net1_scenario(load=1.0)
        with obs.observe():
            result = run_quasi_static(scenario, tiny_config())
        assert result.metrics is not None
        gauges = result.metrics["metrics"]["gauges"]
        # per-router LSU counts from the live MPDA exchange
        lsu = gauges["protocol.lsu_sent"]
        assert len(lsu) == scenario.topo.num_nodes
        assert sum(v["value"] for v in lsu.values()) > 0
        # ACTIVE-phase durations
        active = result.metrics["metrics"]["histograms"][
            "protocol.active_phase_seconds"
        ]
        assert sum(v["count"] for v in active.values()) > 0
        # phase wall-clock timings
        assert "fluid.epoch" in result.metrics["timings"]
        assert "routing.update_routes" in result.metrics["timings"]

    def test_epoch_records_carry_counters(self):
        with obs.observe():
            result = run_quasi_static(net1_scenario(load=1.0), tiny_config())
        assert result.records[-1].metrics["route_updates"] >= 1.0

    def test_observed_run_matches_unobserved(self):
        """The oracle->protocol upgrade must not change the figures."""
        scenario = net1_scenario(load=1.0)
        plain = run_quasi_static(scenario, tiny_config())
        with obs.observe():
            observed = run_quasi_static(scenario, tiny_config())
        assert observed.mean_average_delay() == pytest.approx(
            plain.mean_average_delay(), rel=1e-6
        )

    def test_protocol_upgrade_can_be_declined(self):
        with obs.observe(protocol_control_plane=False) as ob:
            run_quasi_static(net1_scenario(load=1.0), tiny_config())
            assert ob.metrics.value("protocol.deliveries") is None

    def test_trace_is_parseable_and_has_epochs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.observe(trace_path=str(path)):
            run_quasi_static(net1_scenario(load=1.0), tiny_config())
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = {row["kind"] for row in rows}
        assert "epoch" in kinds
        assert "lsu_deliver" in kinds
        assert "route_update" in kinds

    def test_disabled_path_attaches_nothing(self):
        result = run_quasi_static(net1_scenario(load=1.0), tiny_config())
        assert result.metrics is None
        assert result.records[0].metrics is None


class TestPacketRunner:
    def test_queue_drops_counted_and_balanced(self, diamond):
        scenario = Scenario(
            name="hot-diamond",
            topo=diamond,
            traffic=TrafficMatrix([Flow("s", "t", 1800.0, name="hot")]),
        )
        config = PacketRunConfig(
            tl=4.0, ts=2.0, duration=12.0, warmup=0.0,
            queue_capacity=2, seed=1,
        )
        with obs.observe() as ob:
            run_packet_level(scenario, config)
            fm_gauges = ob.metrics
            injected = fm_gauges.value("netsim.packets_injected")
            delivered = fm_gauges.value("netsim.packets_delivered")
            drops = fm_gauges.value("netsim.queue_drops")
            no_route = fm_gauges.value("netsim.no_route_drops")
            in_flight = fm_gauges.value("netsim.packets_in_flight")
        # a 2-packet buffer at 1.8x capacity must overflow
        assert drops > 0
        assert in_flight >= 0
        assert delivered + drops + no_route + in_flight == injected

    def test_packet_metrics_snapshot(self, diamond):
        scenario = Scenario(
            name="mild-diamond",
            topo=diamond,
            traffic=TrafficMatrix([Flow("s", "t", 300.0, name="x")]),
        )
        config = PacketRunConfig(tl=4.0, ts=2.0, duration=12.0, warmup=0.0)
        with obs.observe():
            result = run_packet_level(scenario, config)
        gauges = result.metrics["metrics"]["gauges"]
        assert gauges["netsim.packets_delivered"][""]["value"] > 0
        assert "netsim.queue_high_water" in gauges
        assert "packet.measure" in result.metrics["timings"]
        assert "netsim.engine.run" in result.metrics["timings"]
