"""The M/M/1 delay law: values, derivatives, extension, buffer caps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CapacityError, TopologyError
from repro.fluid.delay import DelayModel, MM1Delay
from repro.graph.topology import Topology

C = 1000.0
TAU = 2e-3


@pytest.fixture
def law():
    return MM1Delay(capacity=C, prop_delay=TAU)


class TestExactLaw:
    def test_zero_flow(self, law):
        assert law.value(0.0) == 0.0
        assert law.per_unit(0.0) == pytest.approx(1.0 / C + TAU)
        assert law.marginal(0.0) == pytest.approx(1.0 / C + TAU)

    def test_half_load(self, law):
        f = C / 2
        assert law.value(f) == pytest.approx(f / (C - f) + TAU * f)
        assert law.per_unit(f) == pytest.approx(1.0 / (C - f) + TAU)
        assert law.marginal(f) == pytest.approx(C / (C - f) ** 2 + TAU)

    def test_value_equals_flow_times_per_unit(self, law):
        for f in (0.1, 100.0, 700.0, 950.0):
            assert law.value(f) == pytest.approx(f * law.per_unit(f))

    def test_strict_mode_infinite_at_capacity(self, law):
        assert law.value(C, strict=True) == float("inf")
        assert law.marginal(C * 1.5, strict=True) == float("inf")

    def test_negative_flow_rejected(self, law):
        with pytest.raises(CapacityError):
            law.value(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(CapacityError):
            MM1Delay(capacity=0.0)
        with pytest.raises(CapacityError):
            MM1Delay(capacity=10.0, rho_max=1.0)
        with pytest.raises(CapacityError):
            MM1Delay(capacity=10.0, queue_limit=0.0)


class TestExtension:
    def test_continuous_at_knee(self, law):
        knee = law.knee
        eps = 1e-6
        assert law.value(knee + eps) == pytest.approx(
            law.value(knee - eps), rel=1e-3
        )
        assert law.marginal(knee + eps) == pytest.approx(
            law.marginal(knee - eps), rel=1e-3
        )

    def test_finite_beyond_capacity(self, law):
        assert law.value(2 * C) < float("inf")
        assert law.marginal(2 * C) < float("inf")

    def test_still_convex_beyond_knee(self, law):
        # marginal strictly increasing across the knee and beyond
        f_values = [0.9 * C, 0.98 * C, 1.0 * C, 1.2 * C, 2.0 * C]
        marginals = [law.marginal(f) for f in f_values]
        assert marginals == sorted(marginals)

    def test_marginal_is_derivative_of_value(self, law):
        for f in (100.0, 500.0, 900.0, 1100.0):
            h = 1e-4
            numeric = (law.value(f + h) - law.value(f - h)) / (2 * h)
            assert law.marginal(f) == pytest.approx(numeric, rel=1e-5)


class TestQueueLimit:
    def test_per_unit_saturates(self):
        law = MM1Delay(capacity=C, prop_delay=TAU, queue_limit=50.0)
        cap = (50.0 + 1.0) / C + TAU
        assert law.per_unit(5 * C) == pytest.approx(cap)
        assert law.per_unit(0.0) == pytest.approx(1.0 / C + TAU)

    def test_marginal_saturates(self):
        law = MM1Delay(capacity=C, prop_delay=TAU, queue_limit=50.0)
        cap = (50.0 + 1.0) / C + TAU
        assert law.marginal(5 * C) == pytest.approx(cap)

    def test_cap_not_binding_at_light_load(self):
        capped = MM1Delay(capacity=C, queue_limit=50.0)
        free = MM1Delay(capacity=C)
        assert capped.per_unit(0.5 * C) == free.per_unit(0.5 * C)
        assert capped.marginal(0.5 * C) == free.marginal(0.5 * C)


class TestDelayModel:
    def test_for_topology(self, triangle):
        model = DelayModel.for_topology(triangle)
        assert ("a", "b") in model
        assert model[("a", "b")].capacity == 1000.0

    def test_missing_link_raises(self, triangle):
        model = DelayModel.for_topology(triangle)
        with pytest.raises(TopologyError):
            model[("a", "zzz")]

    def test_total_delay_sums_links(self, triangle):
        model = DelayModel.for_topology(triangle)
        flows = {("a", "b"): 100.0, ("b", "c"): 200.0}
        expect = model[("a", "b")].value(100.0) + model[("b", "c")].value(200.0)
        assert model.total_delay(flows) == pytest.approx(expect)

    def test_marginals_include_idle_links(self, triangle):
        model = DelayModel.for_topology(triangle)
        costs = model.marginals({("a", "b"): 100.0})
        assert len(costs) == triangle.num_links
        idle = model[("b", "c")].marginal(0.0)
        assert costs[("b", "c")] == pytest.approx(idle)

    def test_utilization(self, triangle):
        model = DelayModel.for_topology(triangle)
        assert model[("a", "b")].utilization(500.0) == pytest.approx(0.5)


@settings(max_examples=100, deadline=None)
@given(
    f1=st.floats(0.0, 1500.0),
    f2=st.floats(0.0, 1500.0),
)
def test_convexity_property(f1, f2):
    """D(mid) <= (D(f1) + D(f2)) / 2 — convexity survives the extension."""
    law = MM1Delay(capacity=C, prop_delay=TAU)
    mid = (f1 + f2) / 2.0
    assert law.value(mid) <= (law.value(f1) + law.value(f2)) / 2.0 + 1e-9
