"""Shared fixtures: small canonical topologies and workloads."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.generators import grid, ring
from repro.graph.topology import Topology

# Hypothesis budgets for tests that leave ``max_examples`` to the
# profile (the fuzzed-schedule properties): "dev" keeps local runs
# fast, "ci" is the bounded budget the CI fuzz job selects via
# HYPOTHESIS_PROFILE=ci.  Explicit @settings(max_examples=...) on the
# older property tests override the profile either way.
settings.register_profile("dev", max_examples=15, deadline=None)
settings.register_profile("ci", max_examples=75, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def triangle() -> Topology:
    """Three nodes, fully connected — the smallest multipath network."""
    topo = Topology("triangle")
    topo.add_duplex_link("a", "b", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("b", "c", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("a", "c", capacity=1000.0, prop_delay=1e-3)
    return topo


@pytest.fixture
def diamond() -> Topology:
    """s - (a | b) - t: two disjoint two-hop paths plus a cross link."""
    topo = Topology("diamond")
    topo.add_duplex_link("s", "a", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("s", "b", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("a", "t", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("b", "t", capacity=1000.0, prop_delay=1e-3)
    topo.add_duplex_link("a", "b", capacity=1000.0, prop_delay=1e-3)
    return topo


@pytest.fixture
def square_ring() -> Topology:
    return ring(4, capacity=1000.0, prop_delay=1e-3)


@pytest.fixture
def small_grid() -> Topology:
    return grid(3, 3, capacity=1000.0, prop_delay=1e-3)


@pytest.fixture
def diamond_traffic() -> TrafficMatrix:
    """One flow across the diamond, hot enough to need both paths."""
    return TrafficMatrix([Flow("s", "t", 600.0, name="hot")])
