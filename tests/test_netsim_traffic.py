"""Traffic sources: rates, windows, burst structure."""

import random

import pytest

from repro.exceptions import SimulationError
from repro.fluid.flows import Flow
from repro.netsim.engine import Engine
from repro.netsim.traffic import CBRSource, OnOffSource, PoissonSource


def collect(source_factory, duration):
    engine = Engine()
    times = []
    source_factory(engine, lambda p: times.append(engine.now))
    engine.run(until=duration)
    return times


class TestPoisson:
    def test_rate_accuracy(self):
        times = collect(
            lambda e, inj: PoissonSource(
                e, inj, Flow("a", "b", 50.0, name="x"), random.Random(1)
            ),
            duration=200.0,
        )
        assert len(times) / 200.0 == pytest.approx(50.0, rel=0.1)

    def test_interarrivals_exponential(self):
        """CV of exponential gaps is 1 (distinguishes from CBR)."""
        times = collect(
            lambda e, inj: PoissonSource(
                e, inj, Flow("a", "b", 100.0, name="x"), random.Random(2)
            ),
            duration=100.0,
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = var**0.5 / mean
        assert cv == pytest.approx(1.0, abs=0.1)

    def test_stop_honored(self):
        times = collect(
            lambda e, inj: PoissonSource(
                e, inj, Flow("a", "b", 100.0, name="x"), random.Random(3),
                stop=10.0,
            ),
            duration=50.0,
        )
        assert times and max(times) <= 10.0 + 1.0

    def test_zero_rate_emits_nothing(self):
        times = collect(
            lambda e, inj: PoissonSource(
                e, inj, Flow("a", "b", 0.0, name="x"), random.Random(0)
            ),
            duration=10.0,
        )
        assert times == []


class TestCBR:
    def test_deterministic_spacing(self):
        times = collect(
            lambda e, inj: CBRSource(e, inj, Flow("a", "b", 10.0, name="x")),
            duration=1.0,
        )
        assert times == pytest.approx([0.1 * i for i in range(1, 11)])


class TestOnOff:
    def test_long_run_rate_matches_average(self):
        flow = Flow("a", "b", 100.0, name="x")  # nominal average
        times = collect(
            lambda e, inj: OnOffSource(
                e, inj, flow, random.Random(5),
                peak_rate=300.0, mean_on=1.0, mean_off=2.0,
            ),
            duration=600.0,
        )
        # average = peak * on/(on+off) = 100
        assert len(times) / 600.0 == pytest.approx(100.0, rel=0.15)

    def test_burst_structure_visible(self):
        """On/off gaps are far burstier than Poisson (CV >> 1)."""
        times = collect(
            lambda e, inj: OnOffSource(
                e, inj, Flow("a", "b", 100.0, name="x"), random.Random(6),
                peak_rate=500.0, mean_on=0.5, mean_off=2.0,
            ),
            duration=300.0,
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var**0.5 / mean > 1.5

    def test_average_rate_property(self):
        engine = Engine()
        src = OnOffSource(
            engine, lambda p: None, Flow("a", "b", 1.0, name="x"),
            random.Random(0), peak_rate=40.0, mean_on=1.0, mean_off=3.0,
        )
        assert src.average_rate == pytest.approx(10.0)

    def test_invalid_parameters(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            OnOffSource(
                engine, lambda p: None, Flow("a", "b", 1.0), random.Random(0),
                peak_rate=0.0, mean_on=1.0, mean_off=1.0,
            )

    def test_stop_before_start_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            PoissonSource(
                engine, lambda p: None, Flow("a", "b", 1.0), random.Random(0),
                start=10.0, stop=5.0,
            )
