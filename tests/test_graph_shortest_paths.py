"""Shortest-path algorithms, checked against networkx as an oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RoutingError
from repro.graph.generators import random_connected
from repro.graph.shortest_paths import (
    INFINITY,
    all_pairs_distances,
    bellman_ford,
    dijkstra,
    dijkstra_tree,
    extract_path,
    path_cost,
    topology_costs,
)
from repro.graph.topology import Topology


def _to_nx(costs):
    g = nx.DiGraph()
    for (h, t), c in costs.items():
        g.add_edge(h, t, weight=c)
    return g


def _random_costs(seed: int, n: int = 12, extra: int = 10):
    topo = random_connected(n, extra_links=extra, seed=seed, jitter=0.5)
    import random

    rng = random.Random(seed + 1)
    return {ln.link_id: rng.uniform(0.1, 5.0) for ln in topo.links()}


class TestDijkstra:
    def test_single_link(self):
        dist, pred = dijkstra({("a", "b"): 3.0}, "a")
        assert dist["b"] == 3.0
        assert pred["b"] == "a"

    def test_unreachable_gets_infinity(self):
        dist, _ = dijkstra({("a", "b"): 1.0}, "a", nodes=["z"])
        assert dist["z"] == INFINITY

    def test_negative_cost_rejected(self):
        with pytest.raises(RoutingError):
            dijkstra({("a", "b"): -1.0}, "a")

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        costs = _random_costs(seed)
        g = _to_nx(costs)
        ours, _ = dijkstra(costs, 0)
        theirs = nx.single_source_dijkstra_path_length(g, 0)
        for node, want in theirs.items():
            assert ours[node] == pytest.approx(want)

    def test_predecessors_reconstruct_shortest_paths(self):
        costs = _random_costs(3)
        dist, pred = dijkstra(costs, 0)
        for node, d in dist.items():
            if d == INFINITY or node == 0:
                continue
            path = extract_path(pred, 0, node)
            assert path[0] == 0 and path[-1] == node
            assert path_cost(costs, path) == pytest.approx(d)

    def test_deterministic_across_runs(self):
        costs = _random_costs(5)
        assert dijkstra(costs, 0) == dijkstra(costs, 0)


class TestDijkstraTree:
    def test_tree_links_subset_of_costs(self):
        costs = _random_costs(2)
        _, tree = dijkstra_tree(costs, 0)
        assert set(tree) <= set(costs)

    def test_tree_is_a_tree(self):
        costs = _random_costs(4)
        dist, tree = dijkstra_tree(costs, 0)
        reachable = sum(1 for d in dist.values() if d < INFINITY)
        assert len(tree) == reachable - 1  # |V| - 1 edges rooted at source

    def test_tree_distances_match(self):
        costs = _random_costs(6)
        dist, tree = dijkstra_tree(costs, 0)
        tree_dist, _ = dijkstra(tree, 0)
        for node, d in dist.items():
            if d < INFINITY:
                assert tree_dist[node] == pytest.approx(d)


class TestBellmanFord:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reverse_dijkstra_oracle(self, seed):
        costs = _random_costs(seed)
        g = _to_nx(costs).reverse()
        dest = 1
        ours = bellman_ford(costs, dest)
        theirs = nx.single_source_dijkstra_path_length(g, dest)
        for node, want in theirs.items():
            assert ours[node] == pytest.approx(want)

    def test_destination_distance_is_zero(self):
        costs = _random_costs(0)
        assert bellman_ford(costs, 3)[3] == 0.0

    def test_satisfies_bf_equation(self):
        """D_j^i = min_k (D_j^k + l_ik) — Eq. 13 of the paper."""
        costs = _random_costs(7)
        dest = 2
        dist = bellman_ford(costs, dest)
        out = {}
        for (h, t), c in costs.items():
            out.setdefault(h, []).append((t, c))
        for node, nbrs in out.items():
            if node == dest:
                continue
            expect = min(dist.get(t, INFINITY) + c for t, c in nbrs)
            assert dist[node] == pytest.approx(expect)


class TestAllPairs:
    def test_matches_networkx(self):
        costs = _random_costs(9, n=8, extra=6)
        ours = all_pairs_distances(costs)
        theirs = dict(nx.all_pairs_dijkstra_path_length(_to_nx(costs)))
        for src, row in theirs.items():
            for dst, want in row.items():
                assert ours[src][dst] == pytest.approx(want)


class TestPathHelpers:
    def test_path_cost_empty_and_single(self):
        assert path_cost({}, []) == 0.0
        assert path_cost({}, ["a"]) == 0.0

    def test_path_cost_missing_link_raises(self):
        with pytest.raises(RoutingError):
            path_cost({("a", "b"): 1.0}, ["a", "b", "c"])

    def test_extract_path_unreachable_raises(self):
        with pytest.raises(RoutingError):
            extract_path({"b": None}, "a", "b")


class TestTopologyCosts:
    def test_defaults_to_idle_marginals(self, triangle):
        costs = topology_costs(triangle)
        assert costs == triangle.idle_marginal_costs()

    def test_override_and_reject_unknown(self, triangle):
        costs = topology_costs(triangle, {("a", "b"): 9.0})
        assert costs[("a", "b")] == 9.0
        from repro.exceptions import TopologyError

        with pytest.raises(TopologyError):
            topology_costs(triangle, {("a", "zzz"): 1.0})


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dijkstra_triangle_inequality(seed):
    """dist(s, v) <= dist(s, u) + cost(u, v) for every link."""
    costs = _random_costs(seed, n=8, extra=5)
    dist, _ = dijkstra(costs, 0)
    for (u, v), c in costs.items():
        assert dist[v] <= dist[u] + c + 1e-9


class TestKShortestPaths:
    """Yen's k shortest loopless paths (the ecmp-k policy's engine)."""

    def _costs(self, triangle):
        return topology_costs(
            triangle,
            {
                ("a", "b"): 1.0, ("b", "a"): 1.0,
                ("b", "c"): 1.0, ("c", "b"): 1.0,
                ("a", "c"): 2.5, ("c", "a"): 2.5,
            },
        )

    def test_orders_paths_by_cost(self, triangle):
        from repro.graph.shortest_paths import k_shortest_paths

        paths = k_shortest_paths(self._costs(triangle), "a", "c", 3)
        assert paths == [["a", "b", "c"], ["a", "c"]]

    def test_k_one_is_the_shortest_path(self, triangle):
        from repro.graph.shortest_paths import k_shortest_paths

        paths = k_shortest_paths(self._costs(triangle), "a", "c", 1)
        assert paths == [["a", "b", "c"]]

    def test_source_equals_target(self, triangle):
        from repro.graph.shortest_paths import k_shortest_paths

        assert k_shortest_paths(self._costs(triangle), "a", "a", 4) == [["a"]]

    def test_unreachable_returns_empty(self):
        from repro.graph.shortest_paths import k_shortest_paths

        costs = {("a", "b"): 1.0}
        assert k_shortest_paths(costs, "b", "a", 3) == []

    def test_rejects_nonpositive_k(self, triangle):
        from repro.graph.shortest_paths import k_shortest_paths

        with pytest.raises(RoutingError):
            k_shortest_paths(self._costs(triangle), "a", "c", 0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_networkx_simple_paths(self, seed):
        """Same path costs, in the same nondecreasing order, as nx's
        shortest_simple_paths (also Yen), for k=4."""
        from repro.graph.shortest_paths import k_shortest_paths

        costs = _random_costs(seed, n=8, extra=6)
        ours = k_shortest_paths(costs, 0, 5, 4)
        g = _to_nx(costs)
        if not nx.has_path(g, 0, 5):
            assert ours == []
            return
        expect = []
        for path in nx.shortest_simple_paths(g, 0, 5, weight="weight"):
            expect.append(path_cost(costs, path))
            if len(expect) == 4:
                break
        assert [path_cost(costs, p) for p in ours] == pytest.approx(expect)
        # Loopless: no repeated node within any path.
        for path in ours:
            assert len(set(path)) == len(path)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_deterministic(self, seed):
        from repro.graph.shortest_paths import k_shortest_paths

        costs = _random_costs(seed, n=8, extra=6)
        assert k_shortest_paths(costs, 0, 5, 3) == k_shortest_paths(
            costs, 0, 5, 3
        )
