"""Run-result aggregation."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.results import EpochRecord, RunResult


def record(t, delays, avg=1e-3, total=1.0, util=0.5):
    return EpochRecord(
        time=t,
        total_delay=total,
        average_delay=avg,
        flow_delays=delays,
        max_utilization=util,
    )


class TestRunResult:
    def test_warmup_excluded(self):
        result = RunResult("MP", "sc", warmup=10.0)
        result.records.append(record(0.0, {"f0": 100.0}))
        result.records.append(record(20.0, {"f0": 1.0}))
        result.records.append(record(30.0, {"f0": 3.0}))
        assert result.mean_flow_delays() == {"f0": 2.0}

    def test_no_steady_epochs_raises(self):
        result = RunResult("MP", "sc", warmup=100.0)
        result.records.append(record(0.0, {"f0": 1.0}))
        with pytest.raises(SimulationError):
            result.mean_flow_delays()

    def test_intermittent_flows_average_when_active(self):
        """Bursty flows appear in some epochs only."""
        result = RunResult("MP", "sc")
        result.records.append(record(0.0, {"f0": 2.0}))
        result.records.append(record(1.0, {"f0": 4.0, "f1": 10.0}))
        means = result.mean_flow_delays()
        assert means["f0"] == 3.0
        assert means["f1"] == 10.0

    def test_ms_conversion(self):
        result = RunResult("MP", "sc")
        result.records.append(record(0.0, {"f0": 0.005}))
        assert result.mean_flow_delays_ms() == {"f0": 5.0}

    def test_aggregates(self):
        result = RunResult("MP", "sc")
        result.records.append(record(0.0, {}, avg=1.0, total=10.0, util=0.3))
        result.records.append(record(1.0, {}, avg=3.0, total=30.0, util=0.9))
        assert result.mean_average_delay() == 2.0
        assert result.mean_total_delay() == 20.0
        assert result.peak_utilization() == 0.9

    def test_delay_series_includes_warmup(self):
        result = RunResult("MP", "sc", warmup=10.0)
        result.records.append(record(0.0, {}, avg=1.0))
        result.records.append(record(20.0, {}, avg=2.0))
        assert result.delay_series() == [(0.0, 1.0), (20.0, 2.0)]
