"""Loop detection on successor graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LoopError
from repro.graph.validation import (
    assert_loop_free,
    find_successor_cycle,
    is_loop_free,
    successor_graph_order,
)


class TestCycleDetection:
    def test_empty_graph(self):
        assert is_loop_free({})

    def test_simple_dag(self):
        assert is_loop_free({"a": ["b"], "b": ["c"], "c": []})

    def test_two_cycle(self):
        cycle = find_successor_cycle({"a": ["b"], "b": ["a"]})
        assert cycle is not None
        assert cycle[0] == cycle[-1]

    def test_self_loop(self):
        assert not is_loop_free({"a": ["a"]})

    def test_diamond_is_dag(self):
        succ = {"s": ["a", "b"], "a": ["t"], "b": ["t"], "t": []}
        assert is_loop_free(succ)

    def test_long_cycle_found(self):
        n = 500  # deep enough to break naive recursion
        succ = {i: [i + 1] for i in range(n)}
        succ[n] = [0]
        cycle = find_successor_cycle(succ)
        assert cycle is not None

    def test_deep_dag_no_overflow(self):
        n = 5000
        succ = {i: [i + 1] for i in range(n)}
        succ[n] = []
        assert is_loop_free(succ)

    def test_cycle_nodes_form_real_cycle(self):
        succ = {"x": ["y"], "y": ["z"], "z": ["x"], "w": ["x"]}
        cycle = find_successor_cycle(succ)
        body = cycle[:-1]
        for a, b in zip(cycle, cycle[1:]):
            assert b in succ[a]
        assert len(set(body)) == len(body)

    def test_assert_loop_free_raises(self):
        with pytest.raises(LoopError):
            assert_loop_free({"a": ["b"], "b": ["a"]}, destination="j")


class TestTopologicalOrder:
    def test_upstream_before_downstream(self):
        succ = {"s": ["a", "b"], "a": ["t"], "b": ["t"], "t": []}
        order = successor_graph_order(succ, "t")
        pos = {node: i for i, node in enumerate(order)}
        for node, nbrs in succ.items():
            for nbr in nbrs:
                assert pos[node] < pos[nbr]

    def test_destination_included_even_if_absent(self):
        order = successor_graph_order({"a": ["j"]}, "j")
        assert "j" in order

    def test_cycle_raises(self):
        with pytest.raises(LoopError):
            successor_graph_order({"a": ["b"], "b": ["a"]}, "j")

    def test_all_nodes_present_once(self):
        succ = {"s": ["a", "b"], "a": ["t"], "b": ["a", "t"], "t": []}
        order = successor_graph_order(succ, "t")
        assert sorted(map(str, order)) == sorted(map(str, set(order)))
        assert set(order) >= set(succ)


@settings(max_examples=60, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        max_size=30,
    )
)
def test_detector_agrees_with_networkx(edges):
    import networkx as nx

    succ: dict[int, list[int]] = {i: [] for i in range(10)}
    g = nx.DiGraph()
    g.add_nodes_from(range(10))
    for a, b in edges:
        if a != b and b not in succ[a]:
            succ[a].append(b)
            g.add_edge(a, b)
    # Self-loops are excluded above; detector must agree with networkx.
    assert is_loop_free(succ) == nx.is_directed_acyclic_graph(g)
