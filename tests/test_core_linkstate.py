"""LSU messages and topology tables."""

import pytest

from repro.core.linkstate import (
    EntryOp,
    INFINITY,
    LinkEntry,
    LSUMessage,
    TopologyTable,
)


class TestLinkEntry:
    def test_string_forms(self):
        add = LinkEntry(EntryOp.ADD, "a", "b", 2.0)
        change = LinkEntry(EntryOp.CHANGE, "a", "b", 3.0)
        delete = LinkEntry(EntryOp.DELETE, "a", "b")
        assert str(add).startswith("+")
        assert str(change).startswith("~")
        assert str(delete).startswith("-")


class TestLSUMessage:
    def test_sequence_increases(self):
        m1 = LSUMessage("a")
        m2 = LSUMessage("a")
        assert m2.seq > m1.seq

    def test_pure_ack(self):
        assert LSUMessage("a", (), ack=True).is_pure_ack
        entry = LinkEntry(EntryOp.ADD, "a", "b", 1.0)
        assert not LSUMessage("a", (entry,), ack=True).is_pure_ack
        assert not LSUMessage("a", ()).is_pure_ack


class TestTopologyTable:
    def test_set_and_cost(self):
        table = TopologyTable()
        table.set_link("a", "b", 2.0)
        assert table.cost("a", "b") == 2.0
        assert table.cost("b", "a") == INFINITY

    def test_apply_entries(self):
        table = TopologyTable()
        table.apply(
            [
                LinkEntry(EntryOp.ADD, "a", "b", 1.0),
                LinkEntry(EntryOp.ADD, "b", "c", 2.0),
                LinkEntry(EntryOp.CHANGE, "a", "b", 5.0),
                LinkEntry(EntryOp.DELETE, "b", "c"),
            ]
        )
        assert table.cost("a", "b") == 5.0
        assert ("b", "c") not in table

    def test_delete_missing_is_noop(self):
        table = TopologyTable()
        table.delete_link("x", "y")  # must not raise
        assert len(table) == 0

    def test_links_with_head(self):
        table = TopologyTable({("a", "b"): 1.0, ("a", "c"): 2.0, ("b", "c"): 3.0})
        assert table.links_with_head("a") == {("a", "b"): 1.0, ("a", "c"): 2.0}

    def test_nodes(self):
        table = TopologyTable({("a", "b"): 1.0, ("b", "c"): 1.0})
        assert table.nodes() == {"a", "b", "c"}

    def test_distances_from(self):
        table = TopologyTable({("a", "b"): 1.0, ("b", "c"): 2.0})
        dist = table.distances_from("a")
        assert dist["c"] == pytest.approx(3.0)

    def test_diff_roundtrip(self):
        """old.apply(old.diff(new)) == new — the LSU flooding invariant."""
        old = TopologyTable({("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "d"): 3.0})
        new = TopologyTable({("a", "b"): 9.0, ("c", "d"): 3.0, ("d", "e"): 4.0})
        entries = old.diff(new)
        patched = old.copy()
        patched.apply(entries)
        assert patched == new

    def test_diff_empty_for_identical(self):
        table = TopologyTable({("a", "b"): 1.0})
        assert table.diff(table.copy()) == ()

    def test_diff_op_kinds(self):
        old = TopologyTable({("a", "b"): 1.0, ("b", "c"): 2.0})
        new = TopologyTable({("a", "b"): 5.0, ("x", "y"): 1.0})
        ops = {(e.op, e.head, e.tail) for e in old.diff(new)}
        assert (EntryOp.CHANGE, "a", "b") in ops
        assert (EntryOp.ADD, "x", "y") in ops
        assert (EntryOp.DELETE, "b", "c") in ops

    def test_full_dump(self):
        table = TopologyTable({("a", "b"): 1.0, ("b", "c"): 2.0})
        fresh = TopologyTable()
        fresh.apply(table.full_dump())
        assert fresh == table

    def test_clear(self):
        table = TopologyTable({("a", "b"): 1.0})
        table.clear()
        assert len(table) == 0
