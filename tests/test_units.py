"""Unit conversions."""

import pytest

from repro.units import PACKET_SIZE_BITS, mbps, ms, to_mbps


class TestConversions:
    def test_ten_mbps_is_1250_pps(self):
        assert mbps(10) == pytest.approx(1250.0)

    def test_roundtrip(self):
        for rate in (0.5, 1.0, 10.0, 155.0):
            assert to_mbps(mbps(rate)) == pytest.approx(rate)

    def test_packet_size_consistent(self):
        assert PACKET_SIZE_BITS == 8000

    def test_ms(self):
        assert ms(0.0045) == pytest.approx(4.5)

    def test_zero(self):
        assert mbps(0) == 0.0
        assert to_mbps(0) == 0.0
