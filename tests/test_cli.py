"""The `python -m repro` experiment runner."""

import pytest

from repro.bench.figures import FigureResult
from repro.cli import EXPERIMENTS, build_parser, main, render


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_is_accepted(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"


class TestRegistry:
    def test_every_paper_figure_registered(self):
        for fig in ("fig09", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert fig in EXPERIMENTS

    def test_factories_callable(self):
        for factory, description in EXPERIMENTS.values():
            assert callable(factory)
            assert description


class TestRender:
    def test_flow_result(self):
        result = FigureResult(
            figure="F",
            claim="c",
            flow_series={"MP": {"f0": 1.0}},
            metrics={"x": 1.234},
        )
        text = render(result)
        assert "F" in text and "claim: c" in text and "x=1.234" in text

    def test_sweep_result(self):
        result = FigureResult(
            figure="F",
            claim="c",
            sweep_series={"MP": [(10.0, 1.0)]},
            metrics={},
        )
        assert "Tl (s)" in render(result)


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out

    def test_run_writes_out_file(self, tmp_path, capsys, monkeypatch):
        # Patch in a fast fake experiment so the CLI test stays quick.
        fake = FigureResult(
            figure="fake", claim="none", flow_series={"A": {"f0": 1.0}}
        )
        monkeypatch.setitem(
            EXPERIMENTS, "fig09", (lambda: fake, "patched")
        )
        out_file = tmp_path / "r.txt"
        assert main(["run", "fig09", "--out", str(out_file)]) == 0
        assert "fake" in out_file.read_text()
        assert "fake" in capsys.readouterr().out
