"""The `python -m repro` experiment runner."""

import json
import os

import pytest

from repro import obs
from repro.bench.figures import FigureResult
from repro.cli import EXPERIMENTS, build_parser, main, render


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_is_accepted(self):
        args = build_parser().parse_args(["run", "all"])
        assert args.experiment == "all"

    def test_observability_flags(self):
        args = build_parser().parse_args(
            ["run", "fig09", "--trace", "t.jsonl",
             "--metrics-out", "m.json", "--timing"]
        )
        assert args.trace == "t.jsonl"
        assert args.metrics_out == "m.json"
        assert args.timing

    def test_overhead_command(self):
        args = build_parser().parse_args(
            ["overhead", "--epochs", "3", "--seed", "9"]
        )
        assert args.command == "overhead"
        assert args.epochs == 3
        assert args.seed == 9

    def test_converge_command(self):
        args = build_parser().parse_args(
            ["converge", "--topo", "net1", "--seed", "3",
             "--audit-sample", "5", "--trace", "t.jsonl"]
        )
        assert args.command == "converge"
        assert args.topo == "net1"
        assert args.seed == 3
        assert args.audit_sample == 5
        assert args.trace == "t.jsonl"

    def test_converge_defaults_to_all_topologies(self):
        args = build_parser().parse_args(["converge"])
        assert args.topo == "all"
        assert args.audit_sample == 1

    def test_converge_causal_flag(self):
        args = build_parser().parse_args(["converge", "--causal"])
        assert args.causal is True
        assert build_parser().parse_args(["converge"]).causal is False

    def test_explain_command(self):
        args = build_parser().parse_args(
            ["explain", "mit", "anl", "--topo", "cairn",
             "--trace", "t.jsonl", "--seed", "2"]
        )
        assert args.command == "explain"
        assert args.node == "mit"
        assert args.dest == "anl"
        assert args.topo == "cairn"
        assert args.trace == "t.jsonl"
        assert args.seed == 2

    def test_report_command(self):
        args = build_parser().parse_args(
            ["report", "t.jsonl", "--metrics", "m.json",
             "--json", "r.json"]
        )
        assert args.command == "report"
        assert args.trace == "t.jsonl"
        assert args.metrics == "m.json"
        assert args.json_out == "r.json"

    def test_report_requires_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report"])

    def test_scale_bench_command(self):
        args = build_parser().parse_args(
            ["scale-bench", "--out", "s.json", "--max-nodes", "100",
             "--seed", "7", "--memory", "tracemalloc",
             "--profile-out", "p.txt"]
        )
        assert args.command == "scale-bench"
        assert args.out == "s.json"
        assert args.max_nodes == 100
        assert args.seed == 7
        assert args.memory == "tracemalloc"
        assert args.profile_out == "p.txt"

    def test_scale_bench_defaults(self):
        args = build_parser().parse_args(["scale-bench"])
        assert args.out == "BENCH_scale.json"
        assert args.max_nodes is None
        assert args.memory == "rss"

    def test_bench_check_command(self):
        args = build_parser().parse_args(
            ["bench-check", "--baseline", "b.json", "--max-nodes", "50",
             "--wall-factor", "8", "--mem-factor", "4",
             "--fresh-out", "f.json"]
        )
        assert args.command == "bench-check"
        assert args.baseline == "b.json"
        assert args.max_nodes == 50
        assert args.wall_factor == 8.0
        assert args.mem_factor == 4.0
        assert args.fresh_out == "f.json"

    def test_profile_command(self):
        args = build_parser().parse_args(
            ["profile", "--n", "50", "--top", "5", "--memory", "none"]
        )
        assert args.command == "profile"
        assert args.n == 50
        assert args.top == 5
        assert args.memory == "none"

    def test_rejects_bad_memory_instrument(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale-bench", "--memory", "psutil"])


class TestRegistry:
    def test_every_paper_figure_registered(self):
        for fig in ("fig09", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert fig in EXPERIMENTS

    def test_factories_callable(self):
        for factory, description in EXPERIMENTS.values():
            assert callable(factory)
            assert description


class TestRender:
    def test_flow_result(self):
        result = FigureResult(
            figure="F",
            claim="c",
            flow_series={"MP": {"f0": 1.0}},
            metrics={"x": 1.234},
        )
        text = render(result)
        assert "F" in text and "claim: c" in text and "x=1.234" in text

    def test_sweep_result(self):
        result = FigureResult(
            figure="F",
            claim="c",
            sweep_series={"MP": [(10.0, 1.0)]},
            metrics={},
        )
        assert "Tl (s)" in render(result)


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out

    def test_run_writes_out_file(self, tmp_path, capsys, monkeypatch):
        # Patch in a fast fake experiment so the CLI test stays quick.
        fake = FigureResult(
            figure="fake", claim="none", flow_series={"A": {"f0": 1.0}}
        )
        monkeypatch.setitem(
            EXPERIMENTS, "fig09", (lambda: fake, "patched")
        )
        out_file = tmp_path / "r.txt"
        assert main(["run", "fig09", "--out", str(out_file)]) == 0
        assert "fake" in out_file.read_text()
        assert "fake" in capsys.readouterr().out

    def test_run_with_observability_flags(self, tmp_path, capsys, monkeypatch):
        """The obs flags wrap the run and write trace + metrics files."""

        def fake_experiment():
            ob = obs.current()
            assert ob is not None  # flags must activate a session
            ob.metrics.counter("fake.counter").inc(3)
            with ob.timers.phase("fake.phase"):
                pass
            ob.tracer.event("fake", time=0.0)
            return FigureResult(
                figure="fake", claim="none", flow_series={"A": {"f0": 1.0}}
            )

        monkeypatch.setitem(
            EXPERIMENTS, "fig09", (fake_experiment, "patched")
        )
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        code = main([
            "run", "fig09",
            "--trace", str(trace),
            "--metrics-out", str(metrics),
            "--timing",
        ])
        assert code == 0
        assert obs.current() is None  # session torn down afterwards
        assert json.loads(trace.read_text())["kind"] == "fake"
        data = json.loads(metrics.read_text())
        assert data["metrics"]["counters"]["fake.counter"][""]["value"] == 3
        assert "fake.phase" in data["timings"]
        assert "fake.phase" in capsys.readouterr().out  # --timing table

    def test_converge_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        out_file = tmp_path / "c.txt"
        code = main([
            "converge", "--topo", "net1", "--audit-sample", "10",
            "--trace", str(trace),
            "--metrics-out", str(metrics),
            "--out", str(out_file),
        ])
        assert code == 0
        assert obs.current() is None  # session torn down afterwards
        printed = capsys.readouterr().out
        assert "NET1" in printed and "pass" in printed
        assert "NET1" in out_file.read_text()
        kinds = {
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        }
        assert {"disturbance", "quiescent", "audit_summary"} <= kinds
        data = json.loads(metrics.read_text())
        assert (
            data["metrics"]["counters"]["lfi_audit.violations"][""]["value"]
            == 0
        )

    def test_converge_causal_audit_passes(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main([
            "converge", "--topo", "net1", "--audit-sample", "50",
            "--causal", "--trace", str(trace),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "causal audit:" in printed and "OK" in printed
        assert "0 orphans" in printed
        kinds = {
            json.loads(line)["kind"]
            for line in trace.read_text().splitlines()
        }
        assert {"wave_span", "critical_path", "succ_change"} <= kinds

    def test_explain_from_fixture_trace(self, capsys):
        fixture = os.path.join(
            os.path.dirname(__file__),
            "fixtures", "causal_cairn.trace.jsonl",
        )
        code = main(["explain", "mit", "anl", "--trace", fixture])
        assert code == 0
        printed = capsys.readouterr().out
        assert "route provenance: mit -> anl" in printed
        assert "root #" in printed

    def test_explain_unknown_pair_fails(self, capsys):
        fixture = os.path.join(
            os.path.dirname(__file__),
            "fixtures", "causal_cairn.trace.jsonl",
        )
        code = main(["explain", "mit", "nowhere", "--trace", fixture])
        assert code == 1
        assert "no causally-stamped" in capsys.readouterr().out

    def test_overhead_prints_both_topologies(self, tmp_path, capsys):
        out_file = tmp_path / "o.txt"
        code = main(["overhead", "--epochs", "1", "--out", str(out_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "CAIRN" in printed and "NET1" in printed
        assert "CAIRN" in out_file.read_text()

    def test_profile_prints_ranked_phases(self, tmp_path, capsys):
        out_file = tmp_path / "p.txt"
        code = main(["profile", "--top", "3", "--out", str(out_file)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "cairn" in printed and "self time" in printed
        assert "self time" in out_file.read_text()

    def test_scale_bench_writes_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "s.json"
        profile_file = tmp_path / "p.txt"
        code = main([
            "scale-bench", "--max-nodes", "27",
            "--out", str(out_file),
            "--profile-out", str(profile_file),
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert [e["n"] for e in doc["entries"]] == [27]
        assert "cairn" in capsys.readouterr().out  # trajectory table
        assert "## cairn (n=27)" in profile_file.read_text()

    def test_bench_check_gates_on_regression(self, tmp_path, capsys):
        """End-to-end CI gate: pass against the committed numbers, then
        nonzero exit once the baseline claims a 10x-faster wall clock."""
        out_file = tmp_path / "s.json"
        assert main(
            ["scale-bench", "--max-nodes", "27", "--out", str(out_file)]
        ) == 0
        assert main(
            ["bench-check", "--baseline", str(out_file),
             "--max-nodes", "27"]
        ) == 0
        assert "bench-check: OK" in capsys.readouterr().out

        doc = json.loads(out_file.read_text())
        for entry in doc["entries"]:  # injected 10x wall-clock regression
            entry["wall_s"] = entry["wall_s"] / 10 or 1e-6
            entry["cpu_s"] = entry["cpu_s"] / 10 or 1e-6
        out_file.write_text(json.dumps(doc))
        fresh_file = tmp_path / "fresh.json"
        code = main(
            ["bench-check", "--baseline", str(out_file),
             "--max-nodes", "27", "--fresh-out", str(fresh_file)]
        )
        assert code == 1
        assert "regressed more than" in capsys.readouterr().out
        assert json.loads(fresh_file.read_text())["entries"]

    def test_bench_check_max_nodes_must_cover_a_size(self):
        with pytest.raises(SystemExit):
            main(["scale-bench", "--max-nodes", "5"])


class TestPolicyCommands:
    def test_policies_command_parses(self):
        args = build_parser().parse_args(["policies"])
        assert args.command == "policies"

    def test_compare_command_parses(self):
        args = build_parser().parse_args(
            ["compare", "--topo", "cairn", "--policy", "mp",
             "--policy", "ecmp-k", "--duration", "40",
             "--out", "table.md", "--json", "table.json"]
        )
        assert args.command == "compare"
        assert args.topo == "cairn"
        assert args.policy == ["mp", "ecmp-k"]
        assert args.duration == 40.0
        assert args.json_out == "table.json"

    def test_compare_defaults_to_every_policy(self):
        args = build_parser().parse_args(["compare"])
        assert args.policy is None
        assert args.topo == "all"

    def test_policies_lists_the_registry(self, capsys):
        from repro.policy import available_policies

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in available_policies():
            assert name in out
        assert "loop-free" in out

    def test_compare_writes_table_and_json(self, tmp_path, capsys):
        table = tmp_path / "table.md"
        doc = tmp_path / "table.json"
        code = main(
            ["compare", "--topo", "cairn", "--policy", "sp",
             "--policy", "ecmp-k", "--duration", "24", "--warmup", "8",
             "--out", str(table), "--json", str(doc)]
        )
        assert code == 0
        text = table.read_text()
        assert "| policy |" in text
        assert "`ecmp-k`" in text and "`sp`" in text
        payload = json.loads(doc.read_text())
        assert "cairn" in payload
        assert "sp_avg_ms" in payload["cairn"]["metrics"]
        out = capsys.readouterr().out
        assert "cairn avg (ms)" in out

    def test_compare_rejects_unknown_policy(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="known policies"):
            main(["compare", "--topo", "cairn", "--policy", "nonesuch",
                  "--duration", "24", "--warmup", "8"])
