"""The committed fixtures reproduce the EXPERIMENTS.md numbers.

``repro report`` over the committed trace + metrics pair must yield the
committed report byte-for-byte equivalent (as parsed JSON), and the
headline numbers cited in EXPERIMENTS.md are asserted literally so the
prose cannot drift from the artifacts.  Regenerate all three files
together with ``PYTHONPATH=src python tests/fixtures/regen.py``.
"""

import json
import os

import pytest

from repro.cli import main
from repro.obs.convergence import read_trace
from repro.obs.report import build_report

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _fixture(name):
    return os.path.join(FIXTURES, name)


def _rebuild(stem):
    events = read_trace(_fixture(f"{stem}.trace.jsonl"))
    with open(_fixture(f"{stem}.metrics.json")) as fh:
        metrics_doc = json.load(fh)
    return build_report(
        events,
        metrics_doc,
        source={
            "trace": f"tests/fixtures/{stem}.trace.jsonl",
            "metrics": f"tests/fixtures/{stem}.metrics.json",
        },
    )


@pytest.mark.parametrize("stem", ["converge", "packet_net1"])
def test_report_reproduces_committed_fixture(stem):
    with open(_fixture(f"{stem}.report.json")) as fh:
        committed = json.load(fh)
    assert _rebuild(stem) == committed


class TestExperimentsNumbers:
    """The literal values recorded in EXPERIMENTS.md."""

    def test_convergence_table(self):
        report = _rebuild("converge")
        rows = [
            (w["label"], w["messages"], w["slowest_destination"],
             w["slowest_messages"])
            for w in report["windows"]
        ]
        assert rows == [
            # CAIRN (27 nodes, 74 directed links), failed link anl-cmu
            ("start", 844, "sac", 835),
            ("link_down", 254, "cmu", 246),
            ("link_up", 118, "cisco-e", 113),
            # NET1 (10 nodes, 38 directed links), failed link 0-1
            ("start", 259, "2", 245),
            ("link_down", 96, "1", 86),
            ("link_up", 72, "0", 17),
        ]

    def test_audit_verdict_zero_violations(self):
        report = _rebuild("converge")
        assert report["audit"] == {
            "checks": 1769,
            "violations": 0,
            "verdict": "pass",
        }
        assert all(
            w["audit"]["violations"] == 0 for w in report["windows"]
        )

    def test_delay_quantiles(self):
        report = _rebuild("packet_net1")
        quantiles = report["delay"]["quantiles"]
        assert quantiles["count"] == 52822
        assert quantiles["p50"] == pytest.approx(4.626e-3, rel=1e-3)
        assert quantiles["p90"] == pytest.approx(8.823e-3, rel=1e-3)
        assert quantiles["p99"] == pytest.approx(13.950e-3, rel=1e-3)

    def test_delay_decomposition(self):
        fractions = _rebuild("packet_net1")["delay"]["decomposition"][
            "fractions"
        ]
        assert fractions["queueing"] == pytest.approx(0.140, abs=1e-3)
        assert fractions["transmission"] == pytest.approx(0.382, abs=1e-3)
        assert fractions["propagation"] == pytest.approx(0.478, abs=1e-3)


class TestReportCLI:
    def test_cli_report_matches_fixture(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        code = main([
            "report", _fixture("converge.trace.jsonl"),
            "--metrics", _fixture("converge.metrics.json"),
            "--json", str(out),
        ])
        assert code == 0
        rebuilt = json.loads(out.read_text())
        with open(_fixture("converge.report.json")) as fh:
            committed = json.load(fh)
        # Source paths differ (CLI records its argv paths); everything
        # derived from the data must match.
        rebuilt.pop("source")
        committed.pop("source")
        assert rebuilt == committed
        printed = capsys.readouterr().out
        assert "link_down" in printed and "pass" in printed
