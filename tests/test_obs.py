"""The instrumentation layer: tracer, metrics registry, phase timers."""

import json

import pytest

from repro import obs
from repro.obs.export import render_timings, snapshot, write_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import NULL_PHASE, PhaseTimers, phase
from repro.obs.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_events_are_parseable_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(str(path))
        tracer.event("epoch", time=1.5, node="a", avg_delay=0.01)
        tracer.event("lsu_deliver", link=("a", "b"), entries=3)
        tracer.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["epoch", "lsu_deliver"]
        assert rows[0]["t"] == 1.5
        assert rows[0]["node"] == "a"
        assert rows[1]["entries"] == 3

    def test_non_json_payloads_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(str(path))
        tracer.event("x", weird={1, 2})  # sets are not JSON
        tracer.close()
        assert json.loads(path.read_text())["weird"]

    def test_counts_events(self, tmp_path):
        tracer = Tracer.to_path(str(tmp_path / "t.jsonl"))
        tracer.event("a")
        tracer.event("b")
        tracer.close()
        assert tracer.events_written == 2

    def test_null_tracer_is_disabled_noop(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("anything", payload=1)  # must not raise
        NULL_TRACER.flush()
        NULL_TRACER.close()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.value("x") == 5

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("lsu", router="a").inc(2)
        reg.counter("lsu", router="b").inc(3)
        assert reg.value("lsu", router="a") == 2
        assert reg.value("lsu", router="b") == 3

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        assert reg.value("depth") == 1.0
        assert gauge.max_seen == 3.0

    def test_histogram_statistics(self):
        reg = MetricsRegistry()
        hist = reg.histogram("d")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c", router="a").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"]["router=a"]["value"] == 1
        assert snap["gauges"]["g"][""]["value"] == 2.0
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_same_metric_object_reused(self):
        reg = MetricsRegistry()
        assert reg.counter("x", k="v") is reg.counter("x", k="v")


class TestPhaseTimers:
    def test_accumulates_wall_clock(self):
        timers = PhaseTimers()
        with timers.phase("p"):
            pass
        with timers.phase("p"):
            pass
        stats = timers.stats("p")
        assert stats.calls == 2
        assert stats.total_s >= 0.0
        assert stats.max_s >= 0.0

    def test_module_phase_helper_null_when_disabled(self):
        assert phase(None, "anything") is NULL_PHASE
        with phase(None, "anything"):  # no-op context
            pass

    def test_module_phase_helper_routes_to_observation(self):
        ob = obs.Observation()
        with phase(ob, "p"):
            pass
        assert ob.timers.stats("p").calls == 1


class TestExport:
    def test_snapshot_keys(self):
        ob = obs.Observation()
        ob.metrics.counter("c").inc()
        with ob.timers.phase("p"):
            pass
        snap = snapshot(ob)
        assert set(snap) == {"metrics", "timings"}
        assert "p" in snap["timings"]

    def test_write_metrics_round_trips(self, tmp_path):
        ob = obs.Observation()
        ob.metrics.gauge("g", link="a->b").set(7.0)
        path = tmp_path / "m.json"
        write_metrics(str(path), ob)
        data = json.loads(path.read_text())
        assert data["metrics"]["gauges"]["g"]["link=a->b"]["value"] == 7.0

    def test_render_timings_lists_phases(self):
        ob = obs.Observation()
        with ob.timers.phase("fluid.epoch"):
            pass
        text = render_timings(ob)
        assert "fluid.epoch" in text
        assert "total_s" in text


class TestSession:
    def test_disabled_by_default(self):
        assert obs.current() is None

    def test_start_stop(self):
        ob = obs.start()
        try:
            assert obs.current() is ob
        finally:
            obs.stop()
        assert obs.current() is None

    def test_observe_restores_previous(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_observe_writes_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(path)) as ob:
            ob.tracer.event("hello", x=1)
        assert json.loads(path.read_text())["kind"] == "hello"
