"""The instrumentation layer: tracer, metrics registry, phase timers."""

import json

import pytest

from repro import obs
from repro.obs.export import render_timings, snapshot, write_metrics
from repro.obs.metrics import BUCKET_BOUNDS, Histogram, MetricsRegistry
from repro.obs.timing import NULL_PHASE, PhaseTimers, phase
from repro.obs.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_events_are_parseable_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(str(path))
        tracer.event("epoch", time=1.5, node="a", avg_delay=0.01)
        tracer.event("lsu_deliver", link=("a", "b"), entries=3)
        tracer.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["epoch", "lsu_deliver"]
        assert rows[0]["t"] == 1.5
        assert rows[0]["node"] == "a"
        assert rows[1]["entries"] == 3

    def test_non_json_payloads_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer.to_path(str(path))
        tracer.event("x", weird={1, 2})  # sets are not JSON
        tracer.close()
        assert json.loads(path.read_text())["weird"]

    def test_counts_events(self, tmp_path):
        tracer = Tracer.to_path(str(tmp_path / "t.jsonl"))
        tracer.event("a")
        tracer.event("b")
        tracer.close()
        assert tracer.events_written == 2

    def test_null_tracer_is_disabled_noop(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("anything", payload=1)  # must not raise
        NULL_TRACER.flush()
        NULL_TRACER.close()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.value("x") == 5

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("lsu", router="a").inc(2)
        reg.counter("lsu", router="b").inc(3)
        assert reg.value("lsu", router="a") == 2
        assert reg.value("lsu", router="b") == 3

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(3.0)
        gauge.set(1.0)
        assert reg.value("depth") == 1.0
        assert gauge.max_seen == 3.0

    def test_histogram_statistics(self):
        reg = MetricsRegistry()
        hist = reg.histogram("d")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == pytest.approx(6.0)
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("c", router="a").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"]["c"]["router=a"]["value"] == 1
        assert snap["gauges"]["g"][""]["value"] == 2.0
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_same_metric_object_reused(self):
        reg = MetricsRegistry()
        assert reg.counter("x", k="v") is reg.counter("x", k="v")


class TestHistogramQuantiles:
    def test_bounds_are_sorted_and_span_nine_decades(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-9)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e9)

    def test_quantiles_on_uniform_data(self):
        hist = Histogram()
        for ms in range(1, 101):  # 1..100 ms, uniform
            hist.observe(ms * 1e-3)
        # Bucket resolution is ~58% per step; allow that much slack.
        assert hist.quantile(0.50) == pytest.approx(0.050, rel=0.6)
        assert hist.quantile(0.90) == pytest.approx(0.090, rel=0.6)
        # Quantiles are monotone and clamped to the observed range.
        assert (
            hist.min
            <= hist.quantile(0.50)
            <= hist.quantile(0.90)
            <= hist.quantile(0.99)
            <= hist.max
        )

    def test_quantile_empty_and_single(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        hist.observe(0.25)
        assert hist.quantile(0.5) == pytest.approx(0.25)
        assert hist.quantile(0.99) == pytest.approx(0.25)

    def test_as_dict_keeps_legacy_keys_and_adds_quantiles(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        d = hist.as_dict()
        for key in ("count", "sum", "min", "max", "mean"):
            assert key in d  # the pre-quantile schema survives
        assert d["p50"] <= d["p90"] <= d["p99"]

    def test_merge_combines_sketches(self):
        a, b = Histogram(), Histogram()
        for v in (0.001, 0.002):
            a.observe(v)
        for v in (0.004, 0.008):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(0.015)
        assert a.min == pytest.approx(0.001)
        assert a.max == pytest.approx(0.008)
        assert a.quantile(0.99) <= a.max


class TestPhaseTimers:
    def test_accumulates_wall_clock(self):
        timers = PhaseTimers()
        with timers.phase("p"):
            pass
        with timers.phase("p"):
            pass
        stats = timers.stats("p")
        assert stats.calls == 2
        assert stats.total_s >= 0.0
        assert stats.max_s >= 0.0

    def test_module_phase_helper_null_when_disabled(self):
        assert phase(None, "anything") is NULL_PHASE
        with phase(None, "anything"):  # no-op context
            pass

    def test_module_phase_helper_routes_to_observation(self):
        ob = obs.Observation()
        with phase(ob, "p"):
            pass
        assert ob.timers.stats("p").calls == 1


class TestPhaseEdgeCases:
    def test_as_dict_with_zero_samples(self):
        """An allocated-but-never-entered phase must not divide by zero."""
        from repro.obs.timing import PhaseStats, ProfilePhaseStats

        for stats in (PhaseStats(), ProfilePhaseStats()):
            out = stats.as_dict()
            assert out["calls"] == 0
            assert out["mean_s"] == 0.0
            assert out["total_s"] == 0.0

    def test_reentrant_phase_stays_sane(self):
        """A phase nested inside itself: totals monotone, self_s >= 0."""
        from repro.obs.timing import PhaseTimers, ProfilingTimers

        for cls in (PhaseTimers, ProfilingTimers):
            timers = cls()
            with timers.phase("recurse"):
                with timers.phase("recurse"):
                    pass
            out = timers.as_dict()["recurse"]
            assert out["calls"] == 2
            # The outer interval contains the inner one, so the
            # accumulated total double-counts the overlap; it must still
            # be finite and the profiling variant must clamp self time.
            assert out["total_s"] >= out["max_s"]
            if "self_s" in out:
                assert out["self_s"] >= 0.0

    def test_null_phase_is_a_shared_singleton(self):
        """The disabled path allocates nothing per call."""
        contexts = {id(phase(None, f"p{i}")) for i in range(100)}
        assert contexts == {id(NULL_PHASE)}

    def test_exception_inside_phase_still_recorded(self):
        timers = PhaseTimers()
        with pytest.raises(RuntimeError):
            with timers.phase("boom"):
                raise RuntimeError("x")
        assert timers.stats("boom").calls == 1


class TestExport:
    def test_snapshot_keys(self):
        ob = obs.Observation()
        ob.metrics.counter("c").inc()
        with ob.timers.phase("p"):
            pass
        snap = snapshot(ob)
        assert set(snap) == {"metrics", "timings"}
        assert "p" in snap["timings"]

    def test_write_metrics_round_trips(self, tmp_path):
        ob = obs.Observation()
        ob.metrics.gauge("g", link="a->b").set(7.0)
        path = tmp_path / "m.json"
        write_metrics(str(path), ob)
        data = json.loads(path.read_text())
        assert data["metrics"]["gauges"]["g"]["link=a->b"]["value"] == 7.0

    def test_render_timings_lists_phases(self):
        ob = obs.Observation()
        with ob.timers.phase("fluid.epoch"):
            pass
        text = render_timings(ob)
        assert "fluid.epoch" in text
        assert "total_s" in text


class TestSession:
    def test_disabled_by_default(self):
        assert obs.current() is None

    def test_start_stop(self):
        ob = obs.start()
        try:
            assert obs.current() is ob
        finally:
            obs.stop()
        assert obs.current() is None

    def test_observe_restores_previous(self):
        with obs.observe() as outer:
            with obs.observe() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_observe_writes_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.observe(trace_path=str(path)) as ob:
            ob.tracer.event("hello", x=1)
        assert json.loads(path.read_text())["kind"] == "hello"
