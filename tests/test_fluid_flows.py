"""Flows and traffic matrices."""

import pytest

from repro.exceptions import TopologyError
from repro.fluid.flows import (
    Flow,
    TrafficMatrix,
    paper_flows,
    uniform_random_rates,
)


class TestFlow:
    def test_rejects_self_flow(self):
        with pytest.raises(TopologyError):
            Flow("a", "a", 1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(TopologyError):
            Flow("a", "b", -1.0)

    def test_scaled(self):
        flow = Flow("a", "b", 10.0, name="x")
        doubled = flow.scaled(2.0)
        assert doubled.rate == 20.0
        assert doubled.name == "x"
        assert flow.rate == 10.0  # original untouched

    def test_label(self):
        assert Flow("a", "b", 1.0, name="f3").label() == "f3"
        assert Flow("a", "b", 1.0).label() == "a->b"


class TestTrafficMatrix:
    def test_rates_accumulate(self):
        tm = TrafficMatrix([Flow("a", "b", 5.0), Flow("a", "b", 3.0)])
        assert tm.rate("a", "b") == 8.0
        assert len(tm) == 2  # flows kept individually

    def test_missing_rate_is_zero(self):
        tm = TrafficMatrix()
        assert tm.rate("x", "y") == 0.0

    def test_rates_to(self):
        tm = TrafficMatrix(
            [Flow("a", "j", 1.0), Flow("b", "j", 2.0), Flow("a", "k", 3.0)]
        )
        assert tm.rates_to("j") == {"a": 1.0, "b": 2.0}

    def test_destinations_and_sources_exclude_zero(self):
        tm = TrafficMatrix([Flow("a", "j", 0.0), Flow("b", "k", 2.0)])
        assert tm.destinations() == ["k"]
        assert tm.sources() == ["b"]

    def test_total_rate(self):
        tm = TrafficMatrix([Flow("a", "j", 1.5), Flow("b", "k", 2.5)])
        assert tm.total_rate() == 4.0

    def test_scaled(self):
        tm = TrafficMatrix([Flow("a", "j", 2.0)]).scaled(3.0)
        assert tm.rate("a", "j") == 6.0

    def test_validate_against(self, triangle):
        TrafficMatrix([Flow("a", "b", 1.0)]).validate_against(triangle)
        with pytest.raises(TopologyError):
            TrafficMatrix([Flow("a", "zzz", 1.0)]).validate_against(triangle)

    def test_iteration_order_is_insertion(self):
        flows = [Flow("a", "j", 1.0, name="x"), Flow("b", "j", 1.0, name="y")]
        tm = TrafficMatrix(flows)
        assert [f.name for f in tm] == ["x", "y"]


class TestFactories:
    def test_paper_flows_scalar_rate(self):
        tm = paper_flows([("a", "b"), ("c", "d")], 5.0)
        assert [f.rate for f in tm.flows] == [5.0, 5.0]
        assert [f.name for f in tm.flows] == ["f0", "f1"]

    def test_paper_flows_per_pair_rates(self):
        tm = paper_flows([("a", "b"), ("c", "d")], [1.0, 2.0])
        assert [f.rate for f in tm.flows] == [1.0, 2.0]

    def test_paper_flows_length_mismatch(self):
        with pytest.raises(TopologyError):
            paper_flows([("a", "b")], [1.0, 2.0])

    def test_uniform_random_rates_in_range_and_reproducible(self):
        pairs = [("a", "b"), ("c", "d"), ("e", "f")]
        tm1 = uniform_random_rates(pairs, 10.0, 20.0, seed=3)
        tm2 = uniform_random_rates(pairs, 10.0, 20.0, seed=3)
        assert [f.rate for f in tm1.flows] == [f.rate for f in tm2.flows]
        assert all(10.0 <= f.rate <= 20.0 for f in tm1.flows)

    def test_uniform_random_rejects_bad_range(self):
        with pytest.raises(TopologyError):
            uniform_random_rates([("a", "b")], 5.0, 1.0)
