"""Packet-level runs of the full system."""

import pytest

from repro.exceptions import SimulationError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.sim.packet_runner import PacketRunConfig, run_packet_level
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import Scenario, bursty_scenario


@pytest.fixture
def diamond_scenario(diamond):
    traffic = TrafficMatrix([Flow("s", "t", 500.0, name="hot")])
    return Scenario("diamond", diamond, traffic)


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            PacketRunConfig(tl=2, ts=10)
        with pytest.raises(SimulationError):
            PacketRunConfig(tl=10, ts=3)

    def test_labels(self):
        assert "pkt" in PacketRunConfig().label
        assert PacketRunConfig(successor_limit=1).label.startswith("SP")


class TestRuns:
    def test_packets_flow_and_split(self, diamond_scenario):
        result = run_packet_level(
            diamond_scenario,
            PacketRunConfig(tl=10, ts=2, duration=20.0, damping=0.5),
        )
        delays = result.mean_flow_delays()
        assert delays["hot"] > 0.0
        # multipath keeps the diamond under ~0.35 utilization per arm
        assert result.records[0].max_utilization < 0.5

    def test_agrees_with_fluid_model(self, diamond_scenario):
        """The two simulators must tell the same story (within noise)."""
        pkt = run_packet_level(
            diamond_scenario,
            PacketRunConfig(tl=10, ts=2, duration=30.0, damping=0.5),
        )
        fluid = run_quasi_static(
            diamond_scenario,
            QuasiStaticConfig(
                tl=10, ts=2, duration=100.0, warmup=20.0, damping=0.5
            ),
        )
        assert pkt.mean_flow_delays()["hot"] == pytest.approx(
            fluid.mean_flow_delays()["hot"], rel=0.25
        )

    def test_sp_restriction_applies(self, diamond_scenario):
        # keep the run inside the first Tl window so SP stays on its
        # initial path (later it legitimately flaps between arms)
        sp = run_packet_level(
            diamond_scenario,
            PacketRunConfig(tl=10, ts=2, duration=8.0, successor_limit=1),
        )
        # single path: all 500 pkt/s ride one 1000 pkt/s arm
        utils = sp.records[0].max_utilization
        assert utils > 0.4

    def test_online_estimator_end_to_end(self, diamond_scenario):
        result = run_packet_level(
            diamond_scenario,
            PacketRunConfig(
                tl=10, ts=2, duration=20.0, estimator="online", damping=0.5
            ),
        )
        assert result.mean_flow_delays()["hot"] > 0.0

    def test_bursty_scenario_uses_onoff_sources(self, diamond_scenario):
        bursty = bursty_scenario(
            diamond_scenario, burstiness=3.0, mean_on=2.0, seed=1
        )
        result = run_packet_level(
            bursty, PacketRunConfig(tl=10, ts=2, duration=20.0)
        )
        assert result.mean_flow_delays().get("hot", 0.0) > 0.0
