"""Extension features: the ECMP baseline and link-failure scenarios."""

import pytest

from repro.core.router import MPRouting
from repro.core.spf import ecmp_successors
from repro.exceptions import RoutingError, SimulationError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.validation import is_loop_free
from repro.sim.runner import QuasiStaticConfig, run_quasi_static
from repro.sim.scenario import Scenario, net1_scenario, with_failures


class TestEcmpSuccessors:
    def test_equal_cost_paths_only(self, diamond):
        costs = diamond.uniform_costs(1.0)
        succ = ecmp_successors(diamond, costs, "t")
        assert set(succ["s"]) == {"a", "b"}  # both cost 2

    def test_unequal_cost_path_excluded(self, diamond):
        costs = diamond.uniform_costs(1.0)
        costs[("b", "t")] = 1.5  # via b now costs 2.5
        succ = ecmp_successors(diamond, costs, "t")
        assert succ["s"] == ["a"]  # ECMP drops it; LFI would keep it
        from repro.core.lfi import lfi_successors

        assert set(lfi_successors(diamond, costs, "t")["s"]) == {"a", "b"}

    def test_subset_of_lfi_and_loop_free(self, small_grid):
        import random

        from repro.core.lfi import lfi_successors

        rng = random.Random(2)
        costs = {
            ln.link_id: rng.choice([1.0, 1.0, 2.0])
            for ln in small_grid.links()
        }
        for dest in [(0, 0), (2, 2)]:
            ecmp = ecmp_successors(small_grid, costs, dest)
            lfi = lfi_successors(small_grid, costs, dest)
            assert is_loop_free(ecmp)
            for node in small_grid.nodes:
                if node != dest:
                    assert set(ecmp[node]) <= set(lfi[node])


class TestEcmpRouting:
    def test_mode_validation(self, diamond):
        with pytest.raises(RoutingError):
            MPRouting(diamond, ["t"], path_rule="psychic")
        with pytest.raises(RoutingError):
            MPRouting(diamond, ["t"], path_rule="ecmp", mode="protocol")

    def test_ecmp_run_label_and_ordering(self, diamond):
        """MP (unequal-cost) <= ECMP <= SP in delay on an asymmetric
        diamond where the second path is longer but still useful."""
        topo = diamond
        topo.remove_duplex_link("b", "t")
        topo.add_duplex_link("b", "t", capacity=1000.0, prop_delay=3e-3)
        traffic = TrafficMatrix([Flow("s", "t", 700.0, name="hot")])
        scenario = Scenario("asym", topo, traffic)
        cfg = dict(tl=10.0, ts=2.0, duration=80.0, warmup=20.0)
        mp = run_quasi_static(
            scenario, QuasiStaticConfig(damping=0.5, **cfg)
        )
        ecmp = run_quasi_static(
            scenario, QuasiStaticConfig(path_rule="ecmp", **cfg)
        )
        sp = run_quasi_static(
            scenario, QuasiStaticConfig(successor_limit=1, **cfg)
        )
        assert ecmp.label.startswith("ECMP")
        # The b path has unequal cost: ECMP cannot use it, MP can.
        assert mp.mean_average_delay() < ecmp.mean_average_delay()
        assert ecmp.mean_average_delay() <= sp.mean_average_delay() * 1.001


class TestFailureScenario:
    def test_validation(self, diamond):
        base = Scenario(
            "d", diamond, TrafficMatrix([Flow("s", "t", 100.0, name="x")])
        )
        with pytest.raises(SimulationError):
            with_failures(base, {("s", "zzz"): [(1.0, 2.0)]})
        with pytest.raises(SimulationError):
            with_failures(base, {("s", "a"): [(5.0, 5.0)]})

    def test_links_down_windows(self, diamond):
        base = Scenario(
            "d", diamond, TrafficMatrix([Flow("s", "t", 100.0, name="x")])
        )
        scenario = with_failures(base, {("s", "a"): [(10.0, 20.0)]})
        assert scenario.links_down_at(5.0) == frozenset()
        assert scenario.links_down_at(15.0) == {("s", "a"), ("a", "s")}
        assert scenario.links_down_at(25.0) == frozenset()

    def test_traffic_survives_outage(self, diamond):
        base = Scenario(
            "d", diamond, TrafficMatrix([Flow("s", "t", 300.0, name="x")])
        )
        scenario = with_failures(base, {("s", "a"): [(20.0, 40.0)]})
        result = run_quasi_static(
            scenario,
            QuasiStaticConfig(
                tl=10, ts=2, duration=80, warmup=0, damping=0.5
            ),
        )
        # delay is reported for every epoch, including during the outage
        assert len(result.records) == 40
        assert all(r.flow_delays["x"] > 0 for r in result.records)

    def test_mp_absorbs_failure_better_than_sp(self, diamond):
        """The paper: 'In the presence of link failures, MP can only
        perform better than SP, because of availability of alternate
        paths.'"""
        base = Scenario(
            "d", diamond, TrafficMatrix([Flow("s", "t", 600.0, name="x")])
        )
        scenario = with_failures(base, {("a", "t"): [(30.0, 60.0)]})
        cfg = dict(tl=10.0, ts=2.0, duration=100.0, warmup=10.0)
        mp = run_quasi_static(
            scenario, QuasiStaticConfig(damping=0.5, **cfg)
        )
        sp = run_quasi_static(
            scenario, QuasiStaticConfig(successor_limit=1, **cfg)
        )
        assert mp.mean_average_delay() <= sp.mean_average_delay() * 1.001

    def test_failure_of_unused_link_is_invisible(self, diamond):
        base = Scenario(
            "d", diamond, TrafficMatrix([Flow("a", "t", 100.0, name="x")])
        )
        stable = run_quasi_static(
            base,
            QuasiStaticConfig(tl=10, ts=2, duration=60, warmup=10),
        )
        failed = run_quasi_static(
            with_failures(base, {("s", "b"): [(20.0, 40.0)]}),
            QuasiStaticConfig(tl=10, ts=2, duration=60, warmup=10),
        )
        assert failed.mean_flow_delays() == stable.mean_flow_delays()
