"""Simulated links: queueing behavior against queueing theory."""

import random

import pytest

from repro.exceptions import SimulationError
from repro.graph.topology import Link
from repro.netsim.engine import Engine
from repro.netsim.link import SimLink
from repro.netsim.packet import Packet
from repro.netsim.traffic import PoissonSource
from repro.fluid.flows import Flow


def poisson_fed_link(rate, capacity, duration, service="exponential", seed=1):
    """Feed a link with Poisson arrivals; return (delays, link, engine)."""
    engine = Engine()
    arrivals = []
    link_obj = Link("a", "b", capacity=capacity, prop_delay=0.0)
    link = SimLink(
        engine, link_obj, lambda p: arrivals.append(engine.now - p.created_at),
        random.Random(seed), service=service,
    )
    PoissonSource(
        engine,
        lambda p: link.send(p),
        Flow("a", "b", rate, name="x"),
        random.Random(seed + 1),
        stop=duration,
    )
    engine.run(until=duration + 50.0)
    return arrivals, link, engine


class TestMM1Theory:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_mean_delay_matches_mm1(self, rho):
        """Mean system time of an M/M/1 queue is 1/(C - lambda)."""
        capacity = 200.0
        rate = rho * capacity
        delays, _, _ = poisson_fed_link(rate, capacity, duration=400.0)
        expect = 1.0 / (capacity - rate)
        measured = sum(delays) / len(delays)
        assert measured == pytest.approx(expect, rel=0.1)

    def test_md1_is_faster_than_mm1(self):
        """M/D/1 waits half as long as M/M/1 at equal utilization."""
        capacity, rate = 200.0, 140.0
        mm1, _, _ = poisson_fed_link(rate, capacity, 400.0, "exponential")
        md1, _, _ = poisson_fed_link(rate, capacity, 400.0, "deterministic")
        assert sum(md1) / len(md1) < sum(mm1) / len(mm1)

    def test_utilization_matches_rho(self):
        capacity, rate = 200.0, 120.0
        duration = 300.0
        _, link, engine = poisson_fed_link(rate, capacity, duration)
        # sources stop at `duration` but the engine drains until now;
        # busy time accrues only while traffic flowed.
        expected = 0.6 * duration / engine.now
        assert link.utilization(engine.now) == pytest.approx(expected, rel=0.1)


class TestMechanics:
    def _make(self, capacity=100.0, prop=5e-3):
        engine = Engine()
        delivered = []
        link = SimLink(
            engine,
            Link("a", "b", capacity=capacity, prop_delay=prop),
            lambda p: delivered.append(engine.now),
            random.Random(0),
            service="deterministic",
        )
        return engine, link, delivered

    def test_propagation_delay_applied(self):
        engine, link, delivered = self._make(capacity=100.0, prop=5e-3)
        link.send(Packet("f", "a", "b", engine.now))
        engine.run()
        # service 1/100 = 10ms, plus 5ms propagation
        assert delivered == [pytest.approx(0.015)]

    def test_fifo_order(self):
        engine, link, _ = self._make()
        order = []
        link.deliver = lambda p: order.append(p.packet_id)
        p1, p2 = (Packet("f", "a", "b", 0.0) for _ in range(2))
        link.send(p1)
        link.send(p2)
        engine.run()
        assert order == [p1.packet_id, p2.packet_id]

    def test_queueing_under_burst(self):
        engine, link, delivered = self._make(capacity=100.0, prop=0.0)
        for _ in range(3):
            link.send(Packet("f", "a", "b", 0.0))
        engine.run()
        assert delivered == [
            pytest.approx(0.01),
            pytest.approx(0.02),
            pytest.approx(0.03),
        ]

    def test_monitor_counts_and_delays(self):
        engine, link, _ = self._make(capacity=100.0, prop=2e-3)
        for _ in range(2):
            link.send(Packet("f", "a", "b", 0.0))
        engine.run()
        m = link.monitor.take_window(engine.now)
        assert link.monitor.total_packets == 2
        # mean time-in-link = (10ms + 20ms)/2 plus 2ms propagation
        assert m.per_unit_delay == pytest.approx(0.017)

    def test_failed_link_drops(self):
        engine, link, delivered = self._make()
        link.send(Packet("f", "a", "b", 0.0))  # in service
        link.send(Packet("f", "a", "b", 0.0))  # queued
        link.fail()
        engine.run()
        assert delivered == []  # in-service packet is lost too
        assert link.queue.dropped >= 1

    def test_restore_resumes(self):
        engine, link, delivered = self._make()
        link.fail()
        link.send(Packet("f", "a", "b", 0.0))
        link.restore()
        link.send(Packet("f", "a", "b", 0.0))
        engine.run()
        assert len(delivered) == 1

    def test_unknown_service_model(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            SimLink(
                engine,
                Link("a", "b"),
                lambda p: None,
                random.Random(0),
                service="quantum",
            )
