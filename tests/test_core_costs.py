"""Marginal-delay cost estimators."""

import pytest

from repro.core.costs import (
    Measurement,
    MM1CostEstimator,
    OnlineCostEstimator,
)
from repro.exceptions import CapacityError
from repro.fluid.delay import MM1Delay

C = 1000.0
TAU = 1e-3


class TestMeasurement:
    def test_rejects_negative(self):
        with pytest.raises(CapacityError):
            Measurement(flow=-1.0, per_unit_delay=0.0)
        with pytest.raises(CapacityError):
            Measurement(flow=1.0, per_unit_delay=-0.1)


class TestMM1Estimator:
    def test_initial_cost_is_idle_marginal(self):
        est = MM1CostEstimator(C, TAU)
        assert est.cost == pytest.approx(1.0 / C + TAU)

    def test_tracks_flow_exactly(self):
        est = MM1CostEstimator(C, TAU)
        law = MM1Delay(C, TAU)
        for f in (100.0, 600.0, 900.0):
            cost = est.observe(Measurement(f, law.per_unit(f)))
            assert cost == pytest.approx(law.marginal(f))


class TestOnlineEstimator:
    def _law(self):
        return MM1Delay(C, TAU)

    def _feed(self, est, flows):
        law = self._law()
        cost = None
        for f in flows:
            cost = est.observe(Measurement(f, law.per_unit(f)))
        return cost

    def test_never_below_current_per_unit_delay(self):
        est = OnlineCostEstimator()
        law = self._law()
        for f in (100.0, 400.0, 800.0):
            cost = est.observe(Measurement(f, law.per_unit(f)))
            assert cost >= law.per_unit(f) - 1e-12

    def test_learns_slope_from_varying_flow(self):
        """With varying M/M/1 samples, the estimate approaches the true
        marginal much better than the naive per-unit delay does."""
        est = OnlineCostEstimator(forgetting=0.95)
        flows = [500 + 30 * ((i % 7) - 3) for i in range(60)]
        cost = self._feed(est, flows)
        law = self._law()
        true_marginal = law.marginal(500.0)
        naive = law.per_unit(500.0)
        assert abs(cost - true_marginal) < abs(naive - true_marginal)

    def test_constant_flow_falls_back_to_per_unit(self):
        est = OnlineCostEstimator()
        cost = self._feed(est, [400.0] * 10)
        law = self._law()
        assert cost == pytest.approx(law.per_unit(400.0))

    def test_needs_no_capacity_knowledge(self):
        """The estimator's whole point: it is built from measurements
        only (construct without any capacity argument)."""
        est = OnlineCostEstimator()
        assert est.cost == 0.0
        est.observe(Measurement(10.0, 0.005))
        assert est.cost > 0.0

    def test_forgetting_validated(self):
        with pytest.raises(CapacityError):
            OnlineCostEstimator(forgetting=0.0)
        with pytest.raises(CapacityError):
            OnlineCostEstimator(forgetting=1.5)

    def test_slope_never_negative(self):
        """Decreasing-delay noise must not produce costs below the mean
        delay (convexity of the true law)."""
        est = OnlineCostEstimator()
        est.observe(Measurement(100.0, 0.010))
        cost = est.observe(Measurement(200.0, 0.005))  # delay fell: noise
        mean_w = (0.010 + 0.005) / 2
        assert cost >= min(0.010, 0.005)
        assert cost >= mean_w - 1e-9 or cost >= 0.005
