"""The blocking sets that keep Gallager's iterations loop-free."""

from repro.gallager.blocking import blocked_nodes


class TestImproperDetection:
    def test_proper_routing_nothing_blocked(self):
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"t": 1.0}}}
        delta = {"a": 2.0, "b": 1.0, "t": 0.0}
        assert blocked_nodes(phi, "t", delta) == set()

    def test_improper_link_blocks_its_head(self):
        # b forwards to a node with larger-or-equal marginal distance.
        phi = {
            "a": {"t": {"t": 1.0}},
            "b": {"t": {"a": 1.0}},
        }
        delta = {"a": 5.0, "b": 1.0, "t": 0.0}
        assert blocked_nodes(phi, "t", delta) == {"b"}

    def test_equal_delta_is_improper(self):
        """Gallager's rule uses >=, not >."""
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"t": 1.0}}}
        delta = {"a": 1.0, "b": 1.0, "t": 0.0}
        assert "a" in blocked_nodes(phi, "t", delta)

    def test_tolerance_relaxes_near_ties(self):
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"t": 1.0}}}
        delta = {"a": 1.0, "b": 1.0000001, "t": 0.0}
        assert blocked_nodes(phi, "t", delta, tolerance=1e-3) == set()


class TestUpstreamPropagation:
    def test_blockedness_propagates_through_used_links(self):
        # c -> b -> a(improper)
        phi = {
            "a": {"t": {"x": 1.0}},
            "b": {"t": {"a": 1.0}},
            "c": {"t": {"b": 1.0}},
            "x": {"t": {"t": 1.0}},
        }
        delta = {"a": 3.0, "b": 2.9, "c": 4.0, "x": 5.0, "t": 0.0}
        blocked = blocked_nodes(phi, "t", delta)
        # a routes to x with delta 5 >= 3 -> improper; b routes into a;
        # c routes into b.  b itself also routes improperly (a: 3 >= 2.9).
        assert blocked == {"a", "b", "c"}

    def test_unused_branch_not_blocked(self):
        phi = {
            "a": {"t": {"x": 1.0}},
            "b": {"t": {"t": 1.0}},  # proper, independent
            "x": {"t": {"t": 1.0}},
        }
        delta = {"a": 1.0, "b": 1.0, "x": 5.0, "t": 0.0}
        blocked = blocked_nodes(phi, "t", delta)
        assert "b" not in blocked
        assert "a" in blocked

    def test_unreachable_forwarder_is_blocked(self):
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"a": 1.0}}}
        delta = {"t": 0.0}  # neither a nor b has a finite distance
        blocked = blocked_nodes(phi, "t", delta)
        assert blocked == {"a", "b"}
