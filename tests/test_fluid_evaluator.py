"""The fluid evaluator: Eqs. (1)-(3) and per-flow delays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    AllocationError,
    ConvergenceError,
    LoopError,
    RoutingError,
)
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import (
    destination_successors,
    evaluate,
    flow_delays,
    link_flows,
    node_flows,
    node_flows_iterative,
)
from repro.fluid.flows import Flow, TrafficMatrix


def diamond_phi(split: float = 0.5):
    """Traffic s->t split over the two diamond paths."""
    return {
        "s": {"t": {"a": split, "b": 1.0 - split}},
        "a": {"t": {"t": 1.0}},
        "b": {"t": {"t": 1.0}},
    }


class TestNodeFlows:
    def test_single_path_chain(self):
        phi = {"a": {"c": {"b": 1.0}}, "b": {"c": {"c": 1.0}}}
        t = node_flows(phi, {"a": 10.0}, "c")
        assert t["a"] == 10.0
        assert t["b"] == 10.0
        assert t["c"] == 10.0  # traffic arriving at the destination

    def test_split_conserves_traffic(self):
        t = node_flows(diamond_phi(0.3), {"s": 100.0}, "t")
        assert t["a"] == pytest.approx(30.0)
        assert t["b"] == pytest.approx(70.0)
        assert t["t"] == pytest.approx(100.0)

    def test_merging_traffic(self):
        """Eq. (1): traffic entering at two routers merges downstream."""
        phi = {
            "s": {"t": {"a": 1.0}},
            "x": {"t": {"a": 1.0}},
            "a": {"t": {"t": 1.0}},
        }
        t = node_flows(phi, {"s": 10.0, "x": 5.0}, "t")
        assert t["a"] == pytest.approx(15.0)

    def test_black_hole_raises(self):
        phi = {"s": {"t": {"a": 1.0}}, "a": {"t": {}}}
        with pytest.raises(RoutingError):
            node_flows(phi, {"s": 1.0}, "t")

    def test_loop_raises(self):
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"a": 1.0}}}
        with pytest.raises(LoopError):
            node_flows(phi, {"a": 1.0}, "t")

    def test_unnormalized_phi_rejected(self):
        phi = {"s": {"t": {"a": 0.4, "b": 0.4}}}
        with pytest.raises(AllocationError):
            node_flows(phi, {"s": 1.0}, "t")

    def test_negative_phi_rejected(self):
        phi = {"s": {"t": {"a": 1.2, "b": -0.2}}}
        with pytest.raises(AllocationError):
            node_flows(phi, {"s": 1.0}, "t")


class TestNodeFlowsIterative:
    def test_agrees_with_exact_on_dag(self):
        rates = {"s": 100.0}
        exact = node_flows(diamond_phi(0.25), rates, "t")
        approx = node_flows_iterative(diamond_phi(0.25), rates, "t")
        for node, value in exact.items():
            assert approx[node] == pytest.approx(value, abs=1e-6)

    def test_partial_loop_converges(self):
        """A loop that leaks traffic out converges geometrically."""
        phi = {
            "a": {"t": {"b": 1.0}},
            "b": {"t": {"a": 0.5, "t": 0.5}},
        }
        t = node_flows_iterative(phi, {"a": 10.0}, "t")
        # a receives 10 + b*0.5, b receives a: solves to a=20, b=20.
        assert t["a"] == pytest.approx(20.0, abs=1e-5)
        assert t["b"] == pytest.approx(20.0, abs=1e-5)
        assert t["t"] == pytest.approx(10.0, abs=1e-5)

    def test_full_recirculation_diverges(self):
        phi = {"a": {"t": {"b": 1.0}}, "b": {"t": {"a": 1.0}}}
        with pytest.raises(ConvergenceError):
            node_flows_iterative(phi, {"a": 1.0}, "t", max_iterations=200)


class TestLinkFlows:
    def test_eq2_sums_destinations(self):
        phi = {
            "s": {"t": {"a": 1.0}, "a": {"a": 1.0}},
            "a": {"t": {"t": 1.0}},
        }
        traffic = TrafficMatrix(
            [Flow("s", "t", 10.0), Flow("s", "a", 5.0)]
        )
        f = link_flows(phi, traffic)
        assert f[("s", "a")] == pytest.approx(15.0)  # both demands share it
        assert f[("a", "t")] == pytest.approx(10.0)

    def test_conservation_total(self, diamond, diamond_traffic):
        f = link_flows(diamond_phi(0.5), diamond_traffic)
        # everything injected leaves s
        assert f[("s", "a")] + f[("s", "b")] == pytest.approx(600.0)
        # everything arrives at t
        assert f[("a", "t")] + f[("b", "t")] == pytest.approx(600.0)


class TestFlowDelays:
    def test_two_hop_delay(self):
        phi = {"s": {"t": {"a": 1.0}}, "a": {"t": {"t": 1.0}}}
        traffic = TrafficMatrix([Flow("s", "t", 1.0, name="x")])
        per_unit = {("s", "a"): 2.0, ("a", "t"): 3.0}
        assert flow_delays(phi, traffic, per_unit)["x"] == pytest.approx(5.0)

    def test_split_delay_is_weighted_mean(self):
        traffic = TrafficMatrix([Flow("s", "t", 1.0, name="x")])
        per_unit = {
            ("s", "a"): 1.0,
            ("s", "b"): 1.0,
            ("a", "t"): 1.0,
            ("b", "t"): 9.0,
        }
        delays = flow_delays(diamond_phi(0.75), traffic, per_unit)
        # 0.75 * (1+1) + 0.25 * (1+9) = 4.0
        assert delays["x"] == pytest.approx(4.0)

    def test_unroutable_flow_raises(self):
        traffic = TrafficMatrix([Flow("q", "t", 1.0, name="x")])
        with pytest.raises(RoutingError):
            flow_delays(diamond_phi(), traffic, {})


class TestEvaluate:
    def test_full_evaluation(self, diamond, diamond_traffic):
        ev = evaluate(diamond, diamond_phi(0.5), diamond_traffic)
        assert ev.total_delay > 0
        assert ev.average_delay == pytest.approx(
            ev.total_delay / diamond_traffic.total_rate()
        )
        assert ev.max_utilization == pytest.approx(300.0 / 1000.0)
        assert set(ev.flow_delays) == {"hot"}

    def test_balanced_split_beats_single_path(self, diamond, diamond_traffic):
        balanced = evaluate(diamond, diamond_phi(0.5), diamond_traffic)
        lopsided = evaluate(diamond, diamond_phi(1.0), diamond_traffic)
        assert balanced.total_delay < lopsided.total_delay

    def test_flow_delays_ms(self, diamond, diamond_traffic):
        ev = evaluate(diamond, diamond_phi(0.5), diamond_traffic)
        assert ev.flow_delays_ms()["hot"] == pytest.approx(
            ev.flow_delays["hot"] * 1e3
        )

    def test_strict_mode_saturated_is_infinite(self, diamond):
        heavy = TrafficMatrix([Flow("s", "t", 2500.0, name="over")])
        ev = evaluate(diamond, diamond_phi(0.5), heavy, strict=True)
        assert ev.total_delay == float("inf")


class TestDestinationSuccessors:
    def test_only_positive_fractions(self):
        phi = {"s": {"t": {"a": 1.0, "b": 0.0}}}
        succ = destination_successors(phi, "t")
        assert succ["s"] == ["a"]


@settings(max_examples=50, deadline=None)
@given(split=st.floats(0.0, 1.0), rate=st.floats(1.0, 900.0))
def test_conservation_property(split, rate):
    """Injected = delivered for any split and feasible rate."""
    phi = diamond_phi(split)
    t = node_flows(phi, {"s": rate}, "t")
    assert t["t"] == pytest.approx(rate, rel=1e-9)
