"""The assembled MP routing plane: MPDA routes + IH/AH allocation.

:class:`MPRouting` is the paper's contribution wired together for the
simulators: it owns the successor sets and per-router allocation tables
and exposes the two update operations of the two-timescale discipline:

- :meth:`update_routes` — the long-term (``Tl``) operation: recompute
  multiple loop-free successor sets from long-term marginal-delay costs,
  and run **IH** wherever a successor set changed;
- :meth:`adjust_allocation` — the short-term (``Ts``) operation: run
  **AH** everywhere, using the routing-protocol distances combined with
  freshly measured *local* link costs (a strictly local computation, as
  the paper requires).

Routes can come from two interchangeable backends:

- ``mode="oracle"`` computes the converged MPDA outcome directly
  (Theorem 4: :math:`S^i_j = \\{k : D^k_j < D^i_j\\}`) — fast and exact
  for quasi-static experiments where the protocol has time to converge
  between measurements;
- ``mode="protocol"`` runs the real MPDA message exchange through
  :class:`~repro.core.driver.ProtocolDriver` and harvests the successor
  sets from the live routers.  Tests verify both backends agree.

``successor_limit=1`` yields the paper's SP baseline; ``None`` is MP.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.core.allocation import AllocationTable
from repro.core.driver import ProtocolDriver
from repro.core.lfi import lfi_successors
from repro.core.mpda import MPDARouter
from repro.core.spf import ecmp_successors, restrict_successors
from repro.exceptions import RoutingError
from repro.graph.shortest_paths import CostMap, SharedSPF
from repro.graph.topology import NodeId, Topology
from repro.graph.validation import assert_loop_free

INFINITY = float("inf")


class MPRouting:
    """Routing plane for a whole network.

    Args:
        topo: the network.
        destinations: the active destinations (those with traffic).
        successor_limit: None for MP, 1 for the SP baseline, other values
            for the successor-count ablation.
        mode: "oracle" (converged sets computed directly) or "protocol"
            (real MPDA message exchange).
        path_rule: "lfi" (the paper's unequal-cost sets), "ecmp"
            (equal-cost-only sets over the measured costs — with
            continuous marginal delays ties never occur, so this
            degenerates to SP, which is itself the point), or
            "ecmp-hop" (realistic OSPF: hop-count routing with even
            splitting over equal-hop paths, blind to congestion).
            Non-"lfi" rules are oracle mode only.
        damping: AH step damping (1.0 = the paper's heuristic).
        seed: delivery interleaving seed for protocol mode.
        transport: control-plane channel for protocol mode (None = the
            default :class:`~repro.core.transport.PerfectChannel`); lets
            experiments run the exchange over a lossy wire.
        batch: "always" runs the vectorized IH/AH kernels, "never" the
            scalar ones, "auto" (default) switches to the vectorized
            path once the network has at least
            :data:`BATCH_AUTO_THRESHOLD` (node, destination) pairs.
            Both paths compute bit-identical parameters; the scalar one
            doubles as the differential-test oracle.
    """

    #: nodes x destinations above which batch="auto" vectorizes.
    BATCH_AUTO_THRESHOLD = 1024

    def __init__(
        self,
        topo: Topology,
        destinations: list[NodeId],
        *,
        successor_limit: int | None = None,
        mode: str = "oracle",
        path_rule: str = "lfi",
        damping: float = 1.0,
        seed: int = 0,
        transport=None,
        batch: str = "auto",
    ) -> None:
        if mode not in ("oracle", "protocol"):
            raise RoutingError(f"unknown routing mode {mode!r}")
        if batch not in ("auto", "always", "never"):
            raise RoutingError(f"unknown batch mode {batch!r}")
        if path_rule not in ("lfi", "ecmp", "ecmp-hop"):
            raise RoutingError(f"unknown path rule {path_rule!r}")
        if path_rule != "lfi" and mode != "oracle":
            raise RoutingError(
                "the ECMP baselines are computed from converged distances; "
                "use mode='oracle'"
            )
        self.path_rule = path_rule
        self.batch = batch
        self.topo = topo
        self.destinations = list(destinations)
        self.successor_limit = successor_limit
        self.mode = mode
        self.allocations = {
            node: AllocationTable(node, damping=damping) for node in topo.nodes
        }
        #: distance_tables[j][k] = D^k_j under the last long-term costs —
        #: the protocol-supplied distances IH/AH combine with local costs.
        self._distance_tables: dict[NodeId, dict[NodeId, float]] = {}
        self._successors: dict[NodeId, dict[NodeId, list[NodeId]]] = {}
        self._driver: ProtocolDriver | None = None
        if transport is not None and mode != "protocol":
            raise RoutingError(
                "a custom transport needs mode='protocol' (oracle mode "
                "exchanges no messages)"
            )
        if mode == "protocol":
            self._driver = ProtocolDriver(
                topo, MPDARouter, seed=seed, transport=transport
            )
        self.route_updates = 0
        self.allocation_updates = 0

    # ------------------------------------------------------------------
    # long-term (Tl) operation
    # ------------------------------------------------------------------
    def update_routes(self, long_costs: CostMap) -> None:
        """Recompute successor sets; IH re-seeds changed allocations."""
        self.route_updates += 1
        ob = obs.current()
        before = self._successor_snapshot() if ob is not None else None
        with obs.phase(ob, "routing.update_routes"):
            if self.mode == "protocol":
                self._update_routes_protocol(long_costs)
            else:
                self._update_routes_oracle(long_costs)
        if ob is not None:
            self._record_update(ob, before)
        # Fresh distribution wherever the successor set changed; the
        # AllocationTable notices changes and applies IH, otherwise it
        # adjusts incrementally with AH.
        self._apply_allocation(long_costs)

    def _update_routes_oracle(self, costs: CostMap) -> None:
        if self.path_rule == "ecmp-hop":
            # OSPF-like: route on hop counts, ignore measured costs.
            costs = {link_id: 1.0 for link_id in costs}
        # One reversed-adjacency setup shared by every destination (and
        # by the successor rule, which takes the distances instead of
        # re-running its own bellman_ford per destination).
        spf = SharedSPF(costs, nodes=self.topo.nodes)
        for dest in self.destinations:
            dist = spf.distances_to(dest)
            self._distance_tables[dest] = dist
            if self.path_rule in ("ecmp", "ecmp-hop"):
                successors = ecmp_successors(self.topo, costs, dest, dist=dist)
            else:
                successors = lfi_successors(self.topo, costs, dest, dist=dist)
            self._successors[dest] = self._restrict(successors, dist, costs)
            assert_loop_free(self._successors[dest], dest)

    def _update_routes_protocol(self, costs: CostMap) -> None:
        driver = self._driver
        assert driver is not None
        if not driver.started:
            driver.start(costs)
        else:
            driver.set_costs(dict(costs))
        driver.run()
        self._harvest_tables(costs)

    # ------------------------------------------------------------------
    # short-term (Ts) operation
    # ------------------------------------------------------------------
    def adjust_allocation(self, local_costs: CostMap) -> None:
        """Run the allocation heuristics with fresh local link costs."""
        self.allocation_updates += 1
        ob = obs.current()
        if ob is None:
            self._apply_allocation(local_costs)
            return
        with ob.timers.phase("routing.adjust_allocation"):
            self._apply_allocation(local_costs)
        ob.metrics.counter("routing.allocation_updates").inc()

    def _successor_snapshot(self) -> dict[NodeId, dict[NodeId, set[NodeId]]]:
        return {
            dest: {node: set(succ) for node, succ in by_node.items()}
            for dest, by_node in self._successors.items()
        }

    def _record_update(self, ob, before) -> None:
        """Count route-flap churn: (node, dest) pairs whose set changed."""
        churn = 0
        for dest in self.destinations:
            old = before.get(dest, {})
            new = self._successors.get(dest, {})
            for node in set(old) | set(new):
                if old.get(node, set()) != set(new.get(node, ())):
                    churn += 1
        ob.metrics.counter("routing.route_updates").inc()
        ob.metrics.counter("routing.successor_churn").inc(churn)
        if ob.tracer.enabled:
            # sim_time is stamped by the runners (None for clock-less
            # protocol-only runs), so churn series line up with epochs.
            ob.tracer.event(
                "route_update",
                time=ob.sim_time,
                update=self.route_updates,
                churn=churn,
            )

    def _apply_allocation(self, local_costs: CostMap) -> None:
        batched = self.batch == "always" or (
            self.batch == "auto"
            and len(self.topo.nodes) * len(self.destinations)
            >= self.BATCH_AUTO_THRESHOLD
        )
        for node in self.topo.nodes:
            table = self.allocations[node]
            if batched:
                table.update_many(
                    [
                        (dest, self._distance_via(node, dest, local_costs))
                        for dest in self.destinations
                        if node != dest
                    ]
                )
                continue
            for dest in self.destinations:
                if node == dest:
                    continue
                distance_via = self._distance_via(node, dest, local_costs)
                table.update(dest, distance_via)

    def _restrict(
        self,
        successors: dict[NodeId, list[NodeId]],
        distances: Mapping[NodeId, float],
        costs: CostMap,
    ) -> dict[NodeId, list[NodeId]]:
        """Apply the successor-count limit at route-computation time.

        The restriction is part of *path* selection, so it happens at the
        long-term (``Tl``) update — the SP baseline keeps its single path
        pinned between route updates, exactly like a real single-path
        protocol; only the allocation over the (restricted) set reacts at
        ``Ts``.
        """
        if self.successor_limit is None:
            return successors
        restricted: dict[NodeId, list[NodeId]] = {}
        for node, succ in successors.items():
            via = {}
            for k in succ:
                d = distances.get(k, INFINITY)
                cost = costs.get((node, k))
                if d == INFINITY or cost is None:
                    continue
                via[k] = d + cost
            restricted[node] = list(
                restrict_successors(via, self.successor_limit)
            )
        return restricted

    def _distance_via(
        self, node: NodeId, dest: NodeId, local_costs: CostMap
    ) -> dict[NodeId, float]:
        """Marginal distance through each current successor of ``node``.

        Combines the protocol's neighbor distances (long-term) with the
        locally measured adjacent-link costs (short-term).
        """
        successors = self._successors.get(dest, {}).get(node, [])
        distances = self._distance_tables.get(dest, {})
        if self.path_rule == "ecmp-hop":
            # OSPF splits evenly over equal-cost next hops and never
            # looks at measured delays: constant distances make IH an
            # even split and AH a fixed point.
            return {
                k: 1.0
                for k in successors
                if local_costs.get((node, k)) is not None
            }
        via: dict[NodeId, float] = {}
        for k in successors:
            d = distances.get(k, INFINITY)
            link_cost = local_costs.get((node, k))
            if d == INFINITY or link_cost is None:
                continue
            via[k] = d + link_cost
        return via

    # ------------------------------------------------------------------
    # data-plane views
    # ------------------------------------------------------------------
    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        """The global routing-parameter mapping for the fluid evaluator."""
        return {
            node: table.as_phi() for node, table in self.allocations.items()
        }

    def fractions(self, node: NodeId, destination: NodeId) -> dict[NodeId, float]:
        """Routing parameters of one router toward one destination.

        This makes :class:`MPRouting` a
        :class:`~repro.netsim.node.RoutingProvider`, so the packet
        simulator forwards straight off the live allocation tables.
        """
        return self.allocations[node].fractions(destination)

    def successors(self, dest: NodeId) -> dict[NodeId, list[NodeId]]:
        """Current successor sets toward ``dest`` (before any limit)."""
        return {
            node: list(succ)
            for node, succ in self._successors.get(dest, {}).items()
        }

    def used_successors(self, dest: NodeId) -> dict[NodeId, list[NodeId]]:
        """Successors actually carrying traffic (phi > 0)."""
        out: dict[NodeId, list[NodeId]] = {}
        for node, table in self.allocations.items():
            fractions = table.fractions(dest)
            out[node] = [k for k, f in fractions.items() if f > 0]
        return out

    def protocol_stats(self) -> dict[str, int]:
        """Message counters when running in protocol mode."""
        if self._driver is None:
            return {}
        return self._driver.message_stats()

    # ------------------------------------------------------------------
    # topology changes (protocol mode)
    # ------------------------------------------------------------------
    def fail_link(self, a: NodeId, b: NodeId) -> None:
        """Fail the duplex link ``a <-> b`` and reconverge the routes.

        Only available in protocol mode, where the real MPDA handles the
        failure with instantaneous loop freedom; the oracle backend has
        no live protocol state to update (copy the topology and build a
        new ``MPRouting`` instead).
        """
        driver = self._require_protocol("fail_link")
        driver.fail_link(a, b)
        driver.run()
        self._harvest_routes()

    def restore_link(
        self, a: NodeId, b: NodeId, cost_ab: float, cost_ba: float
    ) -> None:
        """Bring a failed duplex link back (protocol mode only)."""
        driver = self._require_protocol("restore_link")
        driver.restore_link(a, b, cost_ab, cost_ba)
        driver.run()
        self._harvest_routes()

    def _require_protocol(self, operation: str) -> ProtocolDriver:
        if self._driver is None or not self._driver.started:
            raise RoutingError(
                f"{operation} requires mode='protocol' with routes already "
                "computed at least once"
            )
        return self._driver

    def _harvest_routes(self) -> None:
        """Refresh routes from the live routers and re-seed allocations
        (IH fires where sets changed)."""
        driver = self._driver
        assert driver is not None
        costs = driver.current_costs()
        self._harvest_tables(costs)
        self._apply_allocation(costs)

    def _harvest_tables(self, costs: CostMap) -> None:
        """Copy distances and successor sets out of the live routers."""
        driver = self._driver
        assert driver is not None
        for dest in self.destinations:
            successors: dict[NodeId, list[NodeId]] = {}
            distances: dict[NodeId, float] = {dest: 0.0}
            for node, router in driver.routers.items():
                distances[node] = router.distance_to(dest)
                if node == dest:
                    successors[node] = []
                else:
                    successors[node] = sorted(
                        router.successors(dest), key=repr
                    )
            self._distance_tables[dest] = distances
            self._successors[dest] = self._restrict(
                successors, distances, costs
            )
            assert_loop_free(self._successors[dest], dest)
