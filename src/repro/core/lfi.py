"""The Loop-Free Invariant (LFI) conditions — Eqs. (16)-(17), Theorem 1.

The paper's central verification device: if at every instant every router
*i* keeps a *feasible distance* :math:`FD^i_j` satisfying

.. math::

    FD^i_j \\le D^i_{jk} \\quad \\forall k \\in N^i   \\qquad (16)

(where :math:`D^i_{jk}` is *k*'s distance to *j* as known to *i*) and
chooses successors

.. math::

    S^i_j = \\{\\,k \\mid D^i_{jk} < FD^i_j\\,\\}           \\qquad (17)

then the union of all successor sets is loop-free at every instant.

This module provides a checker used by the test suite and simulation
safety monitors against live MPDA router states, and the *converged*
successor-set computation :func:`lfi_successors` (by Theorem 4, what MPDA
produces once quiet: :math:`S^i_j = \\{k : D^k_j < D^i_j\\}`).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.shortest_paths import CostMap, bellman_ford
from repro.graph.topology import NodeId, Topology
from repro.graph.validation import find_successor_cycle


class LFIViolation(AssertionError):
    """A router state violates the LFI conditions.

    Derives from AssertionError because in a correct implementation this
    is unreachable; the safety monitors promote it to a test failure.
    """


def check_lfi(
    destination: NodeId,
    feasible_distance: Mapping[NodeId, float],
    reported: Mapping[NodeId, Mapping[NodeId, float]],
    successors: Mapping[NodeId, set[NodeId]],
) -> None:
    """Verify Eqs. (16)-(17) and acyclicity for one destination.

    Args:
        destination: the destination *j*.
        feasible_distance: :math:`FD^i_j` per router *i*.
        reported: ``reported[i][k]`` = :math:`D^i_{jk}`, the distance from
            neighbor *k* to *j* in *i*'s copy of *k*'s topology.
        successors: :math:`S^i_j` per router.

    Raises:
        LFIViolation: if any condition fails.
    """
    for router, fd in feasible_distance.items():
        known = reported.get(router, {})
        succ = successors.get(router, set())
        for nbr in succ:
            if nbr not in known:
                raise LFIViolation(
                    f"router {router!r}: successor {nbr!r} has no reported "
                    f"distance to {destination!r}"
                )
            if not known[nbr] < fd:
                raise LFIViolation(
                    f"router {router!r}: successor {nbr!r} has "
                    f"D_jk = {known[nbr]!r} >= FD = {fd!r} "
                    f"(Eq. 17 violated for destination {destination!r})"
                )
    cycle = find_successor_cycle(
        {router: list(succ) for router, succ in successors.items()}
    )
    if cycle is not None:
        raise LFIViolation(
            f"successor graph for {destination!r} has cycle {cycle!r} "
            "(Theorem 1 violated)"
        )


def lfi_successors(
    topo: Topology,
    costs: CostMap,
    destination: NodeId,
    *,
    dist: Mapping[NodeId, float] | None = None,
) -> dict[NodeId, list[NodeId]]:
    """Converged multipath successor sets for one destination.

    With globally consistent distances :math:`D^i_j` under ``costs``, the
    set is :math:`S^i_j = \\{k \\in N^i : D^k_j < D^i_j\\}` — neighbors
    strictly closer to the destination, regardless of the cost of the
    link to them ("multiple paths of unequal cost").  This is the steady
    state MPDA converges to (Theorem 4).  ``dist`` may supply the
    precomputed all-sources distances to ``destination``.
    """
    if dist is None:
        dist = bellman_ford(costs, destination, nodes=topo.nodes)
    successors: dict[NodeId, list[NodeId]] = {}
    for node in topo.nodes:
        if node == destination:
            successors[node] = []
            continue
        own = dist.get(node, float("inf"))
        successors[node] = [
            nbr
            for nbr in topo.neighbors(node)
            if costs.get((node, nbr)) is not None
            and dist.get(nbr, float("inf")) < own
        ]
    return successors


def shortest_successor(
    topo: Topology,
    costs: CostMap,
    destination: NodeId,
    *,
    dist: Mapping[NodeId, float] | None = None,
) -> dict[NodeId, list[NodeId]]:
    """Single best successor per router (the SP baseline's sets).

    The best successor minimizes :math:`D^k_j + l^i_k`; ties break on the
    deterministic node order so all experiments are reproducible.
    """
    if dist is None:
        dist = bellman_ford(costs, destination, nodes=topo.nodes)
    successors: dict[NodeId, list[NodeId]] = {}
    for node in topo.nodes:
        if node == destination:
            successors[node] = []
            continue
        best: NodeId | None = None
        best_val = float("inf")
        for nbr in topo.neighbors(node):
            cost = costs.get((node, nbr))
            if cost is None:
                continue
            via = dist.get(nbr, float("inf")) + cost
            if via < best_val or (via == best_val and repr(nbr) < repr(best)):
                best, best_val = nbr, via
        # Loop-freedom for the single path still requires the neighbor to
        # be strictly closer; with consistent costs the minimizing
        # neighbor always is, unless the destination is unreachable.
        if best is not None and dist.get(best, float("inf")) < dist.get(
            node, float("inf")
        ):
            successors[node] = [best]
        else:
            successors[node] = []
    return successors
