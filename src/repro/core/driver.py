"""Deterministic message-passing driver for protocol routers.

The routers in :mod:`repro.core.pda` / :mod:`repro.core.mpda` are
transport-agnostic: they queue outgoing LSUs on an outbox.  This driver
pumps those messages through a pluggable :class:`~repro.core.transport.
Transport` with a seeded random interleaving across links, so tests can
explore many asynchronous schedules reproducibly.

The default transport, :class:`~repro.core.transport.PerfectChannel`,
supplies the paper's delivery assumptions verbatim — "messages
transmitted over an operational link are received correctly and in the
proper sequence within a finite time and are processed one at a time in
the order received".  Passing a :class:`~repro.core.transport.
FaultyChannel` subjects the protocol to loss / duplication / reordering
/ delay / partitions instead, and wrapping that in a
:class:`~repro.core.transport.ReliableTransport` *enforces* the paper's
assumption over the faulty wire (see :mod:`repro.core.transport`).

The driver can machine-check Theorem 3 (instantaneous loop freedom) after
*every single delivery* via :func:`repro.core.mpda.check_safety`.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping
from time import perf_counter

from repro import obs
from repro.core.linkstate import INFINITY
from repro.core.mpda import MPDARouter, check_safety
from repro.core.pda import PDARouter
from repro.core.transport import PerfectChannel, Transport
from repro.exceptions import ConvergenceError, RoutingError, TopologyError
from repro.graph.shortest_paths import CostMap, dijkstra
from repro.graph.topology import LinkId, NodeId, Topology

RouterFactory = Callable[[NodeId], PDARouter]

#: Sentinel distinguishing "no observation" from "not looked up yet".
_UNSET = object()


class ProtocolDriver:
    """Runs a network of protocol routers to quiescence.

    Args:
        topo: the physical network (control messages travel over its links).
        router_factory: constructor for each router (default MPDA).
        seed: seed for the delivery interleaving.
        check_invariants: when True (and the routers are MPDA), verify the
            LFI safety property after every event.
        transport: the channel model control messages travel through;
            defaults to a fresh :class:`PerfectChannel` (the paper's
            delivery assumption, the historical behavior).
    """

    #: Bound on consecutive clock ticks without a deliverable frame; a
    #: transport that asks for more is wedged (e.g. retransmitting into
    #: a permanent partition) and the run aborts with ConvergenceError.
    MAX_IDLE_TICKS = 10_000

    def __init__(
        self,
        topo: Topology,
        router_factory: RouterFactory = MPDARouter,
        *,
        seed: int = 0,
        check_invariants: bool = False,
        transport: Transport | None = None,
    ) -> None:
        self.topo = topo
        self.routers: dict[NodeId, PDARouter] = {
            node: router_factory(node) for node in topo.nodes
        }
        self.transport = transport if transport is not None else PerfectChannel()
        self.transport.attach([ln.link_id for ln in topo.links()])
        #: The MPDA subset, computed once — the per-event hot path asks
        #: "is this router MPDA?" for every delivery and the safety
        #: checker wants the whole subset; routers never change after
        #: construction.
        self._mpda_routers: dict[NodeId, MPDARouter] = {
            node: router
            for node, router in self.routers.items()
            if isinstance(router, MPDARouter)
        }
        self._rng = random.Random(seed)
        self.check_invariants = check_invariants
        self.delivered = 0
        self._started = False
        #: node -> (perf_counter at ACTIVE entry, deliveries at entry);
        #: feeds the ACTIVE-phase duration histograms when observing.
        self._active_since: dict[NodeId, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # driving events
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run; topology events require it."""
        return self._started

    def start(self, costs: CostMap) -> None:
        """Bring every adjacent link up with its initial cost."""
        if self._started:
            raise RoutingError("driver already started")
        self._started = True
        self._note_disturbance("start", None)
        for node, router in self.routers.items():
            for nbr in self.topo.neighbors(node):
                self._event(
                    router, router.link_up, nbr, self._cost_for(costs, node, nbr)
                )

    def set_costs(self, costs: Mapping[LinkId, float]) -> None:
        """Inject adjacent-link cost changes (e.g. new marginal delays)."""
        self._require_started()
        for (head, tail), cost in costs.items():
            router = self.routers[head]
            if tail not in router.link_costs:
                raise TopologyError(f"link {head!r}->{tail!r} is not up")
            if router.link_costs[tail] == cost:
                continue
            self._note_disturbance("link_cost_change", (head, tail))
            self._event(router, router.link_cost_change, tail, cost)

    def fail_link(self, a: NodeId, b: NodeId) -> None:
        """Fail the duplex link ``a <-> b``, dropping in-flight messages."""
        self._require_started()
        self._require_duplex(a, b)
        self._note_disturbance("link_down", (a, b))
        self.transport.link_down(a, b)
        for head, tail in ((a, b), (b, a)):
            router = self.routers[head]
            if tail in router.link_costs:
                self._event(router, router.link_down, tail)

    def restore_link(
        self, a: NodeId, b: NodeId, cost_ab: float, cost_ba: float
    ) -> None:
        """Bring the duplex link ``a <-> b`` back up."""
        self._require_started()
        self._require_duplex(a, b)
        self._note_disturbance("link_up", (a, b))
        self.transport.link_up(a, b)
        for head, tail, cost in ((a, b, cost_ab), (b, a, cost_ba)):
            self._event(self.routers[head], self.routers[head].link_up, tail, cost)

    # ------------------------------------------------------------------
    # message pump
    # ------------------------------------------------------------------
    def pending_messages(self) -> int:
        """Undelivered transport obligations (frames + unacked data)."""
        return self.transport.pending()

    def step(self, _ob: object = _UNSET) -> bool:
        """Deliver one in-flight frame; False when the network is quiet.

        When nothing is deliverable but the transport still has
        obligations (frames held by delay jitter, unacked data awaiting
        a retransmit timer), the channel clock is ticked until a frame
        becomes deliverable.  A step may deliver zero router messages
        (e.g. a transport-level ACK) and still return True: progress was
        made on the wire.

        ``_ob`` lets :meth:`run` hoist the observation lookup out of the
        delivery loop; direct callers leave it unset.
        """
        transport = self.transport
        busy = transport.busy_links()
        if not busy:
            if not transport.pending():
                return False
            for _ in range(self.MAX_IDLE_TICKS):
                transport.tick()
                busy = transport.busy_links()
                if busy:
                    break
                if not transport.pending():
                    return False
            else:
                raise ConvergenceError(
                    f"transport made no progress in {self.MAX_IDLE_TICKS} "
                    "idle ticks"
                )
        ob = obs.current() if _ob is _UNSET else _ob
        causal = None if ob is None else ob.causal
        link_id = self._rng.choice(busy)
        receiver = self.routers[link_id[1]]
        for message in transport.pop(link_id):
            self.delivered += 1
            if causal is not None:
                ev = causal.deliver(link_id, message.seq, self.delivered)
                if ob.tracer.enabled:
                    ob.tracer.event(
                        "lsu_deliver",
                        time=ob.sim_time,
                        link=link_id,
                        entries=len(message.entries),
                        ack=message.ack,
                        delivered=self.delivered,
                        eid=ev.eid,
                        parent=ev.parent,
                        lamport=ev.lamport,
                    )
            elif ob is not None and ob.tracer.enabled:
                ob.tracer.event(
                    "lsu_deliver",
                    time=ob.sim_time,
                    link=link_id,
                    entries=len(message.entries),
                    ack=message.ack,
                    delivered=self.delivered,
                )
            self._event_ob(receiver, ob, receiver.receive, message)
        return True

    def run(self, max_messages: int = 1_000_000) -> int:
        """Deliver messages until quiescent; returns deliveries made."""
        ob = obs.current()
        done = 0
        started = perf_counter()
        with obs.phase(ob, "protocol.driver.run"):
            while self.step(ob):
                done += 1
                if done > max_messages:
                    raise ConvergenceError(
                        f"protocol did not quiesce within {max_messages} "
                        "messages"
                    )
        if ob is not None:
            self.harvest_metrics(ob.metrics)
            self._note_quiescent(ob, done, perf_counter() - started)
        return done

    def _note_quiescent(self, ob, messages: int, wall_s: float) -> None:
        """Close one convergence window: final audit + trace events."""
        if messages and wall_s > 0:
            ob.metrics.gauge("protocol.deliveries_per_second").set(
                messages / wall_s
            )
        if ob.auditor is not None:
            # The quiescent state is always audited (regardless of the
            # sampling cadence) so every window gets a verdict.
            ob.auditor.audit(
                self.routers, ob, context="quiescent", delivered=self.delivered
            )
        waves = critical = None
        if ob.causal is not None:
            waves, critical = ob.causal.quiesce(self.delivered)
        if not ob.tracer.enabled:
            return
        if waves is None:
            ob.tracer.event(
                "quiescent",
                time=ob.sim_time,
                delivered=self.delivered,
                messages=messages,
                wall_s=wall_s,
            )
        else:
            ob.tracer.event(
                "quiescent",
                time=ob.sim_time,
                delivered=self.delivered,
                messages=messages,
                wall_s=wall_s,
                waves=len(waves),
                orphans=ob.causal.orphans,
            )
        if ob.auditor is not None:
            summary = ob.auditor.summary()
            ob.tracer.event(
                "audit_summary",
                time=ob.sim_time,
                checks=summary["checks"],
                violations=summary["violations"],
                verdict=summary["verdict"],
                delivered=self.delivered,
            )
        if waves:
            for wave in waves:
                ob.tracer.event("wave_span", time=ob.sim_time, **wave)
            if critical is not None:
                ob.tracer.event("critical_path", time=ob.sim_time, **critical)

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------
    def current_costs(self) -> dict[LinkId, float]:
        """The adjacent-link costs as currently measured by the routers."""
        costs: dict[LinkId, float] = {}
        for node, router in self.routers.items():
            for nbr, cost in router.link_costs.items():
                costs[(node, nbr)] = cost
        return costs

    def verify_converged(self) -> None:
        """Assert the liveness theorems against a global oracle.

        Checks Theorem 2 (every router's distances equal true shortest
        distances under the current costs) and, for MPDA routers,
        Theorem 4 (``S_j = {k : D_j^k < D_j^i}`` and ``FD = D``).
        """
        if self.pending_messages():
            raise ConvergenceError("network is not quiescent")
        costs = self.current_costs()
        truth = {
            node: dijkstra(costs, node, nodes=self.topo.nodes)[0]
            for node in self.topo.nodes
        }
        for node, router in self.routers.items():
            for dest in self.topo.nodes:
                if dest == node:
                    continue
                expect = truth[node].get(dest, INFINITY)
                got = router.distance_to(dest)
                if abs(got - expect) > 1e-9 and got != expect:
                    raise ConvergenceError(
                        f"router {node!r}: distance to {dest!r} is {got!r}, "
                        f"oracle says {expect!r}"
                    )
                if isinstance(router, MPDARouter):
                    self._verify_mpda_entry(router, dest, truth, expect)

    def _verify_mpda_entry(self, router, dest, truth, expect) -> None:
        node = router.node_id
        if expect != INFINITY:
            fd = router.feasible_distance.get(dest, INFINITY)
            if abs(fd - expect) > 1e-9:
                raise ConvergenceError(
                    f"router {node!r}: FD to {dest!r} is {fd!r}, distance "
                    f"is {expect!r} (Theorem 4 violated)"
                )
        want = {
            nbr
            for nbr in router.up_neighbors()
            if truth[nbr].get(dest, INFINITY) < expect
        }
        got = router.successors(dest)
        if got != want:
            raise ConvergenceError(
                f"router {node!r}: successors to {dest!r} are "
                f"{sorted(map(repr, got))}, oracle says "
                f"{sorted(map(repr, want))}"
            )

    def message_stats(self) -> dict[str, int]:
        """Aggregate protocol-overhead counters."""
        return {
            "delivered": self.delivered,
            "lsu_sent": sum(r.lsu_sent for r in self.routers.values()),
            "lsu_received": sum(r.lsu_received for r in self.routers.values()),
            "mtu_runs": sum(r.mtu_runs for r in self.routers.values()),
        }

    def harvest_metrics(self, registry) -> None:
        """Copy cumulative per-router protocol counters into gauges.

        Gauges (not counters) because the router-side totals are already
        cumulative — repeated harvests after successive ``run()`` calls
        overwrite rather than double-count.
        """
        registry.gauge("protocol.deliveries").set(self.delivered)
        for name, value in self.transport.stats().items():
            registry.gauge(f"transport.{name}").set(value)
        for node, router in self.routers.items():
            registry.gauge("protocol.lsu_sent", router=node).set(
                router.lsu_sent
            )
            registry.gauge("protocol.lsu_received", router=node).set(
                router.lsu_received
            )
            registry.gauge("protocol.mtu_runs", router=node).set(
                router.mtu_runs
            )
            if isinstance(router, MPDARouter):
                registry.gauge("protocol.transitions", router=node).set(
                    router.transitions
                )
                registry.gauge("protocol.acks_received", router=node).set(
                    router.acks_received
                )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _event(self, router: PDARouter, fn, *args) -> None:
        self._event_ob(router, obs.current(), fn, *args)

    def _event_ob(self, router: PDARouter, ob, fn, *args) -> None:
        """Dispatch one router event, then collect and verify.

        With an observation active, MPDA ACTIVE/PASSIVE transitions are
        detected around the event and fed to the phase histograms,
        distance-vector changes become ``dist_change`` trace events (the
        raw material of per-destination convergence timelines), and the
        online auditor — when attached — samples the post-event state;
        the disabled path adds a single ``None`` check per event.
        """
        if ob is None:
            fn(*args)
            self._collect(router)
            self._maybe_check()
            return
        tracing = ob.tracer.enabled
        causal = ob.causal
        before_dists = (
            dict(router.distances) if tracing or causal is not None else None
        )
        # Successor provenance is the expensive half (a dict copy per
        # event); only MPDA routers have successor sets, and the diff is
        # only observable through the trace — so gate on both.
        track_succ = (
            causal is not None
            and tracing
            and router.node_id in self._mpda_routers
        )
        before_succ = router.successor_snapshot() if track_succ else None
        if router.node_id in self._mpda_routers:
            was_passive = router.is_passive()
            fn(*args)
            if was_passive != router.is_passive():
                self._note_phase_change(ob, router, was_passive)
        else:
            fn(*args)
        if before_dists is not None:
            self._note_dist_changes(ob, router, before_dists, causal, tracing)
        if track_succ:
            self._note_succ_changes(ob, router, before_succ, causal)
        self._collect(router, causal)
        self._maybe_check()
        if causal is not None:
            # Close the current event's processing span here: auditor
            # time below is instrument overhead, not protocol work, and
            # lands in the inter-event gaps (propagation_s).
            causal.touch()
        if ob.auditor is not None:
            ob.auditor.on_event(
                self.routers,
                ob,
                context=getattr(fn, "__name__", "event"),
                delivered=self.delivered,
            )

    def _note_dist_changes(
        self, ob, router: PDARouter, before, causal=None, tracing=True
    ) -> None:
        """Emit one ``dist_change`` event if the event moved distances."""
        after = router.distances
        changed = [
            dest
            for dest in before.keys() | after.keys()
            if before.get(dest) != after.get(dest)
        ]
        if not changed:
            return
        if causal is not None:
            eid = causal.current_eid()
            for dest in changed:
                router.route_provenance[dest] = eid
            if tracing:
                ob.tracer.event(
                    "dist_change",
                    time=ob.sim_time,
                    node=router.node_id,
                    dests=sorted(changed, key=repr),
                    delivered=self.delivered,
                    cause=eid,
                )
            return
        ob.tracer.event(
            "dist_change",
            time=ob.sim_time,
            node=router.node_id,
            dests=sorted(changed, key=repr),
            delivered=self.delivered,
        )

    def _note_succ_changes(self, ob, router, before, causal) -> None:
        """Emit ``succ_change`` + stamp provenance for successor moves."""
        after = router.successor_sets
        changed = [
            dest
            for dest in before.keys() | after.keys()
            if before.get(dest) != after.get(dest)
        ]
        if not changed:
            return
        eid = causal.current_eid()
        for dest in changed:
            router.succ_provenance[dest] = eid
        ob.tracer.event(
            "succ_change",
            time=ob.sim_time,
            node=router.node_id,
            dests=sorted(changed, key=repr),
            delivered=self.delivered,
            cause=eid,
        )

    def _note_disturbance(self, op: str, link) -> None:
        """Mark the start of a convergence window in the trace."""
        ob = obs.current()
        if ob is None:
            return
        if ob.causal is not None:
            eid = ob.causal.open_root(op, link, self.delivered)
            if ob.tracer.enabled:
                ob.tracer.event(
                    "disturbance",
                    time=ob.sim_time,
                    op=op,
                    link=link,
                    delivered=self.delivered,
                    eid=eid,
                )
        elif ob.tracer.enabled:
            ob.tracer.event(
                "disturbance",
                time=ob.sim_time,
                op=op,
                link=link,
                delivered=self.delivered,
            )

    def _note_phase_change(
        self, ob, router: MPDARouter, was_passive: bool
    ) -> None:
        node = router.node_id
        if was_passive:
            self._active_since[node] = (perf_counter(), self.delivered)
            ob.metrics.counter("protocol.active_entries", router=node).inc()
            if ob.tracer.enabled:
                ob.tracer.event(
                    "active_enter",
                    time=ob.sim_time,
                    node=node,
                    delivered=self.delivered,
                )
        else:
            started = self._active_since.pop(node, None)
            if started is None:
                return  # entered ACTIVE before observation began
            elapsed = perf_counter() - started[0]
            messages = self.delivered - started[1]
            ob.metrics.histogram(
                "protocol.active_phase_seconds", router=node
            ).observe(elapsed)
            ob.metrics.histogram(
                "protocol.active_phase_messages", router=node
            ).observe(messages)
            if ob.tracer.enabled:
                ob.tracer.event(
                    "active_exit",
                    time=ob.sim_time,
                    node=node,
                    wall_s=elapsed,
                    messages=messages,
                )

    def _collect(self, router: PDARouter, causal=None) -> None:
        """Move a router's outbox into the transport."""
        for nbr, message in router.outbox:
            link_id = (router.node_id, nbr)
            if self.transport.has_link(link_id) and nbr in router.link_costs:
                if causal is not None:
                    causal.sent(message.seq)
                self.transport.send(link_id, message)
        router.outbox.clear()

    def _maybe_check(self) -> None:
        if not self.check_invariants:
            return
        if self._mpda_routers:
            check_safety(self._mpda_routers)

    def _require_started(self) -> None:
        if not self._started:
            raise RoutingError("driver not started; call start() first")

    def _require_duplex(self, a: NodeId, b: NodeId) -> None:
        if not (self.topo.has_link(a, b) and self.topo.has_link(b, a)):
            raise TopologyError(
                f"no duplex link {a!r} <-> {b!r} in {self.topo.name!r}"
            )

    @staticmethod
    def _cost_for(costs: CostMap, head: NodeId, tail: NodeId) -> float:
        try:
            return costs[(head, tail)]
        except KeyError:
            raise TopologyError(f"no initial cost for {head!r}->{tail!r}")
