"""Routing parameters and the paper's flow-allocation heuristics.

Once MPDA hands a router the successor set :math:`S^i_j`, traffic for
destination *j* is split over it with routing parameters
:math:`\\phi^i_{jk}` (Eq. 15).  The paper gives two heuristics:

**IH** (initial heuristic, Fig. 6) runs whenever the successor set
changes and distributes traffic inversely to the marginal distance
through each successor:

.. math::

   \\phi_{jk} = \\frac{1 - (D^i_{jk} + l^i_k) / \\sum_{m \\in S}
   (D^i_{jm} + l^i_m)}{|S^i_j| - 1}

**AH** (adjustment heuristic, Fig. 7) runs every short interval ``Ts``
and incrementally moves traffic from successors with large marginal
distance to the best successor, by an amount proportional to the excess
:math:`a_{jk} = (D_{jk} + l_k) - D^{min}_j`, scaled so that no parameter
goes negative:

.. math::

   \\eta = \\min\\{\\phi_{jk} / a_{jk} : k \\in S, a_{jk} \\ne 0\\},\\quad
   \\phi_{jk} \\mathrel{-}= \\eta\\, a_{jk} \\;(k \\ne k_0),\\quad
   \\phi_{jk_0} \\mathrel{+}= \\textstyle\\sum_q \\eta\\, a_{jq}.

Both preserve **Property 1** at every instant: parameters are
non-negative, zero off the successor set, and sum to one.  AH drives the
allocation toward the perfect-load-balancing conditions (Eqs. 10-12):
its fixed points are exactly the allocations whose in-use successors all
have equal, minimal marginal distance.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import AllocationError
from repro.graph.topology import NodeId

#: Marginal-distance differences below this (seconds) are treated as ties.
DISTANCE_EPSILON = 1e-15

#: Routing parameters below this are a drained successor's fp residue.
PHI_EPSILON = 1e-15


def ih(distance_via: Mapping[NodeId, float]) -> dict[NodeId, float]:
    """Initial load assignment over a fresh successor set (Fig. 6).

    Args:
        distance_via: for each successor *k*, the marginal distance
            through it, :math:`D^i_{jk} + l^i_k`.  Must be non-empty.

    Returns:
        Routing parameters over exactly the given successors.
    """
    if not distance_via:
        raise AllocationError("IH needs a non-empty successor set")
    for k, d in distance_via.items():
        if d < 0 or d != d:  # negative or NaN
            raise AllocationError(f"invalid marginal distance via {k!r}: {d!r}")
    if len(distance_via) == 1:
        (only,) = distance_via
        return {only: 1.0}
    total = sum(distance_via.values())
    n = len(distance_via)
    if total <= 0.0:
        # All distances zero: nothing distinguishes the successors.
        return {k: 1.0 / n for k in distance_via}
    return {
        k: (1.0 - d / total) / (n - 1) for k, d in distance_via.items()
    }


def ah(
    phi: Mapping[NodeId, float],
    distance_via: Mapping[NodeId, float],
    *,
    damping: float = 1.0,
) -> dict[NodeId, float]:
    """Incremental load adjustment (Fig. 7).

    Args:
        phi: current routing parameters over the successor set.
        distance_via: marginal distance through each successor (same key
            set as ``phi``).
        damping: fraction of the paper's step to take; 1.0 is the paper's
            heuristic, smaller values are available for ablation studies.

    Returns:
        Adjusted parameters; traffic moves from costlier successors to
        the single best successor :math:`k_0`.
    """
    if set(phi) != set(distance_via):
        raise AllocationError(
            f"phi keys {sorted(map(repr, phi))} do not match distance keys "
            f"{sorted(map(repr, distance_via))}"
        )
    if not phi:
        raise AllocationError("AH needs a non-empty successor set")
    if not 0.0 < damping <= 1.0:
        raise AllocationError(f"damping must be in (0, 1]: {damping!r}")
    if len(phi) == 1:
        (only,) = phi
        return {only: 1.0}

    d_min = min(distance_via.values())
    best = min(
        (k for k in distance_via if distance_via[k] <= d_min + DISTANCE_EPSILON),
        key=repr,
    )
    excess = {k: max(distance_via[k] - d_min, 0.0) for k in distance_via}

    # The step size is the largest eta for which no parameter goes
    # negative.  Successors already at zero contribute nothing to move,
    # so they must not pin eta at zero (the paper's min is over the
    # successors actually carrying traffic).
    ratios = [
        phi[k] / excess[k]
        for k in phi
        if k != best and excess[k] > DISTANCE_EPSILON and phi[k] > 0.0
    ]
    if not ratios:
        return dict(phi)  # nothing movable: at a fixed point
    eta = damping * min(ratios)

    adjusted = {}
    moved = 0.0
    for k in phi:
        if k == best:
            continue
        delta = min(eta * excess[k], phi[k])  # guard fp rounding
        remaining = phi[k] - delta
        if remaining < PHI_EPSILON:
            # Snap the drained successor to exactly zero: a denormal
            # residue would pass the phi > 0 guard above and pin eta
            # near zero on every later step, stalling the adjustment.
            delta, remaining = phi[k], 0.0
        adjusted[k] = remaining
        moved += delta
    adjusted[best] = phi[best] + moved
    return adjusted


def validate_property1(
    phi: Mapping[NodeId, float],
    successors: Iterable[NodeId],
    *,
    tolerance: float = 1e-9,
) -> None:
    """Assert Property 1 of the paper for one (router, destination) pair.

    Parameters must be non-negative, restricted to the successor set, and
    sum to one (or be entirely empty when the router carries no traffic).
    """
    allowed = set(successors)
    total = 0.0
    for k, fraction in phi.items():
        if fraction < -tolerance:
            raise AllocationError(f"phi[{k!r}] = {fraction!r} < 0")
        if fraction > tolerance and k not in allowed:
            raise AllocationError(
                f"phi[{k!r}] = {fraction!r} but {k!r} is not a successor"
            )
        total += fraction
    if phi and abs(total - 1.0) > tolerance:
        raise AllocationError(f"phi sums to {total!r}, expected 1")


class AllocationTable:
    """Per-router routing parameters for every destination.

    Tracks the successor set used for each destination; when it changes,
    the next update re-runs IH ("when :math:`S^i_j` is computed for the
    first time or recomputed again due to long-term route changes, traffic
    should be freshly distributed"), otherwise AH adjusts incrementally.
    """

    def __init__(self, router: NodeId, *, damping: float = 1.0) -> None:
        self.router = router
        self.damping = damping
        self._phi: dict[NodeId, dict[NodeId, float]] = {}
        self._successors: dict[NodeId, frozenset[NodeId]] = {}

    def update(
        self,
        destination: NodeId,
        distance_via: Mapping[NodeId, float],
    ) -> dict[NodeId, float]:
        """Refresh parameters for ``destination``.

        Args:
            distance_via: marginal distance through each *current*
                successor.  An empty mapping clears the entry (no route).

        Returns:
            The new parameters (also stored).
        """
        successors = frozenset(distance_via)
        if not successors:
            self._phi.pop(destination, None)
            self._successors.pop(destination, None)
            return {}
        if self._successors.get(destination) != successors:
            phi = ih(distance_via)
        else:
            phi = ah(
                self._phi[destination], distance_via, damping=self.damping
            )
        validate_property1(phi, successors)
        self._phi[destination] = phi
        self._successors[destination] = successors
        return dict(phi)

    def reset(
        self, destination: NodeId, distance_via: Mapping[NodeId, float]
    ) -> dict[NodeId, float]:
        """Force a fresh IH distribution regardless of set changes."""
        self._successors.pop(destination, None)
        return self.update(destination, distance_via)

    def fractions(self, destination: NodeId) -> dict[NodeId, float]:
        """Current parameters toward ``destination`` (empty if none)."""
        return dict(self._phi.get(destination, {}))

    def destinations(self) -> list[NodeId]:
        return list(self._phi)

    def as_phi(self) -> dict[NodeId, dict[NodeId, float]]:
        """This router's slice of the global phi mapping."""
        return {dest: dict(frac) for dest, frac in self._phi.items()}
