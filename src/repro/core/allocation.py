"""Routing parameters and the paper's flow-allocation heuristics.

Once MPDA hands a router the successor set :math:`S^i_j`, traffic for
destination *j* is split over it with routing parameters
:math:`\\phi^i_{jk}` (Eq. 15).  The paper gives two heuristics:

**IH** (initial heuristic, Fig. 6) runs whenever the successor set
changes and distributes traffic inversely to the marginal distance
through each successor:

.. math::

   \\phi_{jk} = \\frac{1 - (D^i_{jk} + l^i_k) / \\sum_{m \\in S}
   (D^i_{jm} + l^i_m)}{|S^i_j| - 1}

**AH** (adjustment heuristic, Fig. 7) runs every short interval ``Ts``
and incrementally moves traffic from successors with large marginal
distance to the best successor, by an amount proportional to the excess
:math:`a_{jk} = (D_{jk} + l_k) - D^{min}_j`, scaled so that no parameter
goes negative:

.. math::

   \\eta = \\min\\{\\phi_{jk} / a_{jk} : k \\in S, a_{jk} \\ne 0\\},\\quad
   \\phi_{jk} \\mathrel{-}= \\eta\\, a_{jk} \\;(k \\ne k_0),\\quad
   \\phi_{jk_0} \\mathrel{+}= \\textstyle\\sum_q \\eta\\, a_{jq}.

Both preserve **Property 1** at every instant: parameters are
non-negative, zero off the successor set, and sum to one.  AH drives the
allocation toward the perfect-load-balancing conditions (Eqs. 10-12):
its fixed points are exactly the allocations whose in-use successors all
have equal, minimal marginal distance.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import AllocationError
from repro.graph.topology import NodeId

#: Marginal-distance differences below this (seconds) are treated as ties.
DISTANCE_EPSILON = 1e-15

#: Routing parameters below this are a drained successor's fp residue.
PHI_EPSILON = 1e-15


def ih(distance_via: Mapping[NodeId, float]) -> dict[NodeId, float]:
    """Initial load assignment over a fresh successor set (Fig. 6).

    Args:
        distance_via: for each successor *k*, the marginal distance
            through it, :math:`D^i_{jk} + l^i_k`.  Must be non-empty.

    Returns:
        Routing parameters over exactly the given successors.
    """
    if not distance_via:
        raise AllocationError("IH needs a non-empty successor set")
    for k, d in distance_via.items():
        if d < 0 or d != d:  # negative or NaN
            raise AllocationError(f"invalid marginal distance via {k!r}: {d!r}")
    if len(distance_via) == 1:
        (only,) = distance_via
        return {only: 1.0}
    total = sum(distance_via.values())
    n = len(distance_via)
    if total <= 0.0:
        # All distances zero: nothing distinguishes the successors.
        return {k: 1.0 / n for k in distance_via}
    return {
        k: (1.0 - d / total) / (n - 1) for k, d in distance_via.items()
    }


def _best_successor(
    distance_via: Mapping[NodeId, float], d_min: float
) -> NodeId:
    """The single best successor :math:`k_0`: minimal marginal distance,
    ties broken by natural node order (falling back to ``repr`` only for
    mixed-type node ids, which do not define ``<``).  Natural order keeps
    the choice stable under renumbering — ``repr`` would sort node 10
    ahead of node 2.
    """
    ties = [
        k for k in distance_via if distance_via[k] <= d_min + DISTANCE_EPSILON
    ]
    try:
        return min(ties)
    except TypeError:
        return min(ties, key=repr)


def ah(
    phi: Mapping[NodeId, float],
    distance_via: Mapping[NodeId, float],
    *,
    damping: float = 1.0,
) -> dict[NodeId, float]:
    """Incremental load adjustment (Fig. 7).

    Args:
        phi: current routing parameters over the successor set.
        distance_via: marginal distance through each successor (same key
            set as ``phi``).
        damping: fraction of the paper's step to take; 1.0 is the paper's
            heuristic, smaller values are available for ablation studies.

    Returns:
        Adjusted parameters; traffic moves from costlier successors to
        the single best successor :math:`k_0`.
    """
    if set(phi) != set(distance_via):
        raise AllocationError(
            f"phi keys {sorted(map(repr, phi))} do not match distance keys "
            f"{sorted(map(repr, distance_via))}"
        )
    if not phi:
        raise AllocationError("AH needs a non-empty successor set")
    if not 0.0 < damping <= 1.0:
        raise AllocationError(f"damping must be in (0, 1]: {damping!r}")
    if len(phi) == 1:
        (only,) = phi
        return {only: 1.0}

    d_min = min(distance_via.values())
    best = _best_successor(distance_via, d_min)
    excess = {k: max(distance_via[k] - d_min, 0.0) for k in distance_via}

    # The step size is the largest eta for which no parameter goes
    # negative.  Successors already at zero contribute nothing to move,
    # so they must not pin eta at zero (the paper's min is over the
    # successors actually carrying traffic).
    ratios = [
        phi[k] / excess[k]
        for k in phi
        if k != best and excess[k] > DISTANCE_EPSILON and phi[k] > 0.0
    ]
    if not ratios:
        return dict(phi)  # nothing movable: at a fixed point
    eta = damping * min(ratios)

    adjusted = {}
    moved = 0.0
    for k in phi:
        if k == best:
            continue
        delta = min(eta * excess[k], phi[k])  # guard fp rounding
        remaining = phi[k] - delta
        if remaining < PHI_EPSILON:
            # Snap the drained successor to exactly zero: a denormal
            # residue would pass the phi > 0 guard above and pin eta
            # near zero on every later step, stalling the adjustment.
            delta, remaining = phi[k], 0.0
        adjusted[k] = remaining
        moved += delta
    adjusted[best] = phi[best] + moved
    return adjusted


def ih_batch(
    rows: list[Mapping[NodeId, float]],
) -> list[dict[NodeId, float]]:
    """Vectorized :func:`ih` over many (router, destination) rows.

    Bit-for-bit equal to calling :func:`ih` on each row: the per-row
    total is accumulated column by column (the same left-to-right
    addition order as the scalar ``sum``), and the result dicts keep
    each row's key order.  Rows are grouped by successor-set width so
    every numpy operation works on a dense matrix.
    """
    import numpy as np

    results: list[dict[NodeId, float] | None] = [None] * len(rows)
    by_width: dict[int, list[int]] = {}
    for i, row in enumerate(rows):
        if not row:
            raise AllocationError("IH needs a non-empty successor set")
        n = len(row)
        if n == 1:
            (only,) = row
            d = row[only]
            if d < 0 or d != d:
                raise AllocationError(
                    f"invalid marginal distance via {only!r}: {d!r}"
                )
            results[i] = {only: 1.0}
        else:
            by_width.setdefault(n, []).append(i)
    for n, idxs in by_width.items():
        keys = [list(rows[i]) for i in idxs]
        mat = np.array([list(rows[i].values()) for i in idxs], dtype=float)
        if np.isnan(mat).any() or (mat < 0).any():
            for i in idxs:  # re-run scalar for the exact error message
                ih(rows[i])
        total = mat[:, 0].copy()
        for col in range(1, n):
            total += mat[:, col]
        uniform = total <= 0.0
        safe_total = np.where(uniform, 1.0, total)
        phi = (1.0 - mat / safe_total[:, None]) / (n - 1)
        phi[uniform] = 1.0 / n
        for out_row, i, row_keys in zip(phi, idxs, keys):
            results[i] = dict(zip(row_keys, out_row.tolist()))
    return results  # type: ignore[return-value]


def ah_batch(
    phis: list[Mapping[NodeId, float]],
    rows: list[Mapping[NodeId, float]],
    *,
    damping: float = 1.0,
) -> list[dict[NodeId, float]]:
    """Vectorized :func:`ah` over many (router, destination) rows.

    ``phis[i]`` and ``rows[i]`` are one scalar-``ah`` call.  Exactness
    notes: the moved-traffic total is folded column by column in each
    row's phi order with the best successor contributing an exact 0.0
    (adding +0.0 to a non-negative partial sum is exact), so every
    float matches the scalar loop; result dicts list the non-best
    successors in phi order and the best successor last, as the scalar
    code does.
    """
    import numpy as np

    if len(phis) != len(rows):
        raise AllocationError("phis and rows must have equal length")
    if not 0.0 < damping <= 1.0:
        raise AllocationError(f"damping must be in (0, 1]: {damping!r}")
    results: list[dict[NodeId, float] | None] = [None] * len(phis)
    by_width: dict[int, list[int]] = {}
    for i, (phi, row) in enumerate(zip(phis, rows)):
        if set(phi) != set(row):
            raise AllocationError(
                f"phi keys {sorted(map(repr, phi))} do not match distance "
                f"keys {sorted(map(repr, row))}"
            )
        if not phi:
            raise AllocationError("AH needs a non-empty successor set")
        if len(phi) == 1:
            (only,) = phi
            results[i] = {only: 1.0}
        else:
            by_width.setdefault(len(phi), []).append(i)
    for n, idxs in by_width.items():
        keys = [list(phis[i]) for i in idxs]
        phi_mat = np.array(
            [list(phis[i].values()) for i in idxs], dtype=float
        )
        dist_mat = np.array(
            [[rows[i][k] for k in row_keys] for i, row_keys in zip(idxs, keys)],
            dtype=float,
        )
        d_min = dist_mat.min(axis=1)
        best_col = np.fromiter(
            (
                row_keys.index(_best_successor(rows[i], dm))
                for i, row_keys, dm in zip(idxs, keys, d_min.tolist())
            ),
            dtype=int,
            count=len(idxs),
        )
        excess = np.maximum(dist_mat - d_min[:, None], 0.0)
        cols = np.arange(n)
        is_best = cols[None, :] == best_col[:, None]
        movable = (
            ~is_best & (excess > DISTANCE_EPSILON) & (phi_mat > 0.0)
        )
        # Non-movable cells may divide by zero or overflow to inf;
        # the where() mask discards them all.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ratios = np.where(movable, phi_mat / excess, np.inf)
        fixed_point = ~movable.any(axis=1)
        eta = damping * np.where(fixed_point, 0.0, ratios.min(axis=1))
        delta = np.minimum(eta[:, None] * excess, phi_mat)
        remaining = phi_mat - delta
        snap = remaining < PHI_EPSILON
        delta = np.where(snap, phi_mat, delta)
        remaining = np.where(snap, 0.0, remaining)
        delta = np.where(is_best, 0.0, delta)
        moved = delta[:, 0].copy()
        for col in range(1, n):
            moved += delta[:, col]
        for r, i in enumerate(idxs):
            if fixed_point[r]:
                results[i] = dict(phis[i])
                continue
            row_keys = keys[r]
            b = best_col[r]
            out = {
                k: remaining[r, c].item()
                for c, k in enumerate(row_keys)
                if c != b
            }
            out[row_keys[b]] = (phi_mat[r, b] + moved[r]).item()
            results[i] = out
    return results  # type: ignore[return-value]


def validate_property1(
    phi: Mapping[NodeId, float],
    successors: Iterable[NodeId],
    *,
    tolerance: float = 1e-9,
) -> None:
    """Assert Property 1 of the paper for one (router, destination) pair.

    Parameters must be non-negative, restricted to the successor set, and
    sum to one (or be entirely empty when the router carries no traffic).
    """
    allowed = set(successors)
    total = 0.0
    for k, fraction in phi.items():
        if fraction < -tolerance:
            raise AllocationError(f"phi[{k!r}] = {fraction!r} < 0")
        if fraction > tolerance and k not in allowed:
            raise AllocationError(
                f"phi[{k!r}] = {fraction!r} but {k!r} is not a successor"
            )
        total += fraction
    if phi and abs(total - 1.0) > tolerance:
        raise AllocationError(f"phi sums to {total!r}, expected 1")


class AllocationTable:
    """Per-router routing parameters for every destination.

    Tracks the successor set used for each destination; when it changes,
    the next update re-runs IH ("when :math:`S^i_j` is computed for the
    first time or recomputed again due to long-term route changes, traffic
    should be freshly distributed"), otherwise AH adjusts incrementally.
    """

    def __init__(self, router: NodeId, *, damping: float = 1.0) -> None:
        self.router = router
        self.damping = damping
        self._phi: dict[NodeId, dict[NodeId, float]] = {}
        self._successors: dict[NodeId, frozenset[NodeId]] = {}

    def update(
        self,
        destination: NodeId,
        distance_via: Mapping[NodeId, float],
    ) -> dict[NodeId, float]:
        """Refresh parameters for ``destination``.

        Args:
            distance_via: marginal distance through each *current*
                successor.  An empty mapping clears the entry (no route).

        Returns:
            The new parameters (also stored).
        """
        successors = frozenset(distance_via)
        if not successors:
            self._phi.pop(destination, None)
            self._successors.pop(destination, None)
            return {}
        if self._successors.get(destination) != successors:
            phi = ih(distance_via)
        else:
            phi = ah(
                self._phi[destination], distance_via, damping=self.damping
            )
        validate_property1(phi, successors)
        self._phi[destination] = phi
        self._successors[destination] = successors
        return dict(phi)

    def update_many(
        self,
        updates: list[tuple[NodeId, Mapping[NodeId, float]]],
    ) -> None:
        """Batched :meth:`update` over many destinations.

        Partitions the updates into IH rows (successor set changed) and
        AH rows (set unchanged) and runs each group through the
        vectorized heuristics.  State after the call is identical to
        calling :meth:`update` once per pair in order: the partition
        only depends on per-destination state, and destinations are
        unique within one routing pass.
        """
        ih_rows: list[tuple[NodeId, Mapping[NodeId, float]]] = []
        ah_rows: list[tuple[NodeId, Mapping[NodeId, float]]] = []
        for destination, distance_via in updates:
            if not distance_via:
                self._phi.pop(destination, None)
                self._successors.pop(destination, None)
            elif self._successors.get(destination) != frozenset(distance_via):
                ih_rows.append((destination, distance_via))
            else:
                ah_rows.append((destination, distance_via))
        new_phi: dict[NodeId, dict[NodeId, float]] = {}
        if ih_rows:
            new_phi.update(
                zip(
                    (dest for dest, _ in ih_rows),
                    ih_batch([row for _, row in ih_rows]),
                )
            )
        if ah_rows:
            new_phi.update(
                zip(
                    (dest for dest, _ in ah_rows),
                    ah_batch(
                        [self._phi[dest] for dest, _ in ah_rows],
                        [row for _, row in ah_rows],
                        damping=self.damping,
                    ),
                )
            )
        # Install in the caller's order so _phi's insertion order — and
        # with it every downstream iteration — matches the scalar loop.
        for destination, distance_via in updates:
            phi = new_phi.get(destination)
            if phi is None:
                continue
            successors = frozenset(distance_via)
            validate_property1(phi, successors)
            self._phi[destination] = phi
            self._successors[destination] = successors

    def reset(
        self, destination: NodeId, distance_via: Mapping[NodeId, float]
    ) -> dict[NodeId, float]:
        """Force a fresh IH distribution regardless of set changes."""
        self._successors.pop(destination, None)
        return self.update(destination, distance_via)

    def fractions(self, destination: NodeId) -> dict[NodeId, float]:
        """Current parameters toward ``destination`` (empty if none)."""
        return dict(self._phi.get(destination, {}))

    def destinations(self) -> list[NodeId]:
        return list(self._phi)

    def as_phi(self) -> dict[NodeId, dict[NodeId, float]]:
        """This router's slice of the global phi mapping."""
        return {dest: dict(frac) for dest, frac in self._phi.items()}
