"""Marginal-delay link-cost estimators (Section 4.3 of the paper).

The cost of a link is its *marginal delay* :math:`D'(f)`.  The paper
offers two routes to it and stresses that its framework "does not depend
on which specific technique is used for marginal-delay estimation":

1. the closed-form M/M/1 expression obtained by differentiating Eq. (24)
   — :class:`MM1CostEstimator`;
2. an on-line estimator needing *no a-priori knowledge of link capacity*
   (the paper borrows a perturbation-analysis technique from Cassandras,
   Abidi & Towsley).  :class:`OnlineCostEstimator` fills that role here:
   it fits, with exponential forgetting, the local slope of the measured
   per-unit delay against the measured flow, giving
   :math:`\\widehat{D'}(f) = \\bar w + \\bar f \\cdot
   \\widehat{dw/df}` — the product-rule expansion of
   :math:`d(f\\,w(f))/df` — from measurements alone.  See DESIGN.md §4
   for the substitution rationale.

Both estimators consume periodic measurements ``(flow, per-unit delay)``
taken over an interval (the short interval ``Ts`` for allocation, the
long interval ``Tl`` for path recomputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CapacityError
from repro.fluid.delay import DEFAULT_RHO_MAX, MM1Delay


@dataclass
class Measurement:
    """One measurement window of a link.

    Attributes:
        flow: average flow through the link over the window, packets/s.
        per_unit_delay: average delay per unit of traffic (seconds) —
            queueing plus transmission plus propagation.
    """

    flow: float
    per_unit_delay: float

    def __post_init__(self) -> None:
        if self.flow < 0:
            raise CapacityError(f"negative measured flow: {self.flow!r}")
        if self.per_unit_delay < 0:
            raise CapacityError(
                f"negative measured delay: {self.per_unit_delay!r}"
            )


class MM1CostEstimator:
    """Closed-form marginal delay assuming the link is an M/M/1 queue.

    Requires the link capacity (the paper's main criticism of this
    estimator) but is exact under the fluid model, so it is the default
    for reproducing the figures.
    """

    def __init__(
        self,
        capacity: float,
        prop_delay: float = 0.0,
        rho_max: float = DEFAULT_RHO_MAX,
    ) -> None:
        self._law = MM1Delay(capacity, prop_delay, rho_max)
        self._cost = self._law.marginal(0.0)

    def observe(self, measurement: Measurement) -> float:
        """Ingest one window and return the updated cost."""
        self._cost = self._law.marginal(measurement.flow)
        return self._cost

    @property
    def cost(self) -> float:
        """Latest marginal-delay estimate (seconds per unit of flow)."""
        return self._cost


@dataclass
class OnlineCostEstimator:
    """Capacity-free marginal-delay estimator.

    Maintains exponentially-forgotten least-squares statistics of the
    measured per-unit delay ``w`` versus the measured flow ``f`` and
    reports :math:`\\bar w + \\bar f \\cdot \\text{slope}`.  Because the
    delay law is convex and increasing, the marginal delay can never be
    below the current per-unit delay; the estimate is clamped accordingly,
    which also rides out regression noise when the flow barely varies.

    Attributes:
        forgetting: per-window retention factor in (0, 1]; smaller values
            track bursty traffic faster at the price of noisier slopes.
        slope_floor: minimum accepted regression denominator (flow
            variance); below it the slope is treated as unknown.
    """

    forgetting: float = 0.9
    slope_floor: float = 1e-12
    _n: float = field(default=0.0, repr=False)
    _sf: float = field(default=0.0, repr=False)
    _sw: float = field(default=0.0, repr=False)
    _sff: float = field(default=0.0, repr=False)
    _sfw: float = field(default=0.0, repr=False)
    _cost: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.forgetting <= 1.0:
            raise CapacityError(
                f"forgetting factor must be in (0, 1]: {self.forgetting!r}"
            )

    def observe(self, measurement: Measurement) -> float:
        """Ingest one window and return the updated cost."""
        lam = self.forgetting
        f, w = measurement.flow, measurement.per_unit_delay
        self._n = lam * self._n + 1.0
        self._sf = lam * self._sf + f
        self._sw = lam * self._sw + w
        self._sff = lam * self._sff + f * f
        self._sfw = lam * self._sfw + f * w

        mean_f = self._sf / self._n
        mean_w = self._sw / self._n
        var_f = self._sff / self._n - mean_f * mean_f
        if var_f > self.slope_floor:
            cov_fw = self._sfw / self._n - mean_f * mean_w
            slope = max(cov_fw / var_f, 0.0)  # delay never falls with flow
        else:
            slope = 0.0
        self._cost = max(mean_w + mean_f * slope, w)
        return self._cost

    @property
    def cost(self) -> float:
        """Latest marginal-delay estimate (seconds per unit of flow)."""
        return self._cost
