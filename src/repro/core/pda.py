"""PDA — the Partial-topology Dissemination Algorithm (Figs. 1-3).

Each router maintains its own shortest-path tree ``T_i`` (the *main
topology table*) and a per-neighbor table ``T_k_i``, a time-delayed copy
of neighbor *k*'s tree.  On every event (an LSU from a neighbor, or an
adjacent-link change) the router runs:

- **NTU** (Neighbor Topology-table Update, Fig. 2): apply the LSU to the
  neighbor's table and recompute that neighbor's distances by running
  Dijkstra rooted at the neighbor;
- **MTU** (Main Topology-table Update, Fig. 3): merge the neighbor trees —
  for each known node *j*, copy *j*'s outgoing links from the *preferred
  neighbor* ``p`` minimizing :math:`D^i_{jp} + l^i_p` (conflicts between
  neighbors are resolved by distance to the head of the link, not by
  sequence numbers), override adjacent links with locally measured costs,
  run Dijkstra, and keep only the tree.  Differences from the previous
  tree are flooded to the neighbors as LSU entries.

PDA converges to correct shortest paths a finite time after the last
change (Theorem 2, proved via n-hop minimum trees).  Routers here are
transport-agnostic: outgoing messages accumulate in ``outbox`` and a
driver (:mod:`repro.core.driver` or the packet simulator) delivers them.
"""

from __future__ import annotations

import itertools

from repro.core.linkstate import INFINITY, LSUMessage, TopologyTable
from repro.exceptions import RoutingError
from repro.graph.shortest_paths import dijkstra_tree
from repro.graph.topology import NodeId

#: Process-wide router identities.  ``id()`` would be ambiguous here:
#: sequential experiments create and drop whole router populations, and
#: a recycled address must not alias a stale entry in an auditor's
#: incremental cache.
_uid_counter = itertools.count(1)


class PDARouter:
    """One router running PDA.

    Public event entry points (each may queue messages on ``outbox``):

    - :meth:`link_up` — an adjacent link came up (or a router boots and
      discovers its neighbor);
    - :meth:`link_cost_change` — the measured cost of an adjacent link
      changed (this is how marginal-delay updates enter the protocol);
    - :meth:`link_down` — an adjacent link failed;
    - :meth:`receive` — an LSU message arrived from a neighbor.

    Attributes:
        outbox: queued ``(neighbor, LSUMessage)`` pairs for the driver.
        mtu_runs / lsu_sent / lsu_received: protocol statistics.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        #: Stable identity for observers' caches (see module comment).
        self._uid = next(_uid_counter)
        #: Bumped after every processed event; observers (the invariant
        #: auditor) use it to tell which routers may have changed state
        #: since they last looked.
        self.route_version = 0
        self.main_table = TopologyTable()
        self.neighbor_tables: dict[NodeId, TopologyTable] = {}
        self.link_costs: dict[NodeId, float] = {}
        self.distances: dict[NodeId, float] = {}
        #: nbr_distances[k][j] = D^i_jk, distance k -> j in this router's
        #: copy of k's topology (NTU step 1c).
        self.nbr_distances: dict[NodeId, dict[NodeId, float]] = {}
        self.outbox: list[tuple[NodeId, LSUMessage]] = []
        self.mtu_runs = 0
        self.lsu_sent = 0
        self.lsu_received = 0
        self.entries_sent = 0

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def link_up(self, neighbor: NodeId, cost: float) -> None:
        """Adjacent link to ``neighbor`` came up with measured cost ``cost``."""
        self._check_cost(neighbor, cost)
        self.link_costs[neighbor] = cost
        self.neighbor_tables.setdefault(neighbor, TopologyTable())
        self.nbr_distances.setdefault(neighbor, {neighbor: 0.0})
        self._greet(neighbor)
        self._after_ntu(lsu_sender=None)

    def _greet(self, neighbor: NodeId) -> None:
        """NTU step 2: greet a new neighbor with the full main table."""
        dump = self.main_table.full_dump()
        if dump:
            self._send(neighbor, LSUMessage(self.node_id, dump))

    def link_cost_change(self, neighbor: NodeId, cost: float) -> None:
        """The measured cost of the adjacent link changed (NTU step 3)."""
        self._check_cost(neighbor, cost)
        if neighbor not in self.link_costs:
            raise RoutingError(
                f"{self.node_id!r}: cost change for unknown link to "
                f"{neighbor!r}"
            )
        self.link_costs[neighbor] = cost
        self._after_ntu(lsu_sender=None)

    def link_down(self, neighbor: NodeId) -> None:
        """Adjacent link failed (NTU step 4): clear the neighbor's table."""
        self.link_costs.pop(neighbor, None)
        self.neighbor_tables.pop(neighbor, None)
        self.nbr_distances.pop(neighbor, None)
        self._after_ntu(lsu_sender=None)

    def receive(self, message: LSUMessage) -> None:
        """An LSU arrived from a (current) neighbor."""
        sender = message.sender
        self.lsu_received += 1
        if sender not in self.link_costs:
            # Stale message from a link that has since failed; the paper's
            # delivery assumptions make this impossible, but drivers that
            # inject failures may race — drop it.
            return
        self._ntu_apply_lsu(message)
        self._after_ntu(lsu_sender=sender)

    # ------------------------------------------------------------------
    # NTU / MTU internals
    # ------------------------------------------------------------------
    def _ntu_apply_lsu(self, message: LSUMessage) -> None:
        """NTU step 1: apply entries and recompute the sender's distances."""
        sender = message.sender
        table = self.neighbor_tables.setdefault(sender, TopologyTable())
        table.apply(message.entries)
        self.nbr_distances[sender] = table.distances_from(sender)
        self.nbr_distances[sender].setdefault(sender, 0.0)

    def _after_ntu(self, lsu_sender: NodeId | None) -> None:
        """The tail of procedure PDA: MTU, then flood any differences."""
        self.route_version += 1
        changes = self._mtu()
        if changes:
            self._broadcast(changes)

    def _universe(self) -> list[NodeId]:
        """Every node this router has heard of."""
        known: dict[NodeId, None] = {self.node_id: None}
        for nbr in self.link_costs:
            known[nbr] = None
        for table in self.neighbor_tables.values():
            for node in table.nodes():
                known[node] = None
        return list(known)

    def _mtu(self):
        """MTU (Fig. 3): rebuild the main table; return the LSU diff."""
        self.mtu_runs += 1
        old = self.main_table
        universe = self._universe()

        # Steps 3-4: preferred neighbor per head node, copy its links.
        candidate: dict[tuple[NodeId, NodeId], float] = {}
        up = [n for n in self.link_costs if self.link_costs[n] < INFINITY]
        for j in universe:
            if j == self.node_id:
                continue
            best: NodeId | None = None
            best_val = INFINITY
            for k in up:
                dist_kj = self.nbr_distances.get(k, {}).get(j, INFINITY)
                val = dist_kj + self.link_costs[k]
                if val < best_val or (
                    val == best_val
                    and best is not None
                    and repr(k) < repr(best)
                ):
                    best, best_val = k, val
            if best is None or best_val == INFINITY:
                continue
            candidate.update(self.neighbor_tables[best].links_with_head(j))

        # Step 5: adjacent links override anything neighbors reported.
        for k in up:
            candidate[(self.node_id, k)] = self.link_costs[k]

        # Steps 6-7: keep only the shortest-path tree; update distances.
        dist, tree = dijkstra_tree(candidate, self.node_id, nodes=universe)
        self.main_table = TopologyTable(tree)
        self.distances = dist

        # Step 8: differences to flood.
        return old.diff(self.main_table)

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def _send(self, neighbor: NodeId, message: LSUMessage) -> None:
        self.outbox.append((neighbor, message))
        self.lsu_sent += 1
        self.entries_sent += len(message.entries)

    def _broadcast(self, entries, ack_to: NodeId | None = None) -> None:
        """Send ``entries`` to every up neighbor (ACK flag to ``ack_to``)."""
        for nbr in self.link_costs:
            self._send(
                nbr,
                LSUMessage(
                    self.node_id, tuple(entries), ack=(nbr == ack_to)
                ),
            )

    @staticmethod
    def _check_cost(neighbor: NodeId, cost: float) -> None:
        if not cost > 0 or cost == INFINITY:
            raise RoutingError(
                f"adjacent link cost to {neighbor!r} must be positive and "
                f"finite, got {cost!r}"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def distance_to(self, destination: NodeId) -> float:
        """:math:`D^i_j` — this router's distance to ``destination``."""
        if destination == self.node_id:
            return 0.0
        return self.distances.get(destination, INFINITY)

    def neighbor_distance(self, neighbor: NodeId, destination: NodeId) -> float:
        """:math:`D^i_{jk}` — ``neighbor``'s distance to ``destination``
        according to this router's copy of its topology."""
        if neighbor == destination:
            return 0.0
        return self.nbr_distances.get(neighbor, {}).get(destination, INFINITY)

    def up_neighbors(self) -> list[NodeId]:
        """Neighbors with an operational adjacent link."""
        return list(self.link_costs)

    def __repr__(self) -> str:
        return f"PDARouter({self.node_id!r})"
