"""PDA — the Partial-topology Dissemination Algorithm (Figs. 1-3).

Each router maintains its own shortest-path tree ``T_i`` (the *main
topology table*) and a per-neighbor table ``T_k_i``, a time-delayed copy
of neighbor *k*'s tree.  On every event (an LSU from a neighbor, or an
adjacent-link change) the router runs:

- **NTU** (Neighbor Topology-table Update, Fig. 2): apply the LSU to the
  neighbor's table and recompute that neighbor's distances by running
  Dijkstra rooted at the neighbor;
- **MTU** (Main Topology-table Update, Fig. 3): merge the neighbor trees —
  for each known node *j*, copy *j*'s outgoing links from the *preferred
  neighbor* ``p`` minimizing :math:`D^i_{jp} + l^i_p` (conflicts between
  neighbors are resolved by distance to the head of the link, not by
  sequence numbers), override adjacent links with locally measured costs,
  run Dijkstra, and keep only the tree.  Differences from the previous
  tree are flooded to the neighbors as LSU entries.

PDA converges to correct shortest paths a finite time after the last
change (Theorem 2, proved via n-hop minimum trees).  Routers here are
transport-agnostic: outgoing messages accumulate in ``outbox`` and a
driver (:mod:`repro.core.driver` or the packet simulator) delivers them.
"""

from __future__ import annotations

import itertools

from repro.core.linkstate import (
    INFINITY,
    EntryOp,
    FrozenTree,
    LinkEntry,
    LSUMessage,
    TopologyTable,
)
from repro.exceptions import RoutingError
from repro.graph.shortest_paths import dijkstra, rank_nodes
from repro.graph.topology import NodeId

#: Process-wide router identities.  ``id()`` would be ambiguous here:
#: sequential experiments create and drop whole router populations, and
#: a recycled address must not alias a stale entry in an auditor's
#: incremental cache.
_uid_counter = itertools.count(1)


class PDARouter:
    """One router running PDA.

    Public event entry points (each may queue messages on ``outbox``):

    - :meth:`link_up` — an adjacent link came up (or a router boots and
      discovers its neighbor);
    - :meth:`link_cost_change` — the measured cost of an adjacent link
      changed (this is how marginal-delay updates enter the protocol);
    - :meth:`link_down` — an adjacent link failed;
    - :meth:`receive` — an LSU message arrived from a neighbor.

    Attributes:
        outbox: queued ``(neighbor, LSUMessage)`` pairs for the driver.
        mtu_runs / lsu_sent / lsu_received: protocol statistics.

    Incremental bookkeeping: every event that can change MTU's inputs
    (adjacent link set or cost, any neighbor-table content) sets
    ``_tables_dirty``; MTU is deterministic in those inputs and
    idempotent, so while the flag is clear :meth:`_mtu` returns the empty
    diff without recomputing — the dominant case for MPDA's pure-ACK
    deliveries.  ``INCREMENTAL = False`` (subclass hook) disables every
    such shortcut; the differential tests run a reference router with it
    off and assert byte-identical behavior.
    """

    #: Master switch for the incremental shortcuts (MTU clean-skip, NTU
    #: no-op-LSU skip, dirty-destination successor recomputation).  The
    #: non-incremental path is the semantics oracle for testing.
    INCREMENTAL = True

    #: Whether `_ntu_apply_lsu` should diff neighbor-table rows and report
    #: changed destinations via `_note_rows_changed` (MPDA needs this for
    #: its dirty-destination set; plain PDA skips the diff cost).
    _TRACK_ROWS = False

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        #: Stable identity for observers' caches (see module comment).
        self._uid = next(_uid_counter)
        #: Bumped after every processed event; observers (the invariant
        #: auditor) use it to tell which routers may have changed state
        #: since they last looked.
        self.route_version = 0
        self.main_table = TopologyTable()
        self.neighbor_tables: dict[NodeId, TopologyTable] = {}
        self.link_costs: dict[NodeId, float] = {}
        self.distances: dict[NodeId, float] = {}
        #: nbr_distances[k][j] = D^i_jk, distance k -> j in this router's
        #: copy of k's topology (NTU step 1c).
        self.nbr_distances: dict[NodeId, dict[NodeId, float]] = {}
        self.outbox: list[tuple[NodeId, LSUMessage]] = []
        #: dest -> causal event id of the last distance change (written
        #: by the protocol driver when causal tracing is active; see
        #: :mod:`repro.obs.causal`).  Empty and untouched otherwise.
        self.route_provenance: dict[NodeId, int | None] = {}
        self.mtu_runs = 0
        self.lsu_sent = 0
        self.lsu_received = 0
        self.entries_sent = 0
        #: True when MTU's inputs changed since its last recomputation.
        self._tables_dirty = True
        #: Cached tie-break ranks over the known-node universe, rebuilt
        #: only when the universe's membership changes.
        self._rank: dict[NodeId, int] = {}
        self._rank_nodes: frozenset[NodeId] = frozenset()
        #: Main-table version (bumped once per changed MTU) and the
        #: frozen snapshot of the current tree, attached to outgoing
        #: LSUs so in-sync receivers adopt the new tree by reference.
        self._table_version = 0
        self._snap: FrozenTree | None = None
        #: Restricted distance view of the current main table (tree
        #: nodes plus self) — what a receiver's NTU computes from it.
        self._flood_dist: dict[NodeId, float] = {node_id: 0.0}
        #: Per-neighbor version of the frozen snapshot currently held
        #: in ``neighbor_tables`` (absent = mutable or out-of-sync).
        self._nbr_versions: dict[NodeId, int] = {}
        #: MTU steps 3-4 state carried across runs: per-destination
        #: preferred neighbor and its merged value, the candidate cost
        #: map, and its adjacency.  Valid while ``_mtu_full`` is False;
        #: ``_best_dirty`` lists destinations whose neighbor rows moved
        #: and ``_group_dirty`` the heads whose copied link group must
        #: be re-sourced.
        self._best_val: dict[NodeId, float] = {}
        self._best_nbr: dict[NodeId, NodeId] = {}
        self._cand: dict[tuple[NodeId, NodeId], float] = {}
        self._adj: dict[NodeId, list[tuple[NodeId, float]]] = {}
        self._best_dirty: set[NodeId] = set()
        self._group_dirty: set[NodeId] = set()
        #: The single neighbor all of ``_best_dirty`` came from, or None
        #: once several senders contributed (None disables the
        #: challenger short-cut in ``_mtu_refresh``).
        self._dirty_sender: NodeId | None = None
        self._mtu_full = True

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def link_up(self, neighbor: NodeId, cost: float) -> None:
        """Adjacent link to ``neighbor`` came up with measured cost ``cost``."""
        self._check_cost(neighbor, cost)
        self.link_costs[neighbor] = cost
        self.neighbor_tables.setdefault(neighbor, TopologyTable())
        self.nbr_distances.setdefault(neighbor, {neighbor: 0.0})
        self._tables_dirty = True
        self._links_changed()
        self._greet(neighbor)
        self._after_ntu(lsu_sender=None)

    def _greet(self, neighbor: NodeId) -> None:
        """NTU step 2: greet a new neighbor with the full main table."""
        dump = self.main_table.full_dump()
        if dump:
            self._send(
                neighbor,
                LSUMessage(
                    self.node_id, dump, snapshot=self._full_snapshot()
                ),
            )

    def _full_snapshot(self) -> FrozenTree | None:
        """The current tree as a full-dump snapshot (greeting messages)."""
        if not self.INCREMENTAL or self._snap is None:
            return None
        return self._snap.as_full(self.node_id)

    def link_cost_change(self, neighbor: NodeId, cost: float) -> None:
        """The measured cost of the adjacent link changed (NTU step 3)."""
        self._check_cost(neighbor, cost)
        if neighbor not in self.link_costs:
            raise RoutingError(
                f"{self.node_id!r}: cost change for unknown link to "
                f"{neighbor!r}"
            )
        self.link_costs[neighbor] = cost
        self._tables_dirty = True
        #: Every merged value through this neighbor shifted; rebuild
        #: the preferred-neighbor state from scratch next MTU.
        self._mtu_full = True
        self._after_ntu(lsu_sender=None)

    def link_down(self, neighbor: NodeId) -> None:
        """Adjacent link failed (NTU step 4): clear the neighbor's table."""
        self.link_costs.pop(neighbor, None)
        self.neighbor_tables.pop(neighbor, None)
        self.nbr_distances.pop(neighbor, None)
        self._nbr_versions.pop(neighbor, None)
        self._tables_dirty = True
        self._links_changed()
        self._after_ntu(lsu_sender=None)

    def receive(self, message: LSUMessage) -> None:
        """An LSU arrived from a (current) neighbor."""
        sender = message.sender
        self.lsu_received += 1
        if sender not in self.link_costs:
            # Stale message from a link that has since failed; the paper's
            # delivery assumptions make this impossible, but drivers that
            # inject failures may race — drop it.
            return
        self._ntu_apply_lsu(message)
        self._after_ntu(lsu_sender=sender)

    # ------------------------------------------------------------------
    # NTU / MTU internals
    # ------------------------------------------------------------------
    def _ntu_apply_lsu(self, message: LSUMessage) -> None:
        """NTU step 1: apply entries and recompute the sender's distances."""
        sender = message.sender
        table = self.neighbor_tables.get(sender)
        snap = message.snapshot
        if self.INCREMENTAL and snap is not None:
            stored = self._nbr_versions.get(sender)
            if (stored is not None and stored == snap.prev_version) or (
                snap.applies_to_empty and (table is None or len(table) == 0)
            ):
                # The held table is exactly the state the entries were
                # diffed against (it *is* the sender's previous
                # snapshot, or both are empty and the entries rebuild
                # the whole tree), so adopting the sender's frozen
                # result is identical to replaying the entries.
                self.neighbor_tables[sender] = snap
                self.nbr_distances[sender] = snap.dist
                self._nbr_versions[sender] = snap.version
                self._tables_dirty = True
                self._note_mtu_dirty(sender, snap.changed_rows, message.entries)
                if self._TRACK_ROWS and snap.changed_rows:
                    self._note_rows_changed(snap.changed_rows)
                return
        # Entry path: replay the LSU onto a mutable copy.  This is the
        # reference semantics, also taken on duplicated or reordered
        # delivery where the snapshot's baseline doesn't match.
        if table is None:
            table = self.neighbor_tables[sender] = TopologyTable()
        elif isinstance(table, FrozenTree):
            table = self.neighbor_tables[sender] = table.thaw()
            self.nbr_distances[sender] = dict(self.nbr_distances[sender])
            self._nbr_versions.pop(sender, None)
        old = self.nbr_distances.get(sender)
        if self.INCREMENTAL and old is not None:
            changed, changed_nodes = table.apply_incremental(
                message.entries, sender, old
            )
            if not changed:
                # Every entry was a no-op on the table, so the sender's
                # distances — and MTU's inputs — are exactly as before.
                return
            self._tables_dirty = True
            if changed_nodes is not None:
                # ``old`` was patched in place and ``changed_nodes``
                # covers every destination whose row differs.
                self._note_mtu_dirty(sender, changed_nodes, message.entries)
                if self._TRACK_ROWS and changed_nodes:
                    self._note_rows_changed(changed_nodes)
                return
            # The post-apply table is transiently not a tree rooted at
            # the sender; fall through to the full recompute + row diff.
        else:
            changed = table.apply(message.entries)
            if not changed and self.INCREMENTAL:
                return
            self._tables_dirty = True
        # No exact row diff is tracked on this path (first LSU from a
        # neighbor, non-tree transients, reference mode): rebuild the
        # carried MTU state from scratch instead.
        self._mtu_full = True
        new = table.distances_from(sender)
        new.setdefault(sender, 0.0)
        self.nbr_distances[sender] = new
        if self._TRACK_ROWS:
            if old is None:
                self._note_rows_changed(new)
            else:
                self._note_rows_changed(
                    j
                    for j in old.keys() | new.keys()
                    if old.get(j) != new.get(j)
                )

    def _note_mtu_dirty(self, sender: NodeId, rows, entries) -> None:
        """Record what an applied LSU invalidates in the carried MTU state.

        ``rows`` (destinations whose distance through ``sender`` moved)
        re-open the preferred-neighbor choice; entry heads whose current
        preferred neighbor *is* the sender had their copied link group
        edited in place, so the group is re-sourced even when the choice
        itself stands.
        """
        if not self._best_dirty:
            self._dirty_sender = sender
        elif self._dirty_sender != sender:
            self._dirty_sender = None
        self._best_dirty.update(rows)
        best_nbr = self._best_nbr
        group_dirty = self._group_dirty
        for entry in entries:
            head = entry.head
            if best_nbr.get(head) == sender:
                group_dirty.add(head)

    def _note_rows_changed(self, destinations) -> None:
        """Hook: destinations whose neighbor-table rows changed (MPDA)."""

    def _links_changed(self) -> None:
        """The adjacent-link *set* changed: every destination's
        preferred-neighbor choice may move, so the carried MTU state is
        rebuilt from scratch (MPDA's override also dirties the LFI
        successor sets)."""
        self._mtu_full = True

    def _distances_recomputed(self) -> None:
        """Hook: MTU recomputed ``self.distances`` (MPDA re-arms FD)."""

    def _after_ntu(self, lsu_sender: NodeId | None) -> None:
        """The tail of procedure PDA: MTU, then flood any differences."""
        self.route_version += 1
        changes = self._mtu()
        if changes:
            self._broadcast(changes)

    def _universe(self) -> list[NodeId]:
        """Every node this router has heard of."""
        # Only the keys (and their first-seen order) matter; merging the
        # tables' internal mappings directly skips per-table dict
        # materialization on this per-MTU path.
        known: dict[NodeId, object] = {self.node_id: None}
        known.update(self.link_costs)
        for table in self.neighbor_tables.values():
            known.update(table.nodes_map_view())
        return list(known)

    def _universe_rank(self, universe) -> dict[NodeId, int]:
        """Tie-break ranks for ``universe``, cached across MTU runs.

        Rank comparison is equivalent to the repr order the paper's
        "lower address" tie rule uses (see :func:`rank_nodes`); the map
        is rebuilt only when the universe gains or loses nodes.
        """
        nodes = frozenset(universe)
        if nodes != self._rank_nodes:
            self._rank = rank_nodes(nodes)
            self._rank_nodes = nodes
        return self._rank

    def _mtu(self):
        """MTU (Fig. 3): rebuild the main table; return the LSU diff.

        MTU is a pure function of the adjacent-link costs and the
        neighbor tables, and running it twice on the same inputs yields
        the same tree and an empty diff — so when nothing marked those
        inputs dirty the whole computation is skipped (the counter still
        advances: a skipped run is still a protocol-level MTU event).
        """
        self.mtu_runs += 1
        if not self._tables_dirty and self.INCREMENTAL:
            return ()
        self._tables_dirty = False
        old = self.main_table
        universe = self._universe()
        rank = self._universe_rank(universe)
        me = self.node_id
        link_costs = self.link_costs
        up = [n for n in link_costs if link_costs[n] < INFINITY]

        if self._mtu_full or not self.INCREMENTAL:
            self._mtu_rebuild(up, rank)
        else:
            self._mtu_refresh(up, rank)

        # Steps 6-8 fused: run Dijkstra, then a single pass over the
        # predecessor map yields the tree's per-head link groups, the
        # restricted distance view, and the ADD/CHANGE half of the diff
        # at once (a link (h, t) is in the tree iff ``pred[t] == h``, so
        # no intermediate tree dict is materialized).
        cand = self._cand
        dist, pred = dijkstra(cand, me, nodes=universe, rank=rank, adj=self._adj)
        old_links = old.links_view()
        old_get = old_links.get
        by_head: dict[NodeId, dict] = {}
        group_of = by_head.get
        flood: dict[NodeId, float] = {me: 0.0}
        entries: list[LinkEntry] = []
        n_links = 0
        for t, h in pred.items():
            if h is None:
                continue
            link = (h, t)
            cost = cand[link]
            group = group_of(h)
            if group is None:
                group = by_head[h] = {}
            group[link] = cost
            flood[t] = dist[t]
            n_links += 1
            old_cost = old_get(link)
            if old_cost is None:
                entries.append(LinkEntry(EntryOp.ADD, h, t, cost))
            elif old_cost != cost:
                entries.append(LinkEntry(EntryOp.CHANGE, h, t, cost))
        pred_get = pred.get
        for link in old_links:
            if pred_get(link[1]) != link[0]:
                entries.append(LinkEntry(EntryOp.DELETE, *link))
        changes = tuple(entries)
        if changes:
            # Patching the main table with its own diff entries (all
            # touching distinct links) lands it exactly at the tree, at
            # O(changes) instead of an O(tree) rebuild.
            old.apply(changes)
            if self.INCREMENTAL:
                # Freeze the new tree for flooding.  The previous
                # restricted view had one entry (self) iff the previous
                # tree was empty, in which case the diff entries also
                # reconstruct the tree from scratch.
                prev_flood = self._flood_dist
                prev_get = prev_flood.get
                changed_rows = {
                    j for j, v in flood.items() if prev_get(j) != v
                }
                for j in prev_flood:
                    if j not in flood:
                        changed_rows.add(j)
                prev_version = self._table_version
                self._table_version += 1
                self._snap = FrozenTree(
                    version=self._table_version,
                    prev_version=prev_version,
                    applies_to_empty=len(prev_flood) == 1,
                    dist=flood,
                    changed_rows=changed_rows,
                    by_head=by_head,
                    nodes=flood,
                    n_links=n_links,
                )
                self._flood_dist = flood
        self.distances = dist
        self._distances_recomputed()
        return changes

    def _mtu_rebuild(self, up, rank) -> None:
        """MTU steps 3-5 from scratch; prime the incremental state.

        Steps 3-4: preferred neighbor per head node, copy its links.
        Iterating each up neighbor's distance rows (instead of probing
        every neighbor for every universe node) gives the same
        (min value, then lowest-address neighbor) winner per node.
        """
        best_val: dict[NodeId, float] = {}
        best_nbr: dict[NodeId, NodeId] = {}
        link_costs = self.link_costs
        for k in up:
            lc = link_costs[k]
            rows = self.nbr_distances.get(k)
            if not rows:
                continue
            rank_k = rank[k]
            for j, dist_kj in rows.items():
                val = dist_kj + lc
                cur = best_val.get(j)
                if cur is None:
                    best_val[j] = val
                    best_nbr[j] = k
                elif val < cur or (val == cur and rank_k < rank[best_nbr[j]]):
                    best_val[j] = val
                    best_nbr[j] = k

        # The candidate map is grouped by head as it is built (each
        # preferred neighbor contributes exactly the links leaving one
        # head), so Dijkstra gets its adjacency for free instead of
        # regrouping O(E) links every run.
        candidate: dict[tuple[NodeId, NodeId], float] = {}
        adj: dict[NodeId, list[tuple[NodeId, float]]] = {}
        me = self.node_id
        tables = self.neighbor_tables
        for j, k in best_nbr.items():
            if j == me or best_val[j] == INFINITY:
                continue
            view = tables[k].links_with_head_view(j)
            candidate.update(view)
            adj[j] = [(tail, cost) for (_, tail), cost in view.items()]

        # Step 5: adjacent links override anything neighbors reported.
        for k in up:
            candidate[(me, k)] = link_costs[k]
        adj[me] = [(k, link_costs[k]) for k in up]

        self._best_val = best_val
        self._best_nbr = best_nbr
        self._cand = candidate
        self._adj = adj
        self._best_dirty.clear()
        self._group_dirty.clear()
        self._mtu_full = False

    def _mtu_refresh(self, up, rank) -> None:
        """MTU steps 3-5, touching only destinations whose inputs moved.

        ``_best_dirty`` holds every node whose merged-distance row
        changed in some neighbor table since the last run; re-probing
        just those rows reproduces the full argmin's winner because the
        probe is a pure (value, lower-address) argmin over the same
        inputs and untouched rows cannot have changed their entry.
        ``_group_dirty`` holds nodes whose copied link group may differ
        even with an unchanged winner (the winning neighbor re-announced
        links leaving that head); their groups are spliced in place.
        """
        best_val, best_nbr = self._best_val, self._best_nbr
        link_costs = self.link_costs
        nbr_rows = self.nbr_distances
        group_dirty = self._group_dirty
        adj = self._adj
        rows = [(k, nbr_rows.get(k), link_costs[k], rank[k]) for k in up]
        # When every dirty row came from one sender, a destination whose
        # current winner is a *different* neighbor only needs the
        # sender's new value checked against the incumbent: the winner's
        # own value is untouched, so unless the challenger beats it (or
        # ties with a lower address) nothing changes.
        ds = self._dirty_sender
        if ds is not None and ds in link_costs:
            ds_row = nbr_rows.get(ds)
            ds_lc = link_costs[ds]
            ds_rk = rank[ds]
        else:
            ds = None
        for j in self._best_dirty:
            if ds is not None:
                w = best_nbr.get(j)
                if w is not None and w != ds:
                    d = ds_row.get(j) if ds_row else None
                    if d is None:
                        continue
                    val = d + ds_lc
                    bv = best_val[j]
                    if val > bv or (val == bv and ds_rk > rank[w]):
                        continue
            bv = INFINITY
            bk = None
            br = 0
            for k, row, lc, rk in rows:
                if not row:
                    continue
                d = row.get(j)
                if d is None:
                    continue
                val = d + lc
                if bk is None or val < bv or (val == bv and rk < br):
                    bv, bk, br = val, k, rk
            prev = best_nbr.get(j)
            if bk is None:
                if prev is not None:
                    del best_nbr[j]
                    del best_val[j]
                    group_dirty.add(j)
            else:
                best_val[j] = bv
                best_nbr[j] = bk
                # A winner flip changes which table the group is copied
                # from; an INFINITY<->finite flip adds or removes the
                # group even when the winner is unchanged.
                if prev != bk or (j in adj) != (bv < INFINITY):
                    group_dirty.add(j)
        self._best_dirty = set()

        cand = self._cand
        tables = self.neighbor_tables
        me = self.node_id
        for j in group_dirty:
            if j == me:
                continue
            old_adj = adj.pop(j, None)
            if old_adj:
                for tail, _ in old_adj:
                    cand.pop((j, tail), None)
            k = best_nbr.get(j)
            if k is None or best_val[j] == INFINITY:
                continue
            view = tables[k].links_with_head_view(j)
            if view:
                cand.update(view)
                adj[j] = [(tail, cost) for (_, tail), cost in view.items()]
        self._group_dirty = set()

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def _send(self, neighbor: NodeId, message: LSUMessage) -> None:
        self.outbox.append((neighbor, message))
        self.lsu_sent += 1
        self.entries_sent += len(message.entries)

    def _broadcast(self, entries, ack_to: NodeId | None = None) -> None:
        """Send ``entries`` to every up neighbor (ACK flag to ``ack_to``).

        The snapshot rides along whenever the entries are the diff MTU
        just flooded — ``_broadcast`` is only reached straight after a
        changed MTU, which refreshed ``_snap`` to the post-diff tree.
        """
        snapshot = self._snap if self.INCREMENTAL else None
        for nbr in self.link_costs:
            self._send(
                nbr,
                LSUMessage(
                    self.node_id,
                    tuple(entries),
                    ack=(nbr == ack_to),
                    snapshot=snapshot,
                ),
            )

    @staticmethod
    def _check_cost(neighbor: NodeId, cost: float) -> None:
        if not cost > 0 or cost == INFINITY:
            raise RoutingError(
                f"adjacent link cost to {neighbor!r} must be positive and "
                f"finite, got {cost!r}"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def distance_to(self, destination: NodeId) -> float:
        """:math:`D^i_j` — this router's distance to ``destination``."""
        if destination == self.node_id:
            return 0.0
        return self.distances.get(destination, INFINITY)

    def neighbor_distance(self, neighbor: NodeId, destination: NodeId) -> float:
        """:math:`D^i_{jk}` — ``neighbor``'s distance to ``destination``
        according to this router's copy of its topology."""
        if neighbor == destination:
            return 0.0
        return self.nbr_distances.get(neighbor, {}).get(destination, INFINITY)

    def up_neighbors(self) -> list[NodeId]:
        """Neighbors with an operational adjacent link."""
        return list(self.link_costs)

    def __repr__(self) -> str:
        return f"PDARouter({self.node_id!r})"
