"""Pluggable transport layer under the protocol driver.

The paper's correctness results (Theorems 1-4) rest on the assumption
that "messages transmitted over an operational link are received
correctly and in the proper sequence within a finite time".  Historically
the driver hard-coded that ideal with per-link FIFO deques; this module
turns the delivery model into an explicit, swappable layer so the
assumption can be *tested* instead of trusted:

- :class:`PerfectChannel` — the paper's model verbatim (lossless,
  in-order, immediate).  The default; byte-identical to the historical
  driver behavior.
- :class:`FaultyChannel` — a seeded adversarial wire: configurable loss,
  duplication, bounded reordering, delivery-delay jitter, and partitions
  (explicit or timed).  Running MPDA directly over it violates the
  paper's assumptions and is expected to break convergence.
- :class:`ReliableTransport` — a shim that *enforces* the paper's
  delivery assumption over any channel: per-link sequence numbers,
  cumulative ACKs, timeout-driven retransmission with exponential
  backoff, duplicate suppression and in-order release.  MPDA over
  ``ReliableTransport(FaultyChannel(...))`` must converge with a clean
  LFI audit — that is the machine-checked restatement of the paper's
  delivery model.

Time is message-stepped, like the driver itself: the channel clock
advances by one on every frame delivery (:meth:`Transport.pop`) and on
every explicit :meth:`Transport.tick` (which the driver calls only when
nothing is deliverable).  Retransmit timers therefore fire after the
rest of the network drains — the message-driven analogue of "within a
finite time".

Determinism: every random draw comes from the transport's own seeded
``random.Random`` in a fixed order (loss, then duplication, then per
copy reorder/slack, then delay hold), so a (transport seed, driver
seed) pair fully determines a run.
"""

from __future__ import annotations

import random
from bisect import insort
from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.exceptions import ConvergenceError, TopologyError
from repro.graph.topology import LinkId

__all__ = [
    "Transport",
    "PerfectChannel",
    "FaultyChannel",
    "ReliableTransport",
    "Segment",
]


class Transport:
    """Contract between :class:`~repro.core.driver.ProtocolDriver` and
    the wire.

    A transport carries opaque message objects over directed links.  The
    driver calls, in order: :meth:`attach` once with every directed link
    of the topology, then :meth:`send` / :meth:`busy_links` /
    :meth:`pop` while pumping, :meth:`tick` when nothing is deliverable
    but :meth:`pending` says work remains, and :meth:`link_down` /
    :meth:`link_up` on duplex topology events.
    """

    def attach(self, links: list[LinkId]) -> None:
        raise NotImplementedError

    def send(self, link: LinkId, message: object) -> None:
        """Queue ``message`` on the directed ``link``."""
        raise NotImplementedError

    def busy_links(self) -> list[LinkId]:
        """Links with a frame deliverable *now* (stable order)."""
        raise NotImplementedError

    def pop(self, link: LinkId) -> list[object]:
        """Deliver one frame from ``link``; the payload messages (if
        any) that the receiving router must process, in order."""
        raise NotImplementedError

    def pending(self) -> int:
        """Undelivered obligations; 0 means the wire is quiet."""
        raise NotImplementedError

    def tick(self) -> None:
        """Advance the channel clock when nothing is deliverable."""
        raise NotImplementedError

    def link_down(self, a: object, b: object) -> None:
        """The duplex link ``a <-> b`` failed; drop in-flight state."""
        raise NotImplementedError

    def link_up(self, a: object, b: object) -> None:
        """The duplex link ``a <-> b`` came (back) up."""
        raise NotImplementedError

    def has_link(self, link: LinkId) -> bool:
        raise NotImplementedError

    def stats(self) -> dict[str, int]:
        """Cumulative counters (sent, delivered, faults, ...)."""
        raise NotImplementedError


class PerfectChannel(Transport):
    """The paper's delivery assumption verbatim.

    Per-link FIFO queues, no loss, no reordering, no delay: exactly the
    historical driver behavior (trace-for-trace identical under the same
    driver seed).

    The non-empty-queue list is maintained incrementally: a link enters
    the list (at its attach-order position, keeping the order the driver
    seeds its interleaving RNG against) when its queue goes non-empty
    and leaves when it drains, so :meth:`busy_links` is O(1) instead of
    a scan over every queue per delivered frame.
    """

    def __init__(self) -> None:
        self._queues: dict[LinkId, deque] = {}
        self._busy: list[LinkId] = []
        self._order: dict[LinkId, int] = {}
        self.sent = 0
        self.delivered = 0

    def attach(self, links: list[LinkId]) -> None:
        self._queues = {link: deque() for link in links}
        self._order = {link: i for i, link in enumerate(self._queues)}
        self._busy = []

    def send(self, link: LinkId, message: object) -> None:
        queue = self._queues.get(link)
        if queue is not None:
            if not queue:
                insort(self._busy, link, key=self._order.__getitem__)
            queue.append(message)
            self.sent += 1

    def busy_links(self) -> list[LinkId]:
        # The driver's (internal, not mutated) view; identical contents
        # and order to scanning the queues in attach order.
        return self._busy

    def pop(self, link: LinkId) -> list[object]:
        self.delivered += 1
        queue = self._queues[link]
        message = queue.popleft()
        if not queue:
            self._busy.remove(link)
        return [message]

    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def tick(self) -> None:  # pragma: no cover - never reached: busy
        pass  # whenever pending, so the driver has no reason to tick

    def link_down(self, a: object, b: object) -> None:
        for link in ((a, b), (b, a)):
            queue = self._queues[link]
            if queue:
                queue.clear()
                self._busy.remove(link)

    def link_up(self, a: object, b: object) -> None:
        pass

    def has_link(self, link: LinkId) -> bool:
        return link in self._queues

    def stats(self) -> dict[str, int]:
        return {"sent": self.sent, "delivered": self.delivered}


@dataclass(order=True)
class _Frame:
    """One in-flight frame; ordered by (send order + reorder slack)."""

    key: tuple[int, int]  # (seq + slack, seq) — delivery order
    ready_at: int = field(compare=False)  # channel tick it becomes ready
    message: object = field(compare=False)


class FaultyChannel(Transport):
    """A seeded adversarial wire.

    Args:
        seed: for the channel's private RNG (independent of the driver's
            interleaving seed).
        loss: probability a sent frame is silently dropped.
        dup: probability a surviving frame is queued twice.
        reorder: probability a queued copy is given positive *slack* —
            it may be overtaken by later frames.
        jitter: maximum slack; a frame is overtaken by at most
            ``jitter`` later-sent frames (the bounded-reordering TTL).
        delay: maximum delivery-delay, in channel ticks, added per copy;
            a queued frame becomes deliverable at most ``delay`` ticks
            after it was sent.
        partitions: timed duplex partitions ``((a, b), start, end)`` in
            channel ticks — while ``start <= now < end`` both directions
            of ``a <-> b`` drop every frame (queued and newly sent).

    Explicit :meth:`partition` / :meth:`heal` calls do the same thing
    under schedule control (the fuzz harness uses them).  Partitions
    differ from :meth:`link_down` in that the routers are *not*
    notified — the paper's model has no such state, which is exactly
    why it breaks bare MPDA and why :class:`ReliableTransport` exists.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        loss: float = 0.0,
        dup: float = 0.0,
        reorder: float = 0.0,
        jitter: int = 3,
        delay: int = 0,
        partitions: tuple[tuple[LinkId, int, int], ...] = (),
    ) -> None:
        for name, p in (("loss", loss), ("dup", dup), ("reorder", reorder)):
            if not 0.0 <= p < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {p!r}")
        if jitter < 0 or delay < 0:
            raise ValueError("jitter and delay must be non-negative")
        self.loss = loss
        self.dup = dup
        self.reorder = reorder
        self.jitter = jitter
        self.delay = delay
        self._rng = random.Random(seed)
        self._timed = tuple(partitions)
        self._partitioned: set[LinkId] = set()
        self._queues: dict[LinkId, list[_Frame]] = {}
        self._next_seq: dict[LinkId, int] = {}
        self.now = 0
        self.sent = 0
        self.delivered = 0
        self.drops = 0
        self.dups = 0
        self.reorders = 0
        self.partition_drops = 0

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, a: object, b: object) -> None:
        """Silently black-hole both directions of ``a <-> b``."""
        for link in ((a, b), (b, a)):
            self._require(link)
            self._partitioned.add(link)
        self._purge_partitioned()

    def heal(self, a: object, b: object) -> None:
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def _timed_active(self, link: LinkId) -> bool:
        for (a, b), start, end in self._timed:
            if start <= self.now < end and link in ((a, b), (b, a)):
                return True
        return False

    def _is_partitioned(self, link: LinkId) -> bool:
        return link in self._partitioned or self._timed_active(link)

    def _purge_partitioned(self) -> None:
        """Drop queued frames sitting on a partitioned link."""
        for link, queue in self._queues.items():
            if queue and self._is_partitioned(link):
                for frame in queue:
                    self._note_fault(
                        "partition_drop", link, frame.key[1], frame.message
                    )
                self.partition_drops += len(queue)
                queue.clear()

    # ------------------------------------------------------------------
    # the Transport contract
    # ------------------------------------------------------------------
    def attach(self, links: list[LinkId]) -> None:
        self._queues = {link: [] for link in links}
        self._next_seq = dict.fromkeys(links, 0)

    def send(self, link: LinkId, message: object) -> None:
        self._require(link)
        rng = self._rng
        seq = self._next_seq[link]
        self._next_seq[link] = seq + 1
        if self._is_partitioned(link):
            self.partition_drops += 1
            self._note_fault("partition_drop", link, seq, message)
            return
        if self.loss and rng.random() < self.loss:
            self.drops += 1
            self._note_fault("loss", link, seq, message)
            return
        copies = 1
        if self.dup and rng.random() < self.dup:
            copies = 2
            self.dups += 1
            self._note_fault("dup", link, seq, message)
        queue = self._queues[link]
        for _ in range(copies):
            slack = 0
            if self.reorder and self.jitter and rng.random() < self.reorder:
                slack = rng.randint(1, self.jitter)
                self.reorders += 1
                self._note_fault("reorder", link, seq, message)
            hold = rng.randint(0, self.delay) if self.delay else 0
            frame = _Frame((seq + slack, seq), self.now + hold, message)
            queue.append(frame)
            queue.sort()
            self.sent += 1

    def busy_links(self) -> list[LinkId]:
        self._purge_partitioned()
        return [
            link
            for link, queue in self._queues.items()
            if any(frame.ready_at <= self.now for frame in queue)
        ]

    def pop(self, link: LinkId) -> list[object]:
        queue = self._queues[link]
        self.now += 1
        for idx, frame in enumerate(queue):
            if frame.ready_at < self.now:  # ready at the pre-pop clock
                queue.pop(idx)
                self.delivered += 1
                return [frame.message]
        return []  # pragma: no cover - driver only pops busy links

    def pending(self) -> int:
        self._purge_partitioned()
        return sum(len(queue) for queue in self._queues.values())

    def tick(self) -> None:
        self.now += 1

    def link_down(self, a: object, b: object) -> None:
        self._queues[(a, b)].clear()
        self._queues[(b, a)].clear()

    def link_up(self, a: object, b: object) -> None:
        pass

    def has_link(self, link: LinkId) -> bool:
        return link in self._queues

    def stats(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "drops": self.drops,
            "dups": self.dups,
            "reorders": self.reorders,
            "partition_drops": self.partition_drops,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require(self, link: LinkId) -> None:
        if link not in self._queues:
            raise TopologyError(f"no link {link!r} in the channel")

    @staticmethod
    def _note_fault(
        op: str, link: LinkId, seq: int, message: object = None
    ) -> None:
        ob = obs.current()
        if ob is None or not ob.tracer.enabled:
            return
        if ob.causal is not None:
            # Tie the fault to the causal event stream: the LSU's
            # process-wide seq is the out-of-band causal tag key (pure
            # ACK segments carry no LSU and are emitted unchanged).
            payload = getattr(message, "payload", message)
            lsu = getattr(payload, "seq", None)
            if lsu is not None:
                ob.tracer.event(
                    "transport_fault", op=op, link=link, seq=seq, lsu=lsu
                )
                return
        ob.tracer.event("transport_fault", op=op, link=link, seq=seq)


@dataclass(frozen=True)
class Segment:
    """One reliable-transport wire frame.

    ``ack`` is cumulative: every data sequence number below it has been
    received (on the reverse direction of the link carrying this frame).
    """

    kind: str  # "data" | "ack"
    seq: int  # data frames: per-link sequence number; ack frames: 0
    ack: int
    payload: object = None


@dataclass
class _SendState:
    next_seq: int = 0
    unacked: dict[int, object] = field(default_factory=dict)
    timer: int = -1  # ticks until retransmit; -1 = disarmed
    timeout: int = 0  # current (backed-off) timeout
    attempts: int = 0  # consecutive timeouts without ACK progress


@dataclass
class _RecvState:
    expected: int = 0
    buffer: dict[int, object] = field(default_factory=dict)


class ReliableTransport(Transport):
    """Enforces the paper's delivery model over an unreliable channel.

    Wraps an inner :class:`Transport` (typically a
    :class:`FaultyChannel`) and presents reliable, in-order,
    duplicate-free delivery to the driver: the routers above never see
    the difference from a :class:`PerfectChannel`, they only pay for it
    in extra wire frames (ACKs and retransmissions).

    Args:
        inner: the raw channel the segments travel over.
        timeout: initial retransmit timeout, in channel ticks.
        backoff: multiplicative backoff applied per consecutive timeout.
        max_timeout: backoff ceiling.
        max_retries: consecutive timeouts without ACK progress on one
            link before giving up with a :class:`ConvergenceError` — a
            permanently partitioned link would otherwise retransmit
            forever ("operational link" is the paper's precondition).
    """

    def __init__(
        self,
        inner: Transport | None = None,
        *,
        timeout: int = 8,
        backoff: float = 2.0,
        max_timeout: int = 64,
        max_retries: int = 30,
    ) -> None:
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {timeout!r}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff!r}")
        self.inner = inner if inner is not None else FaultyChannel()
        self.timeout = timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.max_retries = max_retries
        self._send_state: dict[LinkId, _SendState] = {}
        self._recv_state: dict[LinkId, _RecvState] = {}
        self.data_sent = 0
        self.payloads_delivered = 0
        self.retransmits = 0
        self.timeouts = 0
        self.acks_sent = 0
        self.dup_suppressed = 0

    # ------------------------------------------------------------------
    # the Transport contract
    # ------------------------------------------------------------------
    def attach(self, links: list[LinkId]) -> None:
        self.inner.attach(links)
        self._send_state = {link: _SendState() for link in links}
        self._recv_state = {link: _RecvState() for link in links}

    def send(self, link: LinkId, message: object) -> None:
        state = self._send_state[link]
        seq = state.next_seq
        state.next_seq += 1
        state.unacked[seq] = message
        self.data_sent += 1
        if state.timer < 0:
            state.timeout = self.timeout
            state.timer = state.timeout
        self.inner.send(
            link,
            Segment("data", seq, self._recv_state[_reverse(link)].expected,
                    message),
        )

    def busy_links(self) -> list[LinkId]:
        return self.inner.busy_links()

    def pop(self, link: LinkId) -> list[object]:
        delivered: list[object] = []
        for segment in self.inner.pop(link):
            delivered.extend(self._receive(link, segment))
        return delivered

    def pending(self) -> int:
        unacked = sum(
            len(state.unacked) for state in self._send_state.values()
        )
        return self.inner.pending() + unacked

    def tick(self) -> None:
        self.inner.tick()
        for link, state in self._send_state.items():
            if state.timer < 0:
                continue
            state.timer -= 1
            if state.timer <= 0:
                self._on_timeout(link, state)

    def link_down(self, a: object, b: object) -> None:
        self.inner.link_down(a, b)
        for link in ((a, b), (b, a)):
            self._send_state[link] = _SendState()
            self._recv_state[link] = _RecvState()

    def link_up(self, a: object, b: object) -> None:
        self.inner.link_up(a, b)
        for link in ((a, b), (b, a)):
            self._send_state[link] = _SendState()
            self._recv_state[link] = _RecvState()

    def has_link(self, link: LinkId) -> bool:
        return self.inner.has_link(link)

    def stats(self) -> dict[str, int]:
        merged = {
            "data_sent": self.data_sent,
            "payloads_delivered": self.payloads_delivered,
            "retransmits": self.retransmits,
            "timeouts": self.timeouts,
            "acks_sent": self.acks_sent,
            "dup_suppressed": self.dup_suppressed,
        }
        for name, value in self.inner.stats().items():
            merged[f"wire_{name}"] = value
        return merged

    # ------------------------------------------------------------------
    # fault-model passthrough (schedule-driven partitions)
    # ------------------------------------------------------------------
    def partition(self, a: object, b: object) -> None:
        self.inner.partition(a, b)  # type: ignore[attr-defined]

    def heal(self, a: object, b: object) -> None:
        self.inner.heal(a, b)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # protocol internals
    # ------------------------------------------------------------------
    def _receive(self, link: LinkId, segment: Segment) -> list[object]:
        """Process one wire frame arriving on ``link`` at its tail node."""
        reverse = _reverse(link)
        # Every frame carries a cumulative ACK for the reverse direction.
        self._apply_ack(reverse, segment.ack)
        if segment.kind == "ack":
            return []
        state = self._recv_state[link]
        released: list[object] = []
        if segment.seq < state.expected:
            self.dup_suppressed += 1  # old duplicate; re-ACK below
        elif segment.seq == state.expected:
            released.append(segment.payload)
            state.expected += 1
            while state.expected in state.buffer:
                released.append(state.buffer.pop(state.expected))
                state.expected += 1
        elif segment.seq in state.buffer:
            self.dup_suppressed += 1
        else:
            state.buffer[segment.seq] = segment.payload  # out of order
        self.payloads_delivered += len(released)
        self._send_ack(reverse, state.expected)
        return released

    def _apply_ack(self, link: LinkId, ack: int) -> None:
        """Cumulative ACK: everything below ``ack`` reached the peer."""
        state = self._send_state[link]
        acked = [seq for seq in state.unacked if seq < ack]
        if not acked:
            return
        for seq in acked:
            del state.unacked[seq]
        state.attempts = 0
        state.timeout = self.timeout
        state.timer = state.timeout if state.unacked else -1

    def _send_ack(self, link: LinkId, expected: int) -> None:
        self.acks_sent += 1
        self.inner.send(link, Segment("ack", 0, expected))

    def _on_timeout(self, link: LinkId, state: _SendState) -> None:
        """Retransmit everything unacked on ``link``, with backoff."""
        self.timeouts += 1
        state.attempts += 1
        if state.attempts > self.max_retries:
            raise ConvergenceError(
                f"link {link!r}: no ACK progress after "
                f"{self.max_retries} retransmit timeouts (link "
                "partitioned or loss too high?)"
            )
        ack = self._recv_state[_reverse(link)].expected
        for seq in sorted(state.unacked):
            self.inner.send(
                link, Segment("data", seq, ack, state.unacked[seq])
            )
            self.retransmits += 1
        state.timeout = min(
            int(state.timeout * self.backoff) or 1, self.max_timeout
        )
        state.timer = state.timeout
        ob = obs.current()
        if ob is not None and ob.tracer.enabled:
            ob.tracer.event(
                "retransmit",
                link=link,
                frames=len(state.unacked),
                attempt=state.attempts,
            )


def _reverse(link: LinkId) -> LinkId:
    head, tail = link
    return (tail, head)
