"""The paper's single-path (SP) baseline.

Section 5: "To obtain representative delays for single-path routing
algorithms, we opted to restrict our multipath routing algorithm to use
only the best successor for packet forwarding" — the resulting delays
upper-bound what EIGRP / RIP / OSPF would achieve, since MPDA is
instantaneously loop-free while those either need more synchronization
or allow transient loops.

This module provides that restriction, both over converged distance
tables (used by the quasi-static simulator) and over arbitrary successor
sets with marginal distances (used to truncate live MPDA sets).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.lfi import shortest_successor
from repro.graph.shortest_paths import CostMap, bellman_ford
from repro.graph.topology import NodeId, Topology


def single_path_successors(
    topo: Topology, costs: CostMap, destination: NodeId
) -> dict[NodeId, list[NodeId]]:
    """Converged single-best-successor sets toward ``destination``."""
    return shortest_successor(topo, costs, destination)


def ecmp_successors(
    topo: Topology,
    costs: CostMap,
    destination: NodeId,
    *,
    dist: Mapping[NodeId, float] | None = None,
) -> dict[NodeId, list[NodeId]]:
    """Equal-cost multipath successor sets (the OSPF rule).

    The paper contrasts its unequal-cost sets with OSPF, which "permits
    multiple paths to a destination only when they have the same length"
    — i.e. neighbor *k* qualifies only when :math:`D^k_j + l_{ik}`
    *equals* the shortest distance :math:`D^i_j`.  Always a subset of
    the LFI multipath set, so it is loop-free too.  ``dist`` may supply
    precomputed all-sources distances to ``destination`` (one shared-SPF
    pass amortized over destinations); when None it is computed here.
    """
    if dist is None:
        dist = bellman_ford(costs, destination, nodes=topo.nodes)
    successors: dict[NodeId, list[NodeId]] = {}
    for node in topo.nodes:
        if node == destination:
            successors[node] = []
            continue
        own = dist.get(node, float("inf"))
        chosen = []
        for nbr in topo.neighbors(node):
            cost = costs.get((node, nbr))
            if cost is None:
                continue
            via = dist.get(nbr, float("inf")) + cost
            if own < float("inf") and abs(via - own) <= 1e-12 * max(own, 1.0):
                chosen.append(nbr)
        successors[node] = chosen
    return successors


def restrict_successors(
    distance_via: Mapping[NodeId, float], limit: int | None
) -> dict[NodeId, float]:
    """Keep only the ``limit`` best successors by marginal distance.

    ``limit=None`` keeps everything (MP), ``limit=1`` is the SP baseline,
    intermediate values support the successor-count ablation.  Ties break
    on the deterministic node order.
    """
    if limit is None or len(distance_via) <= limit:
        return dict(distance_via)
    if limit < 1:
        raise ValueError(f"successor limit must be >= 1, got {limit!r}")
    keep = sorted(distance_via, key=lambda k: (distance_via[k], repr(k)))
    return {k: distance_via[k] for k in keep[:limit]}
