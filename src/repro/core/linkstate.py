"""Link-state update (LSU) messages and topology tables.

The unit of information exchanged between routers is the LSU message: one
or more entries, each the triplet ``[h, t, d]`` (head, tail, cost of link
``h -> t``) tagged *add*, *change* or *delete*, plus an ACK flag used by
MPDA to acknowledge the previous LSU from that neighbor.

A :class:`TopologyTable` stores one router's view of some set of links.
Each router keeps a *main* table ``T_i`` (its own shortest-path tree after
MTU) and one *neighbor* table ``T_k_i`` per neighbor — a time-delayed copy
of that neighbor's main table.
"""

from __future__ import annotations

import enum
import itertools
import os
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.graph.shortest_paths import dijkstra
from repro.graph.topology import LinkId, NodeId

INFINITY = float("inf")

#: Shared empty mapping returned by no-copy view accessors.
_EMPTY_LINKS: Mapping = {}


class EntryOp(enum.Enum):
    """What an LSU entry does to the receiver's neighbor table."""

    ADD = "add"
    CHANGE = "change"
    DELETE = "delete"


@dataclass(frozen=True)
class LinkEntry:
    """One LSU entry: the link ``head -> tail`` with cost ``cost``."""

    op: EntryOp
    head: NodeId
    tail: NodeId
    cost: float = INFINITY

    def __str__(self) -> str:  # compact form used in protocol traces
        if self.op is EntryOp.DELETE:
            return f"-({self.head}->{self.tail})"
        sign = "+" if self.op is EntryOp.ADD else "~"
        return f"{sign}({self.head}->{self.tail}:{self.cost:.4g})"


class _LSUSequence:
    """The process-wide LSU sequence, resettable and fork-safe.

    ``seq`` exists for traces, causal tags and debugging only (PDA
    validates link information by distance to the head node, never by
    sequence number), but the causal tracker keys in-flight message
    tags by it, so reproducibility demands that a run's sequence stream
    be a function of the run alone: a fleet worker resets the counter
    before each cell (:func:`reset_lsu_sequence`), and a fork starts the
    child at 1 automatically (``os.register_at_fork`` below), so any
    cell replayed standalone sees byte-identical sequence numbers.
    """

    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count = itertools.count(1)

    def __call__(self) -> int:
        return next(self._count)

    def reset(self) -> None:
        self._count = itertools.count(1)


_sequence = _LSUSequence()


def reset_lsu_sequence() -> None:
    """Restart LSU sequence numbers at 1 (fleet cells, test isolation).

    Safe whenever no driver is mid-run: routers never compare sequence
    numbers, and the causal tag map is cleared at every quiescence.
    """
    _sequence.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=reset_lsu_sequence)


@dataclass(frozen=True)
class LSUMessage:
    """A link-state update from ``sender``.

    Attributes:
        sender: the originating router.
        entries: topology differences (may be empty for a pure ACK).
        ack: True when this message also acknowledges the last LSU
            received from the destination neighbor (MPDA only).
        seq: monotonically increasing id, for traces and debugging only —
            the protocol itself never inspects it (PDA validates link
            information by distance to the head node, not sequence
            numbers).
        snapshot: optional :class:`FrozenTree` of the sender's tree
            after applying ``entries`` — a shared-reference shortcut
            for receivers whose copy already matches the state the
            entries were diffed against.  Purely an acceleration: the
            entries alone carry the full protocol content.
    """

    sender: NodeId
    entries: tuple[LinkEntry, ...] = ()
    ack: bool = False
    seq: int = field(default_factory=_sequence)
    snapshot: "FrozenTree | None" = field(
        default=None, compare=False, repr=False
    )

    @property
    def is_pure_ack(self) -> bool:
        return self.ack and not self.entries

    def __str__(self) -> str:
        body = ",".join(str(e) for e in self.entries) or "empty"
        flag = "+ack" if self.ack else ""
        return f"LSU#{self.seq}[{self.sender}:{body}{flag}]"


class TopologyTable:
    """A set of directed links with costs — one router's view of a graph.

    Alongside the flat link map the table maintains two derived indexes,
    updated O(1) per mutation, that the protocol hot path leans on:

    - ``_by_head[h]``: the links leaving ``h`` (MTU copies a node's
      outgoing links from its preferred neighbor's table — a full link
      scan per node would make MTU quadratic);
    - ``_node_refs[n]``: how many link endpoints mention ``n`` (so
      :meth:`nodes` needs no scan), plus ``_in_links[n]`` (the links
      *into* ``n``) and ``_multi_in`` counting in-degree >= 2 nodes (so
      :meth:`distances_from` / :meth:`apply_incremental` can recognize
      when the table is a forest and skip Dijkstra entirely).
    """

    def __init__(self, links: Mapping[LinkId, float] | None = None) -> None:
        self._links: dict[LinkId, float] = {}
        self._by_head: dict[NodeId, dict[LinkId, float]] = {}
        self._node_refs: dict[NodeId, int] = {}
        self._in_links: dict[NodeId, dict[NodeId, float]] = {}
        self._multi_in = 0  # nodes with in-degree >= 2
        if links:
            for (head, tail), cost in links.items():
                self.set_link(head, tail, cost)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_link(self, head: NodeId, tail: NodeId, cost: float) -> bool:
        """Add or update a link; True when the table changed."""
        link_id = (head, tail)
        links = self._links
        old = links.get(link_id)
        if old is not None and old == cost:
            return False
        links[link_id] = cost
        self._by_head.setdefault(head, {})[link_id] = cost
        incoming = self._in_links.setdefault(tail, {})
        incoming[head] = cost
        if old is None:
            refs = self._node_refs
            refs[head] = refs.get(head, 0) + 1
            refs[tail] = refs.get(tail, 0) + 1
            if len(incoming) == 2:
                self._multi_in += 1
        return True

    def delete_link(self, head: NodeId, tail: NodeId) -> bool:
        """Remove a link; True when it existed."""
        link_id = (head, tail)
        if self._links.pop(link_id, None) is None:
            return False
        outgoing = self._by_head[head]
        del outgoing[link_id]
        if not outgoing:
            del self._by_head[head]
        refs = self._node_refs
        for node in (head, tail):
            left = refs[node] - 1
            if left:
                refs[node] = left
            else:
                del refs[node]
        incoming = self._in_links[tail]
        del incoming[head]
        if len(incoming) == 1:
            self._multi_in -= 1
        elif not incoming:
            del self._in_links[tail]
        return True

    def apply(self, entries: Iterable[LinkEntry]) -> bool:
        """Apply LSU entries in order; True when anything changed."""
        changed = False
        for entry in entries:
            if entry.op is EntryOp.DELETE:
                changed = self.delete_link(entry.head, entry.tail) or changed
            else:
                changed = (
                    self.set_link(entry.head, entry.tail, entry.cost) or changed
                )
        return changed

    def apply_incremental(
        self,
        entries: Iterable[LinkEntry],
        root: NodeId,
        dist: dict[NodeId, float],
    ) -> tuple[bool, set[NodeId] | None]:
        """Apply LSU entries and patch ``dist`` (distances from ``root``).

        ``dist`` must equal ``distances_from(root)`` for the pre-apply
        table; on the tree fast path it is updated in place to the
        post-apply distances and the set of nodes whose value changed
        (including nodes entering or leaving the table) is returned —
        exactly the rows a full recompute-and-compare would flag.

        Returns ``(table_changed, changed_nodes)``.  ``changed_nodes``
        is None when the post-apply table is not a tree rooted at
        ``root`` (mid-update transient); ``dist`` is then untouched and
        the caller must fall back to :meth:`distances_from`.

        Only subtrees below modified links are walked, and a branch is
        pruned as soon as a recomputed value comes out unchanged — an
        LSU touching k links costs O(affected region), not O(table).
        """
        refs = self._node_refs
        changed_any = False
        seeds: set[NodeId] = set()
        removed: set[NodeId] = set()
        entered: set[NodeId] = set()
        for entry in entries:
            head, tail = entry.head, entry.tail
            if entry.op is EntryOp.DELETE:
                if not self.delete_link(head, tail):
                    continue
                changed_any = True
                seeds.add(tail)
                for node in (head, tail):
                    if node not in refs:
                        removed.add(node)
                        entered.discard(node)
            else:
                if not self.set_link(head, tail, entry.cost):
                    continue
                changed_any = True
                # The head is seeded too: its value is normally
                # unaffected by an outgoing link (pruned on first
                # check), but a node deleted and re-added within one
                # LSU would otherwise keep a stale distance.
                seeds.add(tail)
                seeds.add(head)
                for node in (head, tail):
                    if node not in dist and node not in entered:
                        entered.add(node)
                        removed.discard(node)
        if not changed_any:
            return False, set()
        if self._multi_in or root in self._in_links:
            return True, None
        changed: set[NodeId] = set()
        for node in removed:
            if node != root and dist.pop(node, None) is not None:
                changed.add(node)
        for node in entered:
            if node in refs and node not in dist:
                dist[node] = INFINITY
                changed.add(node)
        in_links = self._in_links
        by_head = self._by_head
        stack = [t for t in seeds if t in refs]
        while stack:
            node = stack.pop()
            if node == root:
                continue  # the root's own distance is pinned at 0.0
            incoming = in_links.get(node)
            if incoming:
                ((head, cost),) = incoming.items()
                value = dist.get(head, INFINITY) + cost
            else:
                value = INFINITY
            if dist.get(node) != value:
                dist[node] = value
                changed.add(node)
                outgoing = by_head.get(node)
                if outgoing:
                    for _, tail in outgoing:
                        stack.append(tail)
        return True, changed

    def clear(self) -> None:
        self._links.clear()
        self._by_head.clear()
        self._node_refs.clear()
        self._in_links.clear()
        self._multi_in = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cost(self, head: NodeId, tail: NodeId) -> float:
        """Cost of the link, or infinity when absent."""
        return self._links.get((head, tail), INFINITY)

    def links(self) -> dict[LinkId, float]:
        """All links as a plain cost map (a copy)."""
        return dict(self._links)

    def links_with_head(self, head: NodeId) -> dict[LinkId, float]:
        """The links leaving ``head`` — what MTU copies per node."""
        return dict(self._by_head.get(head, ()))

    def links_with_head_view(self, head: NodeId) -> Mapping[LinkId, float]:
        """Read-only view of the links leaving ``head`` (no copy).

        The MTU inner loop only iterates the result; callers must not
        mutate it or hold it across table mutations.
        """
        return self._by_head.get(head, _EMPTY_LINKS)

    def links_view(self) -> Mapping[LinkId, float]:
        """The live link map (read-only; do not hold across mutations)."""
        return self._links

    def nodes(self) -> set[NodeId]:
        """Every node appearing as a head or tail."""
        return set(self._node_refs)

    def nodes_view(self):
        """Iterable view of the node set (no copy; do not hold)."""
        return self._node_refs.keys()

    def nodes_map_view(self) -> Mapping[NodeId, object]:
        """The node set as a mapping (values meaningless; no copy).

        Lets callers merge node sets with one C-level ``dict.update``
        instead of materializing an intermediate ``dict.fromkeys``.
        """
        return self._node_refs

    def distances_from(
        self, root: NodeId, nodes: list[NodeId] | None = None
    ) -> dict[NodeId, float]:
        """Shortest distances from ``root`` within this table.

        When the table is a forest with no link into ``root`` — the
        steady state for a neighbor table, which holds that neighbor's
        shortest-path *tree* — every reachable node has exactly one path
        from ``root``, so a single propagation pass reproduces Dijkstra's
        distances exactly (the same additions in root-outward order;
        nodes on unreachable components stay at infinity either way).
        Anything else (mid-update transients, raw faulty channels) falls
        back to Dijkstra.
        """
        if nodes is None and not self._multi_in and root not in self._in_links:
            dist = dict.fromkeys(self._node_refs, INFINITY)
            dist[root] = 0.0
            by_head = self._by_head
            stack = [root]
            while stack:
                node = stack.pop()
                outgoing = by_head.get(node)
                if outgoing is None:
                    continue
                d = dist[node]
                for (_, tail), cost in outgoing.items():
                    dist[tail] = d + cost
                    stack.append(tail)
            return dist
        return dijkstra(self._links, root, nodes=nodes)[0]

    def copy(self) -> "TopologyTable":
        return TopologyTable(self._links)

    def diff(self, new: "TopologyTable") -> tuple[LinkEntry, ...]:
        """LSU entries that transform this table into ``new``.

        This is MTU step 8: "Compare oldT with T and note all
        differences."
        """
        return self.diff_links(new._links)

    def diff_links(
        self, new_links: Mapping[LinkId, float]
    ) -> tuple[LinkEntry, ...]:
        """LSU entries that transform this table into a plain link map.

        Same comparison as :meth:`diff` without requiring the target to
        be wrapped in a table — MTU diffs its freshly computed tree and
        then :meth:`apply`\\ s the entries to patch the main table in
        place rather than rebuilding it.
        """
        entries: list[LinkEntry] = []
        links = self._links
        for link_id, cost in new_links.items():
            old_cost = links.get(link_id)
            if old_cost is None:
                entries.append(LinkEntry(EntryOp.ADD, *link_id, cost))
            elif old_cost != cost:
                entries.append(LinkEntry(EntryOp.CHANGE, *link_id, cost))
        for link_id in links:
            if link_id not in new_links:
                entries.append(LinkEntry(EntryOp.DELETE, *link_id))
        return tuple(entries)

    def full_dump(self) -> tuple[LinkEntry, ...]:
        """ADD entries for every link — sent to a newly-up neighbor."""
        return tuple(
            LinkEntry(EntryOp.ADD, head, tail, cost)
            for (head, tail), cost in self._links.items()
        )

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[LinkId]:
        return iter(self._links)

    def __contains__(self, link_id: LinkId) -> bool:
        return link_id in self._links

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopologyTable):
            return NotImplemented
        return self._links == other._links

    def __repr__(self) -> str:
        return f"TopologyTable({len(self._links)} links)"


class FrozenTree:
    """An immutable tree snapshot flooded alongside an LSU.

    Built once by the sender when MTU changes its tree, and shared by
    reference with every receiver of the flood.  A receiver may adopt it
    in place of replaying the LSU entries exactly when its current copy
    of the sender's table equals the state the entries were diffed
    against — either the copy *is* the sender's previous snapshot (same
    object, recognized by version), or the copy is empty and the entries
    rebuild the tree from scratch (``applies_to_empty``).  In both cases
    the swap lands the receiver on the same table content and the same
    distance values the entry replay would produce, by construction, at
    O(1) instead of O(entries + affected region).  Any other receiver
    state — duplicated or reordered delivery over a raw faulty channel,
    the ``INCREMENTAL = False`` reference mode — ignores the snapshot
    and takes the entry path.

    Instances are shared across routers and must never be mutated; a
    receiver that needs to edit its copy materializes a mutable
    :class:`TopologyTable` with :meth:`thaw` first.

    Attributes:
        version: the sender's table version this snapshot captures.
        prev_version: the version the LSU entries were diffed against
            (None for a full-table greeting dump).
        applies_to_empty: True when folding the entries onto an *empty*
            table yields exactly this snapshot's content (full dumps,
            and diffs taken against an empty tree).
        dist: distances from the sender within the tree (tree nodes
            plus the sender) — what the receiver's NTU would compute.
        changed_rows: destinations whose ``dist`` entry differs from
            the predecessor state's, i.e. the row diff the receiver's
            NTU would report.
    """

    __slots__ = (
        "version",
        "prev_version",
        "applies_to_empty",
        "dist",
        "changed_rows",
        "_by_head",
        "_nodes",
        "_n_links",
    )

    def __init__(
        self,
        *,
        version: int,
        prev_version: int | None,
        applies_to_empty: bool,
        dist: dict[NodeId, float],
        changed_rows: set[NodeId],
        by_head: dict[NodeId, dict[LinkId, float]],
        nodes: dict[NodeId, None],
        n_links: int,
    ) -> None:
        self.version = version
        self.prev_version = prev_version
        self.applies_to_empty = applies_to_empty
        self.dist = dist
        self.changed_rows = changed_rows
        self._by_head = by_head
        self._nodes = nodes
        self._n_links = n_links

    @classmethod
    def from_tree(
        cls,
        tree: Mapping[LinkId, float],
        root: NodeId,
        dist: Mapping[NodeId, float],
        *,
        version: int,
        prev_version: int | None,
        applies_to_empty: bool,
        prev_flood: Mapping[NodeId, float],
    ) -> "FrozenTree":
        """Freeze MTU's ``(dist, tree)`` result for flooding.

        ``dist`` may cover the sender's whole node universe; the
        snapshot keeps only the tree's nodes (all finite) plus the
        root, matching what :meth:`TopologyTable.distances_from` would
        return on the receiver.  ``prev_flood`` is the same restricted
        view of the predecessor state, used to derive ``changed_rows``.
        """
        # ``tree`` is a shortest-path tree rooted at ``root``: every node
        # but the root appears exactly once as a tail, and every head is
        # the root or some tail — so one fused pass over the links
        # collects the groups and the restricted distances together, and
        # the distance map's key set doubles as the node set.
        by_head: dict[NodeId, dict[LinkId, float]] = {}
        flood: dict[NodeId, float] = {root: 0.0}
        group_of = by_head.get
        for link_id, cost in tree.items():
            head, tail = link_id
            group = group_of(head)
            if group is None:
                group = by_head[head] = {}
            group[link_id] = cost
            flood[tail] = dist[tail]
        prev_get = prev_flood.get
        changed = {j for j, v in flood.items() if prev_get(j) != v}
        for j in prev_flood:
            if j not in flood:
                changed.add(j)
        return cls(
            version=version,
            prev_version=prev_version,
            applies_to_empty=applies_to_empty,
            dist=flood,
            changed_rows=changed,
            by_head=by_head,
            nodes=flood,
            n_links=len(tree),
        )

    def as_full(self, root: NodeId) -> "FrozenTree":
        """A full-dump variant of this snapshot (greeting messages).

        Shares every underlying mapping; only the acceptance metadata
        differs: it applies to an empty table and every row counts as
        changed relative to that empty baseline.
        """
        changed = set(self.dist)
        changed.discard(root)
        return FrozenTree(
            version=self.version,
            prev_version=None,
            applies_to_empty=True,
            dist=self.dist,
            changed_rows=changed,
            by_head=self._by_head,
            nodes=self._nodes,
            n_links=self._n_links,
        )

    def thaw(self) -> TopologyTable:
        """A mutable :class:`TopologyTable` with this snapshot's links."""
        table = TopologyTable()
        for group in self._by_head.values():
            for (head, tail), cost in group.items():
                table.set_link(head, tail, cost)
        return table

    # Read-only surface shared with TopologyTable (what MTU touches).
    def links_with_head_view(self, head: NodeId) -> Mapping[LinkId, float]:
        return self._by_head.get(head, _EMPTY_LINKS)

    def nodes_view(self):
        return self._nodes.keys()

    def nodes_map_view(self):
        return self._nodes

    def links(self) -> dict[LinkId, float]:
        out: dict[LinkId, float] = {}
        for group in self._by_head.values():
            out.update(group)
        return out

    def __len__(self) -> int:
        return self._n_links

    def __repr__(self) -> str:
        return f"FrozenTree(v{self.version}, {self._n_links} links)"
