"""Link-state update (LSU) messages and topology tables.

The unit of information exchanged between routers is the LSU message: one
or more entries, each the triplet ``[h, t, d]`` (head, tail, cost of link
``h -> t``) tagged *add*, *change* or *delete*, plus an ACK flag used by
MPDA to acknowledge the previous LSU from that neighbor.

A :class:`TopologyTable` stores one router's view of some set of links.
Each router keeps a *main* table ``T_i`` (its own shortest-path tree after
MTU) and one *neighbor* table ``T_k_i`` per neighbor — a time-delayed copy
of that neighbor's main table.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.graph.shortest_paths import dijkstra
from repro.graph.topology import LinkId, NodeId

INFINITY = float("inf")


class EntryOp(enum.Enum):
    """What an LSU entry does to the receiver's neighbor table."""

    ADD = "add"
    CHANGE = "change"
    DELETE = "delete"


@dataclass(frozen=True)
class LinkEntry:
    """One LSU entry: the link ``head -> tail`` with cost ``cost``."""

    op: EntryOp
    head: NodeId
    tail: NodeId
    cost: float = INFINITY

    def __str__(self) -> str:  # compact form used in protocol traces
        if self.op is EntryOp.DELETE:
            return f"-({self.head}->{self.tail})"
        sign = "+" if self.op is EntryOp.ADD else "~"
        return f"{sign}({self.head}->{self.tail}:{self.cost:.4g})"


_sequence = itertools.count(1)


@dataclass(frozen=True)
class LSUMessage:
    """A link-state update from ``sender``.

    Attributes:
        sender: the originating router.
        entries: topology differences (may be empty for a pure ACK).
        ack: True when this message also acknowledges the last LSU
            received from the destination neighbor (MPDA only).
        seq: monotonically increasing id, for traces and debugging only —
            the protocol itself never inspects it (PDA validates link
            information by distance to the head node, not sequence
            numbers).
    """

    sender: NodeId
    entries: tuple[LinkEntry, ...] = ()
    ack: bool = False
    seq: int = field(default_factory=lambda: next(_sequence))

    @property
    def is_pure_ack(self) -> bool:
        return self.ack and not self.entries

    def __str__(self) -> str:
        body = ",".join(str(e) for e in self.entries) or "empty"
        flag = "+ack" if self.ack else ""
        return f"LSU#{self.seq}[{self.sender}:{body}{flag}]"


class TopologyTable:
    """A set of directed links with costs — one router's view of a graph."""

    def __init__(self, links: Mapping[LinkId, float] | None = None) -> None:
        self._links: dict[LinkId, float] = dict(links) if links else {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_link(self, head: NodeId, tail: NodeId, cost: float) -> None:
        self._links[(head, tail)] = cost

    def delete_link(self, head: NodeId, tail: NodeId) -> None:
        self._links.pop((head, tail), None)

    def apply(self, entries: Iterable[LinkEntry]) -> None:
        """Apply LSU entries in order."""
        for entry in entries:
            if entry.op is EntryOp.DELETE:
                self.delete_link(entry.head, entry.tail)
            else:
                self.set_link(entry.head, entry.tail, entry.cost)

    def clear(self) -> None:
        self._links.clear()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cost(self, head: NodeId, tail: NodeId) -> float:
        """Cost of the link, or infinity when absent."""
        return self._links.get((head, tail), INFINITY)

    def links(self) -> dict[LinkId, float]:
        """All links as a plain cost map (a copy)."""
        return dict(self._links)

    def links_with_head(self, head: NodeId) -> dict[LinkId, float]:
        """The links leaving ``head`` — what MTU copies per node."""
        return {
            link_id: cost
            for link_id, cost in self._links.items()
            if link_id[0] == head
        }

    def nodes(self) -> set[NodeId]:
        """Every node appearing as a head or tail."""
        out: set[NodeId] = set()
        for head, tail in self._links:
            out.add(head)
            out.add(tail)
        return out

    def distances_from(
        self, root: NodeId, nodes: list[NodeId] | None = None
    ) -> dict[NodeId, float]:
        """Shortest distances from ``root`` within this table."""
        return dijkstra(self._links, root, nodes=nodes)[0]

    def copy(self) -> "TopologyTable":
        return TopologyTable(self._links)

    def diff(self, new: "TopologyTable") -> tuple[LinkEntry, ...]:
        """LSU entries that transform this table into ``new``.

        This is MTU step 8: "Compare oldT with T and note all
        differences."
        """
        entries: list[LinkEntry] = []
        for link_id, cost in new._links.items():
            old_cost = self._links.get(link_id)
            head, tail = link_id
            if old_cost is None:
                entries.append(LinkEntry(EntryOp.ADD, head, tail, cost))
            elif old_cost != cost:
                entries.append(LinkEntry(EntryOp.CHANGE, head, tail, cost))
        for link_id in self._links:
            if link_id not in new._links:
                head, tail = link_id
                entries.append(LinkEntry(EntryOp.DELETE, head, tail))
        return tuple(entries)

    def full_dump(self) -> tuple[LinkEntry, ...]:
        """ADD entries for every link — sent to a newly-up neighbor."""
        return tuple(
            LinkEntry(EntryOp.ADD, head, tail, cost)
            for (head, tail), cost in self._links.items()
        )

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[LinkId]:
        return iter(self._links)

    def __contains__(self, link_id: LinkId) -> bool:
        return link_id in self._links

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopologyTable):
            return NotImplemented
        return self._links == other._links

    def __repr__(self) -> str:
        return f"TopologyTable({len(self._links)} links)"
