"""The paper's contribution: near-optimum-delay routing.

Components (Section 4 of the paper):

- :mod:`repro.core.costs` — marginal-delay link-cost estimators;
- :mod:`repro.core.allocation` — routing parameters and the IH / AH
  flow-allocation heuristics (Figs. 6 and 7);
- :mod:`repro.core.lfi` — the Loop-Free Invariant conditions (Eqs. 16-17)
  and their checker (Theorem 1);
- :mod:`repro.core.linkstate` — LSU messages and topology tables;
- :mod:`repro.core.pda` — the Partial-topology Dissemination Algorithm
  (Figs. 1-3);
- :mod:`repro.core.mpda` — the Multipath PDA (Fig. 4) with one-hop
  ACTIVE/PASSIVE synchronization enforcing the LFI conditions;
- :mod:`repro.core.driver` — a deterministic message-passing driver for
  running a network of protocol routers to quiescence;
- :mod:`repro.core.transport` — the pluggable channel model under the
  driver: the paper's perfect links, a seeded faulty wire, and the
  reliable shim that enforces the paper's delivery assumption;
- :mod:`repro.core.spf` — the paper's single-path (SP) restriction;
- :mod:`repro.core.router` — the assembled MP router (MPDA + IH/AH with
  the two-timescale Tl / Ts update discipline).
"""

from repro.core.allocation import (
    AllocationTable,
    ah,
    ih,
    validate_property1,
)
from repro.core.costs import MM1CostEstimator, OnlineCostEstimator
from repro.core.lfi import LFIViolation, check_lfi, lfi_successors
from repro.core.linkstate import LinkEntry, LSUMessage, TopologyTable
from repro.core.mpda import MPDARouter
from repro.core.pda import PDARouter
from repro.core.driver import ProtocolDriver
from repro.core.router import MPRouting
from repro.core.spf import single_path_successors
from repro.core.transport import (
    FaultyChannel,
    PerfectChannel,
    ReliableTransport,
    Transport,
)

__all__ = [
    "MM1CostEstimator",
    "OnlineCostEstimator",
    "AllocationTable",
    "ih",
    "ah",
    "validate_property1",
    "LFIViolation",
    "check_lfi",
    "lfi_successors",
    "LinkEntry",
    "LSUMessage",
    "TopologyTable",
    "PDARouter",
    "MPDARouter",
    "ProtocolDriver",
    "MPRouting",
    "single_path_successors",
    "Transport",
    "PerfectChannel",
    "FaultyChannel",
    "ReliableTransport",
]
