"""MPDA — the Multipath Partial-topology Dissemination Algorithm (Fig. 4).

MPDA is PDA plus the machinery that makes the successor sets *loop-free
at every instant* (Theorem 3):

- every LSU a router sends is acknowledged by all its neighbors before
  the router sends the next one (one-hop synchronization, unlike the
  network-wide synchronization of diffusing computations);
- a router is **ACTIVE** while waiting for those ACKs and **PASSIVE**
  otherwise; events received while ACTIVE update the neighbor tables but
  the main-table update (MTU) is deferred to the ACTIVE→PASSIVE
  transition;
- the **feasible distance** :math:`FD^i_j` is kept no larger than any
  distance value this router has *reported* that a neighbor may still
  hold: lowered to ``min(FD, D)`` at every PASSIVE-state MTU, and reset
  to ``min(D_before, D_after)`` at the ACTIVE→PASSIVE transition (at that
  point every neighbor has acknowledged — hence applied — the last
  report, so older history is irrelevant);
- successors are chosen by the LFI rule :math:`S^i_j =
  \\{k : D^i_{jk} < FD^i_j\\}` (Eq. 17) after *every* event.

:func:`check_safety` verifies the LFI conditions across a whole network
of live routers, including in-flight states; the simulation drivers call
it after every event to machine-check Theorem 3.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.core.lfi import check_lfi
from repro.core.linkstate import INFINITY, LSUMessage
from repro.core.pda import PDARouter
from repro.exceptions import LoopError
from repro.graph.topology import NodeId


class RouterState(enum.Enum):
    """MPDA synchronization state."""

    PASSIVE = "passive"
    ACTIVE = "active"


class MPDARouter(PDARouter):
    """One router running MPDA.

    In addition to the PDA state, keeps the feasible distances
    ``feasible_distance[j]`` (:math:`FD^i_j`), the successor sets
    ``successor_sets[j]`` (:math:`S^i_j`), and the ACTIVE/PASSIVE
    synchronization state with the set of neighbors whose ACK is pending.
    """

    #: MPDA keeps a dirty-destination set, so NTU must report which
    #: neighbor-table rows an LSU actually moved (see PDARouter).
    _TRACK_ROWS = True

    def __init__(self, node_id: NodeId) -> None:
        super().__init__(node_id)
        self.state = RouterState.PASSIVE
        #: Per-neighbor count of LSUs sent and not yet acknowledged.  A
        #: counter (not a set) because a newly-up neighbor receives a
        #: full-table dump in addition to the regular diff floods.
        self.pending_acks: dict[NodeId, int] = {}
        self.feasible_distance: dict[NodeId, float] = {}
        self._successor_sets: dict[NodeId, set[NodeId]] = {}
        #: True while a recorded input change has not been folded into
        #: ``_successor_sets`` yet; the property flushes on read.
        self._succ_stale = False
        self.transitions = 0  # PASSIVE -> ACTIVE count, a protocol metric
        self.acks_received = 0  # consumed ACKs, one per LSU round-trip
        #: dest -> causal event id of the last successor-set change
        #: (written by the driver when causal tracing is active).
        self.succ_provenance: dict[NodeId, int | None] = {}
        #: Destinations whose LFI inputs (a neighbor row or FD entry)
        #: changed since the successor sets were last recomputed.
        self._dirty_dests: set[NodeId] = set()
        #: When True the next recomputation rebuilds every destination
        #: (initial state, or the adjacent-link set itself changed).
        self._dirty_all = True
        #: True while ``FD_j = min(FD_j, D_j)`` is known to be a no-op:
        #: set after each lowering/reset, cleared when MTU recomputes
        #: the distances it folds in.
        self._fd_clean = False

    def _note_rows_changed(self, destinations) -> None:
        if not self._dirty_all:
            self._dirty_dests.update(destinations)

    def _links_changed(self) -> None:
        # The successor rule quantifies over the adjacent-link set, so
        # membership changes can move any destination's set.
        self._dirty_all = True
        super()._links_changed()

    def _distances_recomputed(self) -> None:
        self._fd_clean = False

    def _outstanding(self) -> bool:
        """True while any sent LSU still awaits its acknowledgment."""
        return any(count > 0 for count in self.pending_acks.values())

    def _note_sent(self, neighbor: NodeId) -> None:
        self.pending_acks[neighbor] = self.pending_acks.get(neighbor, 0) + 1
        self.state = RouterState.ACTIVE

    def _greet(self, neighbor: NodeId) -> None:
        dump = self.main_table.full_dump()
        if dump:
            self._send(
                neighbor,
                LSUMessage(
                    self.node_id, dump, snapshot=self._full_snapshot()
                ),
            )
            self._note_sent(neighbor)
            self.transitions += 1

    # ------------------------------------------------------------------
    # events (PDA entry points reuse _after_ntu, overridden below)
    # ------------------------------------------------------------------
    def receive(self, message: LSUMessage) -> None:
        """An LSU arrived; it may acknowledge our last LSU and/or carry
        topology entries that themselves require an acknowledgment."""
        sender = message.sender
        if sender not in self.link_costs:
            return  # stale: the adjacent link failed meanwhile
        self.lsu_received += 1
        if message.ack and self.pending_acks.get(sender, 0) > 0:
            self.pending_acks[sender] -= 1
            self.acks_received += 1
        if message.entries:
            self._ntu_apply_lsu(message)
            self._after_ntu(lsu_sender=sender)
        else:
            # Pure ACK: no table changes and nothing to acknowledge back
            # (acknowledging ACKs would chatter forever).
            self._after_ntu(lsu_sender=None)

    def link_down(self, neighbor: NodeId) -> None:
        """Adjacent link failed: pending ACKs from that neighbor are
        treated as received (the paper's deadlock-avoidance rule)."""
        self.pending_acks.pop(neighbor, None)
        super().link_down(neighbor)

    # ------------------------------------------------------------------
    # the Fig. 4 state machine
    # ------------------------------------------------------------------
    def _after_ntu(self, lsu_sender: NodeId | None) -> None:
        self.route_version += 1
        changes: tuple = ()
        if self.state is RouterState.PASSIVE:
            # Step 2: update T and lower the feasible distances.
            changes = self._mtu()
            self._lower_feasible_distances()
        elif not self._outstanding():
            # Step 3: the last ACK arrived — leave the ACTIVE phase.
            before = dict(self.distances)
            self.state = RouterState.PASSIVE
            changes = self._mtu()
            self._reset_feasible_distances(before)
        # else: ACTIVE with ACKs outstanding — MTU is deferred.

        # Step 4: successor sets from the LFI rule.  The sets feed only
        # the forwarding layer — no protocol message depends on them —
        # so the incremental mode defers the recomputation until a
        # reader (the router manager, an auditor, a test) actually looks
        # at them; recomputing once per accumulated dirty set yields the
        # same sets as recomputing after every event.
        if self.INCREMENTAL:
            self._succ_stale = True
        else:
            self._recompute_successors()

        # Steps 5-8: flood changes (going ACTIVE) and/or acknowledge.
        if changes and self.link_costs:
            self.transitions += 1
            for nbr in self.link_costs:
                self._note_sent(nbr)
            self._broadcast(changes, ack_to=lsu_sender)
        elif lsu_sender is not None:
            self._send(lsu_sender, LSUMessage(self.node_id, (), ack=True))

    def _lower_feasible_distances(self) -> None:
        """Fig. 4 step 2b: ``FD_j = min(FD_j, D_j)`` for every known j.

        Lowering only reads ``self.distances``; once it has run, it stays
        a no-op until MTU actually recomputes those distances (pure-ACK
        events leave them untouched), so ``_fd_clean`` short-circuits it.
        """
        if self._fd_clean and self.INCREMENTAL:
            return
        dirty = self._dirty_dests
        me = self.node_id
        feasible = self.feasible_distance
        for j, d in self.distances.items():
            if j == me or d == INFINITY:
                continue
            fd = feasible.get(j, INFINITY)
            if d < fd:
                feasible[j] = d
                dirty.add(j)
        self._fd_clean = True

    def _reset_feasible_distances(
        self, before: Mapping[NodeId, float]
    ) -> None:
        """Fig. 4 step 3c: ``FD_j = min(D_j^before, D_j^after)``.

        Unlike step 2b this may *raise* FD: every neighbor has ACKed the
        last LSU, so only the just-reported and the about-to-be-reported
        distances can still be in any neighbor's tables.
        """
        dirty = self._dirty_dests
        feasible = self.feasible_distance
        distances = self.distances
        me = self.node_id
        before_get = before.get
        for j, d in distances.items():
            if j == me:
                continue
            b = before_get(j, INFINITY)
            fd = b if b < d else d
            if fd == INFINITY:
                if feasible.pop(j, None) is not None:
                    dirty.add(j)
            else:
                if feasible.get(j) != fd:
                    dirty.add(j)
                feasible[j] = fd
        for j, fd in before.items():
            if j == me or j in distances:
                continue
            if fd == INFINITY:
                if feasible.pop(j, None) is not None:
                    dirty.add(j)
            else:
                if feasible.get(j) != fd:
                    dirty.add(j)
                feasible[j] = fd
        for j in [
            j for j in feasible if j not in distances and j not in before
        ]:
            del feasible[j]
            dirty.add(j)
        # The reset already folded the current distances in (FD <= D for
        # every entry), so the next step-2b lowering is a no-op.
        self._fd_clean = True

    def _recompute_successors(self) -> None:
        """Fig. 4 step 4: :math:`S_j = \\{k : D^i_{jk} < FD^i_j\\}`.

        A destination with no feasible-distance entry has
        :math:`FD = \\infty`; neighbors with finite reported distance
        are then usable — safe because this router has never reported a
        finite distance to that destination, so no neighbor can be
        routing through it (see module docstring).

        The rule for destination *j* reads only *j*'s feasible distance,
        *j*'s row of each neighbor table, and the adjacent-link set; NTU
        and the FD updates record which of those moved, so only the
        dirty destinations are recomputed.  The full rebuild below is
        kept verbatim for the initial pass, link-set changes, and the
        ``INCREMENTAL = False`` reference mode.
        """
        if self._dirty_all or not self.INCREMENTAL:
            self._dirty_all = False
            self._dirty_dests.clear()
            destinations: set[NodeId] = set(self.feasible_distance)
            for dists in self.nbr_distances.values():
                destinations.update(dists)
            destinations.discard(self.node_id)

            successors: dict[NodeId, set[NodeId]] = {}
            feasible = self.feasible_distance
            all_rows = [
                (k, self.nbr_distances.get(k)) for k in self.link_costs
            ]
            for j in destinations:
                fd = feasible.get(j, INFINITY)
                chosen = set()
                for k, row in all_rows:
                    if k == j:
                        if fd > 0.0:
                            chosen.add(k)
                    elif row is not None:
                        dist_kj = row.get(j)
                        if dist_kj is not None and dist_kj < fd:
                            chosen.add(k)
                if chosen:
                    successors[j] = chosen
            self._successor_sets = successors
            return

        dirty = self._dirty_dests
        if not dirty:
            return
        self._dirty_dests = set()
        me = self.node_id
        feasible = self.feasible_distance
        successors = self._successor_sets
        nbr_distances = self.nbr_distances
        rows = [(k, nbr_distances.get(k)) for k in self.link_costs]
        for j in dirty:
            if j == me:
                continue
            fd = feasible.get(j, INFINITY)
            chosen = set()
            for k, row in rows:
                if k == j:
                    if fd > 0.0:
                        chosen.add(k)
                elif row is not None:
                    dist_kj = row.get(j)
                    if dist_kj is not None and dist_kj < fd:
                        chosen.add(k)
            if chosen:
                successors[j] = chosen
            else:
                successors.pop(j, None)

    # ------------------------------------------------------------------
    # forwarding-layer queries
    # ------------------------------------------------------------------
    @property
    def successor_sets(self) -> dict[NodeId, set[NodeId]]:
        """:math:`S^i_j` per destination, recomputed lazily on read."""
        if self._succ_stale:
            self._succ_stale = False
            self._recompute_successors()
        return self._successor_sets

    def successors(self, destination: NodeId) -> set[NodeId]:
        """:math:`S^i_j` — may be empty when no loop-free route is known."""
        return set(self.successor_sets.get(destination, ()))

    def successor_snapshot(self) -> dict[NodeId, set[NodeId]]:
        """A diffable copy of the current successor sets.

        A shallow copy suffices: recomputation installs fresh set
        objects (or pops the key) and never mutates a stored set in
        place, so the snapshot's values stay frozen-in-time.
        """
        return dict(self.successor_sets)

    def marginal_distance_via(
        self, destination: NodeId
    ) -> dict[NodeId, float]:
        """:math:`D^i_{jk} + l^i_k` for each successor — IH/AH's input."""
        return {
            k: self.neighbor_distance(k, destination) + self.link_costs[k]
            for k in self.successors(destination)
            if k in self.link_costs
        }

    def best_successor(self, destination: NodeId) -> NodeId | None:
        """The single best successor — how the paper derives its SP
        baseline ("restrict our multipath routing algorithm to use only
        the best successor")."""
        via = self.marginal_distance_via(destination)
        if not via:
            return None
        return min(via, key=lambda k: (via[k], repr(k)))

    def is_passive(self) -> bool:
        return self.state is RouterState.PASSIVE

    def __repr__(self) -> str:
        return f"MPDARouter({self.node_id!r}, {self.state.value})"


def check_safety(
    routers: Mapping[NodeId, MPDARouter],
    destination: NodeId | None = None,
) -> None:
    """Machine-check Theorem 3 over live router states.

    Verifies, for each destination (or just ``destination``):

    1. Eq. (17): every successor's reported distance is below the
       router's feasible distance;
    2. Eq. (16), in its reported-value form: each router's feasible
       distance never exceeds the copy of *its own* distance held by any
       neighbor (that copy is what neighbors base their choices on);
    3. the global successor graph is acyclic.

    Raises:
        LFIViolation / LoopError: if the invariant is broken.
    """
    destinations: set[NodeId] = set()
    if destination is not None:
        destinations.add(destination)
    else:
        for router in routers.values():
            destinations.update(router.successor_sets)

    for j in destinations:
        feasible = {
            i: router.feasible_distance.get(j, INFINITY)
            for i, router in routers.items()
            if i != j
        }
        reported = {
            i: {
                k: router.neighbor_distance(k, j)
                for k in router.up_neighbors()
            }
            for i, router in routers.items()
        }
        successors = {
            i: router.successors(j) for i, router in routers.items()
        }
        check_destination(j, feasible, reported, successors)


def check_destination(
    j: NodeId,
    feasible: Mapping[NodeId, float],
    reported: Mapping[NodeId, Mapping[NodeId, float]],
    successors: Mapping[NodeId, set[NodeId]],
) -> None:
    """The per-destination body of :func:`check_safety`.

    Takes the extracted state maps instead of live routers, so callers
    that cache those maps (the incremental invariant auditor) can verify
    a single destination without touching every router:

    - ``feasible[i]``: :math:`FD^i_j` (no entry for ``i == j``);
    - ``reported[i][k]``: :math:`D^i_{jk}` for each up neighbor ``k``;
    - ``successors[i]``: :math:`S^i_j`.

    Raises:
        LFIViolation / LoopError: if the invariant is broken.
    """
    check_lfi(j, feasible, reported, successors)

    # Eq. (16) cross-check: FD_j^i <= (i's distance to j as held at
    # every neighbor k).  reported[i]'s keys are exactly i's up
    # neighbors, so the neighbor walk needs no router access.
    for i, fd in feasible.items():
        if fd == INFINITY:
            continue
        for k in reported.get(i, ()):
            peer_view = reported.get(k)
            if peer_view is None:
                continue
            held = peer_view.get(i)
            if held is None:
                continue
            if fd > held + 1e-12:
                raise LoopError(
                    f"router {i!r}: FD to {j!r} is {fd!r} but neighbor "
                    f"{k!r} holds distance {held!r} (Eq. 16 violated)"
                )
