"""Process-safe warn-once registry for deprecated entry points.

The deprecated runner shims announce themselves once rather than once
per call (sweeps invoke them hundreds of times).  "Once" used to mean a
module-level boolean, which breaks in two ways the experiment fleet
exposed:

- a forked worker inherits the parent's ``True`` and never warns, even
  though it is a brand-new process whose logs never carried the notice;
- two fleet cells executed sequentially in one worker share the flag,
  so whether a cell warns depends on which cells ran before it — state
  leaking between supposedly independent cells.

This registry keys the flags by ``os.getpid()`` (a fork starts fresh
automatically) and exposes :func:`reset` so the fleet worker can give
every cell the exact per-process behavior it would see standalone.
"""

from __future__ import annotations

import os
import warnings

#: (pid, key) pairs that have already warned in this process.
_warned: set[tuple[int, str]] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a DeprecationWarning once per process.

    Returns True when the warning was actually issued (the first call
    for ``key`` in this process since the last :func:`reset`).
    """
    entry = (os.getpid(), key)
    if entry in _warned:
        return False
    _warned.add(entry)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset() -> None:
    """Forget every warn-once flag (fleet cells, test isolation)."""
    _warned.clear()
