"""Network topology model.

A :class:`Topology` is a set of nodes joined by *directed* links.  Every
link carries the two physical attributes the paper's delay model needs:

- ``capacity`` — transmission capacity :math:`C_{ik}` in packets per
  second (see :mod:`repro.units`: the library works in packet units so
  the M/M/1 term :math:`1/(C-f)` is a per-packet delay);
- ``prop_delay`` — propagation delay :math:`\\tau_{ik}` in seconds.

Links in the paper are bidirectional "with possibly different costs in
each direction" (Section 2.1), so the usual way to build a network is
:meth:`Topology.add_duplex_link`, which creates the two directed links at
once.  Dynamic link *costs* (marginal delays) are deliberately not stored
here: they belong to the routing layer and are passed around as explicit
cost maps, so one immutable topology can back many concurrent experiments.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import TopologyError

NodeId = Hashable
LinkId = tuple[NodeId, NodeId]

#: Default link capacity: 10 Mb/s in packets/s (1250 pkt/s at 1000-byte
#: packets) — the cap the paper applies to CAIRN "so that it becomes
#: easy to sufficiently load the networks".
DEFAULT_CAPACITY = 1250.0

#: Default propagation delay: 1 ms, typical of the paper's regional links.
DEFAULT_PROP_DELAY = 1e-3


@dataclass(frozen=True)
class Link:
    """A directed link ``head -> tail``.

    The names follow the paper's LSU triplet ``[h, t, d]``: ``head`` is the
    router the link leaves, ``tail`` the router it enters.
    """

    head: NodeId
    tail: NodeId
    capacity: float = DEFAULT_CAPACITY
    prop_delay: float = DEFAULT_PROP_DELAY

    def __post_init__(self) -> None:
        if self.head == self.tail:
            raise TopologyError(f"self-loop link at node {self.head!r}")
        if self.capacity <= 0:
            raise TopologyError(
                f"link {self.head!r}->{self.tail!r}: capacity must be "
                f"positive, got {self.capacity!r}"
            )
        if self.prop_delay < 0:
            raise TopologyError(
                f"link {self.head!r}->{self.tail!r}: propagation delay must "
                f"be non-negative, got {self.prop_delay!r}"
            )

    @property
    def link_id(self) -> LinkId:
        """The ``(head, tail)`` pair identifying this link."""
        return (self.head, self.tail)

    def reversed(self) -> "Link":
        """The same physical link in the opposite direction."""
        return Link(self.tail, self.head, self.capacity, self.prop_delay)


class Topology:
    """A directed network graph with link capacities and propagation delays.

    Nodes may be any hashable values; the paper's topologies use strings
    (CAIRN site names) and small integers (NET1).  Iteration orders are
    deterministic (insertion order) so that simulations are reproducible.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._nodes: dict[NodeId, None] = {}
        self._succ: dict[NodeId, dict[NodeId, Link]] = {}
        self._pred: dict[NodeId, dict[NodeId, Link]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` if not already present."""
        if node not in self._nodes:
            self._nodes[node] = None
            self._succ[node] = {}
            self._pred[node] = {}

    def add_link(
        self,
        head: NodeId,
        tail: NodeId,
        capacity: float = DEFAULT_CAPACITY,
        prop_delay: float = DEFAULT_PROP_DELAY,
    ) -> Link:
        """Add the directed link ``head -> tail``, creating nodes as needed.

        Re-adding an existing link replaces its attributes.
        """
        link = Link(head, tail, capacity, prop_delay)
        self.add_node(head)
        self.add_node(tail)
        self._succ[head][tail] = link
        self._pred[tail][head] = link
        return link

    def add_duplex_link(
        self,
        a: NodeId,
        b: NodeId,
        capacity: float = DEFAULT_CAPACITY,
        prop_delay: float = DEFAULT_PROP_DELAY,
    ) -> tuple[Link, Link]:
        """Add the bidirectional link ``a <-> b`` (two directed links)."""
        forward = self.add_link(a, b, capacity, prop_delay)
        backward = self.add_link(b, a, capacity, prop_delay)
        return forward, backward

    def remove_link(self, head: NodeId, tail: NodeId) -> None:
        """Remove the directed link ``head -> tail``."""
        try:
            del self._succ[head][tail]
            del self._pred[tail][head]
        except KeyError:
            raise TopologyError(f"no link {head!r}->{tail!r}") from None

    def remove_duplex_link(self, a: NodeId, b: NodeId) -> None:
        """Remove both directions of the link ``a <-> b``."""
        self.remove_link(a, b)
        self.remove_link(b, a)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every link touching it."""
        self._require_node(node)
        for nbr in list(self._succ[node]):
            self.remove_link(node, nbr)
        for nbr in list(self._pred[node]):
            self.remove_link(nbr, node)
        del self._nodes[node]
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[NodeId]:
        """All nodes, in insertion order."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        return sum(len(out) for out in self._succ.values())

    def has_node(self, node: NodeId) -> bool:
        return node in self._nodes

    def has_link(self, head: NodeId, tail: NodeId) -> bool:
        return head in self._succ and tail in self._succ[head]

    def link(self, head: NodeId, tail: NodeId) -> Link:
        """The :class:`Link` ``head -> tail``; raises if absent."""
        try:
            return self._succ[head][tail]
        except KeyError:
            raise TopologyError(f"no link {head!r}->{tail!r}") from None

    def links(self) -> Iterator[Link]:
        """All directed links, deterministically ordered."""
        for out in self._succ.values():
            yield from out.values()

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Out-neighbors of ``node`` (the set :math:`N^i` of the paper)."""
        self._require_node(node)
        return list(self._succ[node])

    def in_neighbors(self, node: NodeId) -> list[NodeId]:
        """Nodes with a link into ``node``."""
        self._require_node(node)
        return list(self._pred[node])

    def out_links(self, node: NodeId) -> list[Link]:
        """Links leaving ``node``."""
        self._require_node(node)
        return list(self._succ[node].values())

    def degree(self, node: NodeId) -> int:
        """Out-degree of ``node`` (equals the undirected degree for duplex
        topologies)."""
        self._require_node(node)
        return len(self._succ[node])

    def _require_node(self, node: NodeId) -> None:
        if node not in self._nodes:
            raise TopologyError(f"unknown node {node!r}")

    # ------------------------------------------------------------------
    # whole-graph properties
    # ------------------------------------------------------------------
    def is_symmetric(self) -> bool:
        """True if every link has a reverse link (bidirectional network)."""
        return all(self.has_link(ln.tail, ln.head) for ln in self.links())

    def is_connected(self) -> bool:
        """True if every node reaches every other node over directed links."""
        nodes = self.nodes
        if len(nodes) <= 1:
            return True
        reach = self._bfs_hops(nodes[0])
        if len(reach) != len(nodes):
            return False
        if self.is_symmetric():
            return True
        return all(len(self._bfs_hops(n)) == len(nodes) for n in nodes[1:])

    def diameter(self) -> int:
        """Hop-count diameter; raises :class:`TopologyError` if disconnected."""
        best = 0
        for node in self.nodes:
            hops = self._bfs_hops(node)
            if len(hops) != self.num_nodes:
                raise TopologyError(f"{self.name}: graph is not connected")
            best = max(best, max(hops.values()))
        return best

    def _bfs_hops(self, source: NodeId) -> dict[NodeId, int]:
        hops = {source: 0}
        frontier = [source]
        while frontier:
            nxt: list[NodeId] = []
            for node in frontier:
                for nbr in self._succ[node]:
                    if nbr not in hops:
                        hops[nbr] = hops[node] + 1
                        nxt.append(nbr)
            frontier = nxt
        return hops

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Topology":
        """An independent copy of this topology."""
        dup = Topology(name if name is not None else self.name)
        for node in self.nodes:
            dup.add_node(node)
        for ln in self.links():
            dup.add_link(ln.head, ln.tail, ln.capacity, ln.prop_delay)
        return dup

    def uniform_costs(self, cost: float = 1.0) -> dict[LinkId, float]:
        """A cost map assigning ``cost`` to every link (hop-count routing)."""
        return {ln.link_id: cost for ln in self.links()}

    def idle_marginal_costs(self) -> dict[LinkId, float]:
        """Marginal-delay costs of an empty network: ``1/C + tau`` per link.

        This is :math:`D'_{ik}(0)` for the paper's M/M/1 delay law and is
        the natural initial cost before any traffic measurements exist.
        """
        return {
            ln.link_id: 1.0 / ln.capacity + ln.prop_delay for ln in self.links()
        }

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )


def subtopology(topo: Topology, nodes: Iterable[NodeId]) -> Topology:
    """The sub-topology induced by ``nodes`` (links among them only)."""
    keep = set(nodes)
    sub = Topology(f"{topo.name}-sub")
    for node in topo.nodes:
        if node in keep:
            sub.add_node(node)
    for ln in topo.links():
        if ln.head in keep and ln.tail in keep:
            sub.add_link(ln.head, ln.tail, ln.capacity, ln.prop_delay)
    return sub
