"""Shortest-path algorithms built from scratch.

The routing protocols in :mod:`repro.core` run Dijkstra's algorithm on
partial topologies represented as plain ``{(head, tail): cost}`` mappings,
so the functions here operate on such mappings rather than on
:class:`~repro.graph.topology.Topology` objects.  Helpers convert between
the two.

Tie-breaking matters: the paper's PDA requires that "ties should be broken
consistently during the run of Dijkstra's algorithm" so that all routers
agree on preferred neighbors.  We break ties deterministically on the
ordering of node representations, which is stable across routers.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Mapping

from repro.exceptions import RoutingError, TopologyError
from repro.graph.topology import LinkId, NodeId, Topology

INFINITY = float("inf")

CostMap = Mapping[LinkId, float]


def _adjacency(costs: CostMap) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Out-adjacency lists from a link-cost map."""
    adj: dict[NodeId, list[tuple[NodeId, float]]] = {}
    for (head, tail), cost in costs.items():
        if cost < 0:
            raise RoutingError(
                f"negative link cost {cost!r} on {head!r}->{tail!r}; "
                "marginal delays are always positive"
            )
        adj.setdefault(head, []).append((tail, cost))
        adj.setdefault(tail, [])
    return adj


def _tie_key(node: NodeId) -> str:
    """A total order over node ids used for deterministic tie-breaking.

    The paper breaks ties "in favor of the lower address"; sorting on the
    repr gives every hashable node id a consistent address-like order.
    """
    return repr(node)


def rank_nodes(nodes) -> dict[NodeId, int]:
    """Integer ranks equivalent to the repr tie order.

    Comparing ``rank[a] < rank[b]`` is exactly ``repr(a) < repr(b)`` for
    nodes in the map, but each comparison is an int compare instead of a
    repr call plus a string compare — the protocol hot path builds one
    rank map per router and reuses it across Dijkstra runs.
    """
    return {node: i for i, node in enumerate(sorted(nodes, key=repr))}


def dijkstra(
    costs: CostMap,
    source: NodeId,
    *,
    nodes: list[NodeId] | None = None,
    rank: Mapping[NodeId, int] | None = None,
    adj: Mapping[NodeId, list[tuple[NodeId, float]]] | None = None,
) -> tuple[dict[NodeId, float], dict[NodeId, NodeId | None]]:
    """Single-source shortest paths.

    Args:
        costs: link-cost map; only links present here are usable.
        source: the root node.
        nodes: optional extra node universe; nodes unreachable from
            ``source`` get distance :data:`INFINITY` and predecessor None.
        rank: optional precomputed :func:`rank_nodes` map covering every
            node of the graph; replaces per-comparison repr calls with
            int compares without changing any tie outcome.
        adj: optional out-adjacency for ``costs``, exactly as
            :func:`_adjacency` would build it (callers that already hold
            the links grouped by head skip the per-run O(E) regrouping;
            costs must then be pre-validated non-negative).

    Returns:
        ``(dist, pred)`` where ``dist[j]`` is the cost of the shortest path
        ``source -> j`` and ``pred[j]`` the predecessor of ``j`` on it.
    """
    if adj is None:
        adj = _adjacency(costs)
    # dict.fromkeys + update run at C speed; the protocol hot path calls
    # this once per changed MTU, so the O(V) setup cost matters as much
    # as the heap loop.
    dist: dict[NodeId, float] = {source: INFINITY}
    dist.update(dict.fromkeys(adj, INFINITY))
    if nodes is not None:
        dist.update(dict.fromkeys(nodes, INFINITY))
    pred: dict[NodeId, NodeId | None] = dict.fromkeys(dist)
    dist[source] = 0.0

    tie = _tie_key if rank is None else rank.__getitem__
    # Lazy deletion: every push strictly lowers a node's label, so the
    # first pop of a node carries its final distance and any later pop
    # satisfies d > dist[node].  (The push counter breaks comparison
    # ties only when tie keys can collide, i.e. the repr fallback.)
    heap: list[tuple]
    push = heapq.heappush
    pop = heapq.heappop
    adj_get = adj.get
    if rank is None:
        counter = itertools.count()
        heap = [(0.0, tie(source), next(counter), source)]
        while heap:
            d, _, _, node = pop(heap)
            if d > dist[node]:
                continue
            node_key = tie(node)
            for nbr, cost in adj_get(node, ()):
                alt = d + cost
                cur = dist[nbr]
                if alt < cur:
                    # Strict improvement.
                    push(heap, (alt, tie(nbr), next(counter), nbr))
                    dist[nbr] = alt
                    pred[nbr] = node
                elif (
                    alt == cur
                    and pred[nbr] is not None
                    and node_key < tie(pred[nbr])
                ):
                    # An equal-cost path through a lower-address
                    # predecessor: prefer it so every router resolves
                    # ties identically.
                    pred[nbr] = node
    else:
        # Ranks are unique ints, so (distance, rank) alone orders the
        # heap totally — no counter, smaller tuples.
        heap = [(0.0, tie(source), source)]
        while heap:
            d, node_key, node = pop(heap)
            if d > dist[node]:
                continue
            for nbr, cost in adj_get(node, ()):
                alt = d + cost
                cur = dist[nbr]
                if alt < cur:
                    push(heap, (alt, tie(nbr), nbr))
                    dist[nbr] = alt
                    pred[nbr] = node
                elif (
                    alt == cur
                    and pred[nbr] is not None
                    and node_key < tie(pred[nbr])
                ):
                    pred[nbr] = node
    return dist, pred


def dijkstra_tree(
    costs: CostMap,
    source: NodeId,
    *,
    nodes: list[NodeId] | None = None,
    rank: Mapping[NodeId, int] | None = None,
    adj: Mapping[NodeId, list[tuple[NodeId, float]]] | None = None,
) -> tuple[dict[NodeId, float], dict[LinkId, float]]:
    """Shortest-path tree rooted at ``source``.

    Returns ``(dist, tree)`` where ``tree`` maps the tree's links to their
    costs — exactly what PDA's MTU step retains from the merged topology
    ("remove those links that are not part of the shortest path tree").
    """
    dist, pred = dijkstra(costs, source, nodes=nodes, rank=rank, adj=adj)
    tree: dict[LinkId, float] = {}
    cost_of = costs.__getitem__
    for node, parent in pred.items():
        if parent is not None:
            link = (parent, node)
            tree[link] = cost_of(link)
    return dist, tree


class SharedSPF:
    """Shared-heap multi-destination shortest paths *to* each destination.

    The routing framework is destination-oriented (Eq. 13): it needs
    :math:`D^i_j` for every source *i* and each active destination *j*.
    :func:`bellman_ford` answers that one destination at a time, but
    rebuilds the reversed adjacency and the node universe on every call —
    |D| times the same O(E) setup.  This class builds both once and runs
    only the label-setting pass per destination, so ``update_routes``
    costs one traversal's worth of setup rather than |D|.

    Results are bit-for-bit identical to :func:`bellman_ford`: the heap
    pop order among equal labels differs, but label-setting with strict
    improvement assigns every node the same float distance (the same
    additive chain along its shortest path) regardless of that order.
    """

    def __init__(
        self, costs: CostMap, *, nodes: list[NodeId] | None = None
    ) -> None:
        adj_in: dict[NodeId, list[tuple[NodeId, float]]] = {}
        universe: dict[NodeId, None] = {}
        for (head, tail), cost in costs.items():
            if cost < 0:
                raise RoutingError(
                    f"negative link cost {cost!r} on {head!r}->{tail!r}"
                )
            adj_in.setdefault(tail, []).append((head, cost))
            universe[head] = None
            universe[tail] = None
        if nodes is not None:
            for node in nodes:
                universe[node] = None
        self._adj_in = adj_in
        self._universe = universe

    def distances_to(self, destination: NodeId) -> dict[NodeId, float]:
        """All-sources distance to ``destination`` (one heap pass)."""
        dist = dict.fromkeys(self._universe, INFINITY)
        dist[destination] = 0.0
        adj_in = self._adj_in
        counter = itertools.count()
        heap: list[tuple[float, int, NodeId]] = [(0.0, next(counter), destination)]
        done: set[NodeId] = set()
        while heap:
            d, _, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for nbr, cost in adj_in.get(node, ()):
                alt = d + cost
                if alt < dist[nbr]:
                    dist[nbr] = alt
                    heapq.heappush(heap, (alt, next(counter), nbr))
        return dist


def multi_destination_distances(
    costs: CostMap,
    destinations,
    *,
    nodes: list[NodeId] | None = None,
) -> dict[NodeId, dict[NodeId, float]]:
    """``dist[j][i]`` = distance i -> j for each destination ``j``.

    One :class:`SharedSPF` setup amortized over all destinations.
    """
    spf = SharedSPF(costs, nodes=nodes)
    return {dest: spf.distances_to(dest) for dest in destinations}


def bellman_ford(
    costs: CostMap,
    destination: NodeId,
    *,
    nodes: list[NodeId] | None = None,
) -> dict[NodeId, float]:
    """All-sources distance *to* ``destination`` (Eq. 13 of the paper).

    This is the destination-oriented form :math:`D_j^i = \\min_k
    (D_j^k + l_k^i)` that the routing framework is written in.  With
    non-negative costs the label-setting (Dijkstra) method used by
    :class:`SharedSPF` solves the same equation exactly; callers that
    need many destinations over one cost map should hold a
    :class:`SharedSPF` instead of calling this in a loop.
    """
    spf = SharedSPF(costs, nodes=nodes)
    dist = spf.distances_to(destination)
    dist.setdefault(destination, 0.0)
    return dist


def k_shortest_paths(
    costs: CostMap,
    source: NodeId,
    target: NodeId,
    k: int,
    *,
    nodes: list[NodeId] | None = None,
) -> list[list[NodeId]]:
    """The ``k`` shortest loopless paths ``source -> target`` (Yen).

    Deterministic: candidate paths of equal cost are ordered by their
    node-repr sequence, the same total order every other tie-break in
    this package uses.  Returns fewer than ``k`` paths when the graph
    has fewer distinct loopless paths (possibly none).

    This powers the ``ecmp-k`` baseline policy: equal traffic split over
    the first hops of the k shortest paths.
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k!r}")
    if source == target:
        return [[source]]
    dist, pred = dijkstra(costs, source, nodes=nodes)
    if dist.get(target, INFINITY) == INFINITY:
        return []
    paths: list[list[NodeId]] = [extract_path(pred, source, target)]
    seen: set[tuple] = {tuple(paths[0])}
    # Candidate heap ordered by (cost, repr-sequence): deterministic
    # across runs and machines.
    candidates: list[tuple[float, tuple[str, ...], list[NodeId]]] = []

    while len(paths) < k:
        prev = paths[-1]
        for i in range(len(prev) - 1):
            spur, root = prev[i], prev[: i + 1]
            # Remove the edges any already-found path with this root
            # prefix takes out of the spur node, and the root's interior
            # nodes, then look for the best deviation.
            banned_edges = {
                (path[i], path[i + 1])
                for path in paths
                if len(path) > i and path[: i + 1] == root
            }
            banned_nodes = set(root[:-1])
            spur_costs = {
                link_id: cost
                for link_id, cost in costs.items()
                if link_id not in banned_edges
                and link_id[0] not in banned_nodes
                and link_id[1] not in banned_nodes
            }
            spur_dist, spur_pred = dijkstra(spur_costs, spur, nodes=nodes)
            if spur_dist.get(target, INFINITY) == INFINITY:
                continue
            total = root[:-1] + extract_path(spur_pred, spur, target)
            key = tuple(total)
            if key in seen:
                continue
            seen.add(key)
            heapq.heappush(
                candidates,
                (
                    path_cost(costs, total),
                    tuple(repr(node) for node in total),
                    total,
                ),
            )
        if not candidates:
            break
        paths.append(heapq.heappop(candidates)[2])
    return paths


def all_pairs_distances(costs: CostMap) -> dict[NodeId, dict[NodeId, float]]:
    """``dist[i][j]`` for every ordered pair, via repeated Dijkstra."""
    adj = _adjacency(costs)
    return {node: dijkstra(costs, node)[0] for node in adj}


def path_cost(costs: CostMap, path: list[NodeId]) -> float:
    """Total cost of ``path`` (a node sequence) under ``costs``."""
    if len(path) < 2:
        return 0.0
    total = 0.0
    for head, tail in zip(path, path[1:]):
        try:
            total += costs[(head, tail)]
        except KeyError:
            raise RoutingError(f"path uses missing link {head!r}->{tail!r}")
    return total


def extract_path(
    pred: Mapping[NodeId, NodeId | None], source: NodeId, target: NodeId
) -> list[NodeId]:
    """Reconstruct the path ``source -> target`` from a predecessor map."""
    path = [target]
    node = target
    seen = {target}
    while node != source:
        parent = pred.get(node)
        if parent is None:
            raise RoutingError(f"{target!r} is unreachable from {source!r}")
        if parent in seen:
            raise RoutingError("predecessor map contains a cycle")
        path.append(parent)
        seen.add(parent)
        node = parent
    path.reverse()
    return path


def topology_costs(
    topo: Topology, costs: CostMap | None = None
) -> dict[LinkId, float]:
    """Materialize a cost map for every link of ``topo``.

    Missing entries default to the idle marginal delay ``1/C + tau``; extra
    entries for links absent from the topology are rejected.
    """
    out = topo.idle_marginal_costs()
    if costs is not None:
        for link_id, cost in costs.items():
            if link_id not in out:
                head, tail = link_id
                raise TopologyError(
                    f"cost given for missing link {head!r}->{tail!r}"
                )
            out[link_id] = cost
    return out
