"""Shortest-path algorithms built from scratch.

The routing protocols in :mod:`repro.core` run Dijkstra's algorithm on
partial topologies represented as plain ``{(head, tail): cost}`` mappings,
so the functions here operate on such mappings rather than on
:class:`~repro.graph.topology.Topology` objects.  Helpers convert between
the two.

Tie-breaking matters: the paper's PDA requires that "ties should be broken
consistently during the run of Dijkstra's algorithm" so that all routers
agree on preferred neighbors.  We break ties deterministically on the
ordering of node representations, which is stable across routers.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Mapping

from repro.exceptions import RoutingError, TopologyError
from repro.graph.topology import LinkId, NodeId, Topology

INFINITY = float("inf")

CostMap = Mapping[LinkId, float]


def _adjacency(costs: CostMap) -> dict[NodeId, list[tuple[NodeId, float]]]:
    """Out-adjacency lists from a link-cost map."""
    adj: dict[NodeId, list[tuple[NodeId, float]]] = {}
    for (head, tail), cost in costs.items():
        if cost < 0:
            raise RoutingError(
                f"negative link cost {cost!r} on {head!r}->{tail!r}; "
                "marginal delays are always positive"
            )
        adj.setdefault(head, []).append((tail, cost))
        adj.setdefault(tail, [])
    return adj


def _tie_key(node: NodeId) -> str:
    """A total order over node ids used for deterministic tie-breaking.

    The paper breaks ties "in favor of the lower address"; sorting on the
    repr gives every hashable node id a consistent address-like order.
    """
    return repr(node)


def dijkstra(
    costs: CostMap,
    source: NodeId,
    *,
    nodes: list[NodeId] | None = None,
) -> tuple[dict[NodeId, float], dict[NodeId, NodeId | None]]:
    """Single-source shortest paths.

    Args:
        costs: link-cost map; only links present here are usable.
        source: the root node.
        nodes: optional extra node universe; nodes unreachable from
            ``source`` get distance :data:`INFINITY` and predecessor None.

    Returns:
        ``(dist, pred)`` where ``dist[j]`` is the cost of the shortest path
        ``source -> j`` and ``pred[j]`` the predecessor of ``j`` on it.
    """
    adj = _adjacency(costs)
    universe: dict[NodeId, None] = {source: None}
    for node in adj:
        universe[node] = None
    if nodes is not None:
        for node in nodes:
            universe[node] = None

    dist: dict[NodeId, float] = {node: INFINITY for node in universe}
    pred: dict[NodeId, NodeId | None] = {node: None for node in universe}
    dist[source] = 0.0

    counter = itertools.count()
    heap: list[tuple[float, str, int, NodeId]] = [
        (0.0, _tie_key(source), next(counter), source)
    ]
    done: set[NodeId] = set()
    while heap:
        d, _, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for nbr, cost in adj.get(node, ()):
            alt = d + cost
            if alt < dist[nbr] or (
                alt == dist[nbr]
                and pred[nbr] is not None
                and _tie_key(node) < _tie_key(pred[nbr])
            ):
                # Strict improvement, or an equal-cost path through a
                # lower-address predecessor: prefer it so every router
                # resolves ties identically.
                if alt < dist[nbr]:
                    heapq.heappush(heap, (alt, _tie_key(nbr), next(counter), nbr))
                dist[nbr] = alt
                pred[nbr] = node
    return dist, pred


def dijkstra_tree(
    costs: CostMap,
    source: NodeId,
    *,
    nodes: list[NodeId] | None = None,
) -> tuple[dict[NodeId, float], dict[LinkId, float]]:
    """Shortest-path tree rooted at ``source``.

    Returns ``(dist, tree)`` where ``tree`` maps the tree's links to their
    costs — exactly what PDA's MTU step retains from the merged topology
    ("remove those links that are not part of the shortest path tree").
    """
    dist, pred = dijkstra(costs, source, nodes=nodes)
    tree: dict[LinkId, float] = {}
    for node, parent in pred.items():
        if parent is None:
            continue
        tree[(parent, node)] = costs[(parent, node)]
    return dist, tree


def bellman_ford(
    costs: CostMap,
    destination: NodeId,
    *,
    nodes: list[NodeId] | None = None,
) -> dict[NodeId, float]:
    """All-sources distance *to* ``destination`` (Eq. 13 of the paper).

    This is the destination-oriented form :math:`D_j^i = \\min_k
    (D_j^k + l_k^i)` that the routing framework is written in.
    """
    adj_in: dict[NodeId, list[tuple[NodeId, float]]] = {}
    universe: dict[NodeId, None] = {destination: None}
    for (head, tail), cost in costs.items():
        if cost < 0:
            raise RoutingError(
                f"negative link cost {cost!r} on {head!r}->{tail!r}"
            )
        adj_in.setdefault(tail, []).append((head, cost))
        universe[head] = None
        universe[tail] = None
    if nodes is not None:
        for node in nodes:
            universe[node] = None

    dist = {node: INFINITY for node in universe}
    dist[destination] = 0.0
    # Dijkstra on the reversed graph; named bellman_ford for the equation it
    # solves, but with non-negative costs the label-setting method is exact.
    counter = itertools.count()
    heap: list[tuple[float, str, int, NodeId]] = [
        (0.0, _tie_key(destination), next(counter), destination)
    ]
    done: set[NodeId] = set()
    while heap:
        d, _, _, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for nbr, cost in adj_in.get(node, ()):
            alt = d + cost
            if alt < dist[nbr]:
                dist[nbr] = alt
                heapq.heappush(heap, (alt, _tie_key(nbr), next(counter), nbr))
    return dist


def all_pairs_distances(costs: CostMap) -> dict[NodeId, dict[NodeId, float]]:
    """``dist[i][j]`` for every ordered pair, via repeated Dijkstra."""
    adj = _adjacency(costs)
    return {node: dijkstra(costs, node)[0] for node in adj}


def path_cost(costs: CostMap, path: list[NodeId]) -> float:
    """Total cost of ``path`` (a node sequence) under ``costs``."""
    if len(path) < 2:
        return 0.0
    total = 0.0
    for head, tail in zip(path, path[1:]):
        try:
            total += costs[(head, tail)]
        except KeyError:
            raise RoutingError(f"path uses missing link {head!r}->{tail!r}")
    return total


def extract_path(
    pred: Mapping[NodeId, NodeId | None], source: NodeId, target: NodeId
) -> list[NodeId]:
    """Reconstruct the path ``source -> target`` from a predecessor map."""
    path = [target]
    node = target
    seen = {target}
    while node != source:
        parent = pred.get(node)
        if parent is None:
            raise RoutingError(f"{target!r} is unreachable from {source!r}")
        if parent in seen:
            raise RoutingError("predecessor map contains a cycle")
        path.append(parent)
        seen.add(parent)
        node = parent
    path.reverse()
    return path


def topology_costs(
    topo: Topology, costs: CostMap | None = None
) -> dict[LinkId, float]:
    """Materialize a cost map for every link of ``topo``.

    Missing entries default to the idle marginal delay ``1/C + tau``; extra
    entries for links absent from the topology are rejected.
    """
    out = topo.idle_marginal_costs()
    if costs is not None:
        for link_id, cost in costs.items():
            if link_id not in out:
                head, tail = link_id
                raise TopologyError(
                    f"cost given for missing link {head!r}->{tail!r}"
                )
            out[link_id] = cost
    return out
