"""The two topologies of the paper's simulation study: CAIRN and NET1.

**CAIRN.**  The paper uses the *connectivity* of the CAIRN research network
("we are only interested in the connectivity of CAIRN, and its topology as
used differs from the real network in the capacities and propagation delays
assumed"), with capacities capped at 10 Mb/s.  The paper conveys the link
map only as a drawing, which our source text does not preserve, so this
module reconstructs a CAIRN-like backbone over the exact 27 site names in
the figure: a sparse, mostly chain-and-ring research network with a west
coast ring, a southern-California cluster, two transcontinental trunks, an
east coast mesh, and a transatlantic spur to UCL.  See DESIGN.md §4 for
why this substitution preserves the experiments' character.

**NET1.**  A contrived 10-node network; the paper states its constraints
precisely — "The diameter of NET1 is four and the nodes have degrees
between 3 and 5", connectivity "high enough to ensure the existence of
multiple paths, and small enough to prevent a large number of one-hop
paths" — and this module provides a fixed graph satisfying all of them
(verified in tests).

Both topologies come with the paper's source-destination flow pairs.
"""

from __future__ import annotations

from repro.graph.topology import Topology
from repro.units import mbps

#: Capacity used for every link, matching the paper's 10 Mb/s cap
#: (expressed in packets/s — see :mod:`repro.units`).
LINK_CAPACITY = mbps(10)

# Propagation delays in seconds, by rough link span.  The paper changed
# CAIRN's real capacities and delays for the simulation; its reported
# per-flow delays (0.5-3.5 ms) imply propagation well below queueing, so
# the reconstruction uses sub-millisecond spans that keep the relative
# geography (metro < regional < cross-country < transatlantic).
_METRO = 0.1e-3
_REGIONAL = 0.3e-3
_CROSS_COUNTRY = 1e-3
_TRANSATLANTIC = 2e-3

#: CAIRN duplex links as (a, b, propagation delay).
CAIRN_LINKS: list[tuple[str, str, float]] = [
    # West coast ring (Bay Area).
    ("ucsc", "ipsilon", _METRO),
    ("ipsilon", "cisco-w", _METRO),
    ("cisco-w", "parc", _METRO),
    ("parc", "ucb", _METRO),
    ("ucb", "sri", _METRO),
    ("sri", "lbl", _METRO),
    ("lbl", "ucsc", _REGIONAL),
    ("parc", "sri", _METRO),
    # Southern California cluster.
    ("sri", "isi", _REGIONAL),
    ("isi", "ucla", _METRO),
    ("ucla", "sdsc", _REGIONAL),
    ("isi", "sdsc", _REGIONAL),
    ("sac", "sdsc", _REGIONAL),
    ("sac", "ucla", _REGIONAL),
    # Transcontinental trunks.
    ("isi", "isi-e", _CROSS_COUNTRY),   # ISI Marina del Rey <-> ISI-East (VA)
    ("sri", "anl", _CROSS_COUNTRY),
    # Midwest.
    ("anl", "netstar", _REGIONAL),
    ("netstar", "tioc", _REGIONAL),
    ("tioc", "anl", _REGIONAL),
    ("anl", "cmu", _REGIONAL),
    # East coast.
    ("isi-e", "darpa", _METRO),
    ("isi-e", "tis", _METRO),
    ("darpa", "mci-r", _METRO),
    ("mci-r", "bell", _REGIONAL),
    ("bell", "bbn", _REGIONAL),
    ("bbn", "mit", _METRO),
    ("mit", "cmu", _REGIONAL),
    ("darpa", "tis", _METRO),
    ("tis", "udel", _REGIONAL),
    ("udel", "bell", _REGIONAL),
    ("darpa", "nrl-v6", _METRO),
    ("nrl-v6", "nasa", _METRO),
    ("nasa", "tis", _METRO),
    ("cisco-e", "bbn", _METRO),
    ("cisco-e", "mit", _METRO),
    # Transatlantic spur.
    ("ucl", "bbn", _TRANSATLANTIC),
    ("ucl", "darpa", _TRANSATLANTIC),
]

#: The 11 CAIRN flows of Section 5 (source, destination).
CAIRN_FLOW_PAIRS: list[tuple[str, str]] = [
    ("lbl", "mci-r"),
    ("netstar", "isi-e"),
    ("isi", "darpa"),
    ("parc", "sdsc"),
    ("sri", "mit"),
    ("tioc", "sdsc"),
    ("mit", "sri"),
    ("isi-e", "netstar"),
    ("sdsc", "parc"),
    ("mci-r", "tioc"),
    ("darpa", "isi"),
]

#: NET1 duplex links (see module docstring for the constraints met).
NET1_LINKS: list[tuple[int, int]] = [
    (0, 1), (0, 3), (0, 5), (0, 7), (0, 9),
    (1, 2), (1, 4),
    (2, 3), (2, 4),
    (3, 4), (3, 5),
    (4, 5),
    (5, 6), (5, 7),
    (6, 7), (6, 8),
    (7, 8), (7, 9),
    (8, 9),
]

#: The 10 NET1 flows of Section 5 (source, destination).
NET1_FLOW_PAIRS: list[tuple[int, int]] = [
    (9, 2),
    (8, 3),
    (7, 0),
    (6, 1),
    (5, 8),
    (4, 1),
    (3, 8),
    (2, 9),
    (1, 6),
    (0, 7),
]


def cairn(capacity: float = LINK_CAPACITY) -> Topology:
    """The reconstructed CAIRN topology (27 nodes, 37 duplex links)."""
    topo = Topology("cairn")
    for a, b, delay in CAIRN_LINKS:
        topo.add_duplex_link(a, b, capacity=capacity, prop_delay=delay)
    return topo


def net1(
    capacity: float = LINK_CAPACITY, prop_delay: float = 1e-3
) -> Topology:
    """The NET1 topology (10 nodes, 19 duplex links, diameter 4)."""
    topo = Topology("net1")
    for a, b in NET1_LINKS:
        topo.add_duplex_link(a, b, capacity=capacity, prop_delay=prop_delay)
    return topo
