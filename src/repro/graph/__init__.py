"""Graph substrate: topologies, shortest paths, and successor-graph checks.

This subpackage is self-contained (no dependency on the routing protocols)
and provides:

- :class:`repro.graph.topology.Topology` — the network model (nodes plus
  directed links with capacity and propagation delay);
- :mod:`repro.graph.topologies` — the paper's CAIRN and NET1 networks;
- :mod:`repro.graph.generators` — synthetic topology generators;
- :mod:`repro.graph.shortest_paths` — Dijkstra / Bellman-Ford built from
  scratch (networkx is used only as a test oracle);
- :mod:`repro.graph.validation` — loop checks on successor graphs.
"""

from repro.graph.topology import Link, Topology
from repro.graph.topologies import cairn, net1
from repro.graph.shortest_paths import (
    bellman_ford,
    dijkstra,
    dijkstra_tree,
    path_cost,
)
from repro.graph.validation import (
    find_successor_cycle,
    is_loop_free,
    successor_graph_order,
)

__all__ = [
    "Link",
    "Topology",
    "cairn",
    "net1",
    "dijkstra",
    "dijkstra_tree",
    "bellman_ford",
    "path_cost",
    "is_loop_free",
    "find_successor_cycle",
    "successor_graph_order",
]
