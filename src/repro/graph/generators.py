"""Synthetic topology generators.

Used by property-based tests (random connected networks) and by the
protocol microbenchmarks (scaling MPDA with network size).  All
generators take an explicit ``seed`` so results are reproducible.
"""

from __future__ import annotations

import random

from repro.exceptions import TopologyError
from repro.graph.topology import (
    DEFAULT_CAPACITY,
    DEFAULT_PROP_DELAY,
    Topology,
)


def line(n: int, **link_kwargs: float) -> Topology:
    """A chain ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise TopologyError("line topology needs at least one node")
    topo = Topology(f"line{n}")
    topo.add_node(0)
    for i in range(n - 1):
        topo.add_duplex_link(i, i + 1, **link_kwargs)
    return topo


def ring(n: int, **link_kwargs: float) -> Topology:
    """A cycle of ``n >= 3`` nodes — the smallest multipath network."""
    if n < 3:
        raise TopologyError("ring topology needs at least three nodes")
    topo = Topology(f"ring{n}")
    for i in range(n):
        topo.add_duplex_link(i, (i + 1) % n, **link_kwargs)
    return topo


def grid(rows: int, cols: int, **link_kwargs: float) -> Topology:
    """A ``rows x cols`` mesh; node ids are ``(r, c)`` tuples."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    topo = Topology(f"grid{rows}x{cols}")
    topo.add_node((0, 0))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_duplex_link((r, c), (r, c + 1), **link_kwargs)
            if r + 1 < rows:
                topo.add_duplex_link((r, c), (r + 1, c), **link_kwargs)
    return topo


def complete(n: int, **link_kwargs: float) -> Topology:
    """The complete graph on ``n`` nodes."""
    if n < 2:
        raise TopologyError("complete graph needs at least two nodes")
    topo = Topology(f"k{n}")
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_duplex_link(i, j, **link_kwargs)
    return topo


def random_connected(
    n: int,
    extra_links: int = 0,
    seed: int = 0,
    capacity: float = DEFAULT_CAPACITY,
    prop_delay: float = DEFAULT_PROP_DELAY,
    jitter: float = 0.0,
) -> Topology:
    """A random connected network on ``n`` nodes.

    Builds a uniform random spanning tree (guaranteeing connectivity) and
    then adds ``extra_links`` random chords.  ``jitter`` in ``[0, 1)``
    randomizes capacities and delays by up to that relative amount, which
    exercises the unequal-cost machinery.
    """
    if n < 1:
        raise TopologyError("need at least one node")
    if extra_links > n * (n - 1) // 2 - (n - 1):
        raise TopologyError("more chords requested than the graph can hold")
    rng = random.Random(seed)

    def attrs() -> tuple[float, float]:
        if jitter <= 0:
            return capacity, prop_delay
        scale_c = 1.0 + jitter * (2 * rng.random() - 1)
        scale_d = 1.0 + jitter * (2 * rng.random() - 1)
        return capacity * scale_c, prop_delay * scale_d

    topo = Topology(f"rand{n}-{seed}")
    topo.add_node(0)
    order = list(range(n))
    rng.shuffle(order)
    attached = [order[0]]
    topo.add_node(order[0])
    for node in order[1:]:
        anchor = rng.choice(attached)
        cap, delay = attrs()
        topo.add_duplex_link(node, anchor, capacity=cap, prop_delay=delay)
        attached.append(node)

    added = 0
    while added < extra_links:
        a, b = rng.sample(range(n), 2)
        if not topo.has_link(a, b):
            cap, delay = attrs()
            topo.add_duplex_link(a, b, capacity=cap, prop_delay=delay)
            added += 1
    return topo
