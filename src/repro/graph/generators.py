"""Synthetic topology generators.

Used by property-based tests (random connected networks) and by the
protocol microbenchmarks (scaling MPDA with network size).  All
generators take an explicit ``seed`` so results are reproducible.
"""

from __future__ import annotations

import random

from repro.exceptions import TopologyError
from repro.graph.topology import (
    DEFAULT_CAPACITY,
    DEFAULT_PROP_DELAY,
    Topology,
)


def line(n: int, **link_kwargs: float) -> Topology:
    """A chain ``0 - 1 - ... - n-1``."""
    if n < 1:
        raise TopologyError("line topology needs at least one node")
    topo = Topology(f"line{n}")
    topo.add_node(0)
    for i in range(n - 1):
        topo.add_duplex_link(i, i + 1, **link_kwargs)
    return topo


def ring(n: int, **link_kwargs: float) -> Topology:
    """A cycle of ``n >= 3`` nodes — the smallest multipath network."""
    if n < 3:
        raise TopologyError("ring topology needs at least three nodes")
    topo = Topology(f"ring{n}")
    for i in range(n):
        topo.add_duplex_link(i, (i + 1) % n, **link_kwargs)
    return topo


def grid(rows: int, cols: int, **link_kwargs: float) -> Topology:
    """A ``rows x cols`` mesh; node ids are ``(r, c)`` tuples."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid needs positive dimensions")
    topo = Topology(f"grid{rows}x{cols}")
    topo.add_node((0, 0))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_duplex_link((r, c), (r, c + 1), **link_kwargs)
            if r + 1 < rows:
                topo.add_duplex_link((r, c), (r + 1, c), **link_kwargs)
    return topo


def complete(n: int, **link_kwargs: float) -> Topology:
    """The complete graph on ``n`` nodes."""
    if n < 2:
        raise TopologyError("complete graph needs at least two nodes")
    topo = Topology(f"k{n}")
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_duplex_link(i, j, **link_kwargs)
    return topo


def random_connected(
    n: int,
    extra_links: int = 0,
    seed: int = 0,
    capacity: float = DEFAULT_CAPACITY,
    prop_delay: float = DEFAULT_PROP_DELAY,
    jitter: float = 0.0,
) -> Topology:
    """A random connected network on ``n`` nodes.

    Builds a uniform random spanning tree (guaranteeing connectivity) and
    then adds ``extra_links`` random chords.  ``jitter`` in ``[0, 1)``
    randomizes capacities and delays by up to that relative amount, which
    exercises the unequal-cost machinery.
    """
    if n < 1:
        raise TopologyError("need at least one node")
    if extra_links > n * (n - 1) // 2 - (n - 1):
        raise TopologyError("more chords requested than the graph can hold")
    rng = random.Random(seed)

    def attrs() -> tuple[float, float]:
        if jitter <= 0:
            return capacity, prop_delay
        scale_c = 1.0 + jitter * (2 * rng.random() - 1)
        scale_d = 1.0 + jitter * (2 * rng.random() - 1)
        return capacity * scale_c, prop_delay * scale_d

    topo = Topology(f"rand{n}-{seed}")
    topo.add_node(0)
    order = list(range(n))
    rng.shuffle(order)
    attached = [order[0]]
    topo.add_node(order[0])
    for node in order[1:]:
        anchor = rng.choice(attached)
        cap, delay = attrs()
        topo.add_duplex_link(node, anchor, capacity=cap, prop_delay=delay)
        attached.append(node)

    added = 0
    while added < extra_links:
        a, b = rng.sample(range(n), 2)
        if not topo.has_link(a, b):
            cap, delay = attrs()
            topo.add_duplex_link(a, b, capacity=cap, prop_delay=delay)
            added += 1
    return topo


# ----------------------------------------------------------------------
# ISP-style generators (scale benchmarks)
# ----------------------------------------------------------------------
def _euclidean(p: tuple[float, float], q: tuple[float, float]) -> float:
    return ((p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2) ** 0.5


def _join_components(
    topo: Topology,
    points: dict[int, tuple[float, float]],
    capacity: float,
    prop_delay_per_unit: float,
) -> None:
    """Connect a possibly-disconnected graph by adding, for each extra
    component, the shortest link joining it to the first one —
    deterministic given the point set, and geographically plausible
    (components merge where they are closest)."""
    nodes = sorted(points)
    component = {node: node for node in nodes}

    def find(node: int) -> int:
        root = node
        while component[root] != root:
            root = component[root]
        while component[node] != root:
            component[node], node = root, component[node]
        return root

    for link in topo.links():
        ra, rb = find(link.head), find(link.tail)
        if ra != rb:
            component[max(ra, rb)] = min(ra, rb)
    while True:
        # No unions happen during the scan, so the root labels are
        # constant through it — resolve them once per pass instead of
        # per pair (the pair order, and thus tie-breaking, is unchanged).
        labels = {node: find(node) for node in nodes}
        roots = sorted(set(labels.values()))
        if len(roots) == 1:
            return
        main = roots[0]
        main_nodes = [node for node in nodes if labels[node] == main]
        other_nodes = [node for node in nodes if labels[node] != main]
        best = None
        for node in main_nodes:
            p = points[node]
            for other in other_nodes:
                d = _euclidean(p, points[other])
                if best is None or d < best[0]:
                    best = (d, node, other)
        assert best is not None
        d, node, other = best
        topo.add_duplex_link(
            node,
            other,
            capacity=capacity,
            prop_delay=max(d * prop_delay_per_unit, 1e-6),
        )
        component[find(other)] = main


def waxman(
    n: int,
    *,
    seed: int = 0,
    beta: float = 0.6,
    target_degree: float = 3.5,
    capacity: float = DEFAULT_CAPACITY,
    prop_delay: float = DEFAULT_PROP_DELAY,
) -> Topology:
    """A Waxman random graph — the classic ISP-topology model.

    ``n`` points are placed uniformly in the unit square and each pair
    is linked with probability ``alpha * exp(-d / (beta * L))`` where
    ``d`` is their distance and ``L`` the largest pairwise distance.
    Rather than exposing the opaque ``alpha`` knob, the generator takes
    a ``target_degree`` and derives ``alpha`` from the drawn point set
    so the expected mean degree matches it at every size — without
    this, a fixed ``alpha`` makes degree (and message complexity) grow
    linearly with ``n``, which would confound scale benchmarks.

    Propagation delays scale with Euclidean distance (normalized so the
    *mean* link delay is ``prop_delay``), giving short regional links
    and long cross-country ones like a real ISP map.  Disconnected
    components — rare at sensible target degrees — are joined by their
    geographically shortest bridging links, so the result is always
    connected.
    """
    if n < 2:
        raise TopologyError("waxman graph needs at least two nodes")
    if not 0 < beta <= 1:
        raise TopologyError(f"beta must be in (0, 1], got {beta!r}")
    if target_degree <= 0:
        raise TopologyError("target_degree must be positive")
    rng = random.Random(seed)
    points = {i: (rng.random(), rng.random()) for i in range(n)}
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    dists = {pair: _euclidean(points[pair[0]], points[pair[1]]) for pair in pairs}
    scale = max(dists.values())
    weights = {
        pair: pow(2.718281828459045, -d / (beta * scale))
        for pair, d in dists.items()
    }
    mean_weight = sum(weights.values()) / len(pairs)
    # E[degree] = (n-1) * alpha * mean_weight, solved for alpha.
    alpha = min(target_degree / ((n - 1) * mean_weight), 1.0)

    chosen = [pair for pair in pairs if rng.random() < alpha * weights[pair]]
    mean_dist = (
        sum(dists[pair] for pair in chosen) / len(chosen)
        if chosen
        else sum(dists.values()) / len(pairs)
    )
    delay_per_unit = prop_delay / mean_dist

    topo = Topology(f"waxman{n}-{seed}")
    for i in range(n):
        topo.add_node(i)
    for pair in chosen:
        topo.add_duplex_link(
            pair[0],
            pair[1],
            capacity=capacity,
            prop_delay=max(dists[pair] * delay_per_unit, 1e-6),
        )
    _join_components(topo, points, capacity, delay_per_unit)
    return topo


def barabasi_albert(
    n: int,
    *,
    m: int = 2,
    seed: int = 0,
    capacity: float = DEFAULT_CAPACITY,
    prop_delay: float = DEFAULT_PROP_DELAY,
) -> Topology:
    """A Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` nodes, then attaches each new node
    to ``m`` distinct existing nodes with probability proportional to
    their degree.  The power-law degree distribution this produces —
    a few highly connected hubs, many leaves — is the other canonical
    Internet-topology model, and stresses MPDA differently from Waxman:
    hub routers carry most of the update fan-out.  Always connected by
    construction.
    """
    if m < 1:
        raise TopologyError("m must be at least 1")
    if n < m + 1:
        raise TopologyError(f"need at least m + 1 = {m + 1} nodes")
    rng = random.Random(seed)
    topo = Topology(f"ba{n}-m{m}-{seed}")
    # One endpoint entry per link end; sampling from it is sampling
    # proportionally to degree.
    endpoints: list[int] = []
    for leaf in range(1, m + 1):
        topo.add_duplex_link(0, leaf, capacity=capacity, prop_delay=prop_delay)
        endpoints += [0, leaf]
    for node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(endpoints))
        for target in sorted(targets):
            topo.add_duplex_link(
                node, target, capacity=capacity, prop_delay=prop_delay
            )
            endpoints += [node, target]
    return topo
