"""Loop checks on successor graphs.

For a destination ``j``, the successor sets :math:`S_j^i` of all routers
define the routing graph :math:`SG_j`.  Theorem 1 of the paper proves the
LFI conditions keep :math:`SG_j` loop-free at every instant; the functions
here are the *checkers* the test-suite and the simulation safety monitors
use to verify that claim on every event.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import LoopError
from repro.graph.topology import NodeId

SuccessorSets = Mapping[NodeId, Iterable[NodeId]]


def find_successor_cycle(successors: SuccessorSets) -> list[NodeId] | None:
    """Find a cycle in a successor graph, or None if it is acyclic.

    Args:
        successors: for each router, the successor set toward one
            destination (``successors[i]`` = :math:`S_j^i`).

    Returns:
        A list of nodes forming a directed cycle (first node repeated at
        the end), or None when the graph is a DAG.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[NodeId, int] = {node: WHITE for node in successors}

    for root in successors:
        if color[root] != WHITE:
            continue
        # Iterative DFS with an explicit stack so deep topologies cannot
        # overflow Python's recursion limit.
        stack: list[tuple[NodeId, list[NodeId]]] = [
            (root, list(successors.get(root, ())))
        ]
        color[root] = GRAY
        path = [root]
        while stack:
            node, pending = stack[-1]
            advanced = False
            while pending:
                nxt = pending.pop()
                state = color.get(nxt, BLACK)  # absent => no out-edges known
                if state == GRAY:
                    cycle = path[path.index(nxt):] + [nxt]
                    return cycle
                if state == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, list(successors.get(nxt, ()))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def is_loop_free(successors: SuccessorSets) -> bool:
    """True when the successor graph contains no directed cycle."""
    return find_successor_cycle(successors) is None


def assert_loop_free(
    successors: SuccessorSets, destination: NodeId | None = None
) -> None:
    """Raise :class:`~repro.exceptions.LoopError` if a cycle exists."""
    cycle = find_successor_cycle(successors)
    if cycle is not None:
        where = f" for destination {destination!r}" if destination is not None else ""
        raise LoopError(f"successor graph{where} has cycle {cycle!r}")


def successor_graph_order(
    successors: SuccessorSets, destination: NodeId
) -> list[NodeId]:
    """Topological order of the routing DAG, *upstream first*.

    Orders nodes so that every router appears before all of its successors
    toward ``destination``; the destination itself (if present) comes last.
    Processing node flows :math:`t_j^i` in this order lets the fluid
    evaluator apply Eq. (1) in a single pass.

    Raises:
        LoopError: if the graph has a cycle.
    """
    indegree: dict[NodeId, int] = {node: 0 for node in successors}
    indegree.setdefault(destination, 0)
    for node, succs in successors.items():
        for nxt in succs:
            indegree[nxt] = indegree.get(nxt, 0) + 1

    # "in-degree" here counts routing predecessors: a node is ready once
    # all routers that forward *through* it have been emitted.
    ready = sorted(
        (node for node, deg in indegree.items() if deg == 0), key=repr
    )
    order: list[NodeId] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for nxt in successors.get(node, ()):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(indegree):
        assert_loop_free(successors, destination)
        raise LoopError("inconsistent successor graph")  # pragma: no cover
    return order
