"""The fleet orchestrator: spawn shards, watch them, merge the answer.

One worker process per shard (``fork`` start method: the plan rides in
by inheritance, and the repository's ``os.register_at_fork`` hooks give
every child a fresh LSU sequence).  The parent is a watchdog, not a
scheduler — cell-to-shard assignment was fixed by the plan, so there is
no work queue to coordinate, no result ordering to get wrong, and a
dead worker loses only its own shard's remaining cells (reported
``crashed`` / ``unrun``, never silently dropped).

The merged report is written next to the shard journals and is byte-
identical across worker counts (see :mod:`repro.fleet.merge`).
"""

from __future__ import annotations

import json
import math
import multiprocessing
import os
import time

from repro.fleet.merge import collect_shards, merge_report, write_report
from repro.fleet.plan import FleetPlan
from repro.fleet.worker import run_shard

#: Grace period (s) past the worst-case per-cell budget before the
#: watchdog terminates a worker that SIGALRM could not unwedge.
WATCHDOG_GRACE = 30.0


def plan_path(out_dir: str) -> str:
    return os.path.join(out_dir, "plan.json")


def report_path(out_dir: str) -> str:
    return os.path.join(out_dir, "report.json")


def _watchdog_deadline(
    plan: FleetPlan, timeout: float | None
) -> float | None:
    """Worst-case wall-clock for one shard, or None (wait forever)."""
    if timeout is None:
        return None
    cells_per_shard = math.ceil(len(plan.cells) / plan.shards)
    return timeout * cells_per_shard + WATCHDOG_GRACE


def run_fleet(
    plan: FleetPlan,
    *,
    out_dir: str,
    timeout: float | None = None,
    inline: bool = False,
) -> dict:
    """Execute a plan and return (and persist) the merged report.

    ``inline=True`` runs every shard sequentially in this process —
    the same journals, the same merge — for debugging and for tests
    that must not fork.
    """
    os.makedirs(out_dir, exist_ok=True)
    with open(plan_path(out_dir), "w") as fh:
        json.dump(plan.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

    if inline:
        for shard_index in range(plan.shards):
            run_shard(plan, shard_index, out_dir, timeout=timeout)
    else:
        _run_sharded(plan, out_dir, timeout)

    records = collect_shards(out_dir, plan.shards)
    report = merge_report(plan, records)
    write_report(report_path(out_dir), report)
    return report


def _run_sharded(
    plan: FleetPlan, out_dir: str, timeout: float | None
) -> None:
    context = multiprocessing.get_context("fork")
    workers = [
        context.Process(
            target=run_shard,
            args=(plan, shard_index, out_dir),
            kwargs={"timeout": timeout},
            name=f"fleet-shard-{shard_index}",
        )
        for shard_index in range(plan.shards)
    ]
    for worker in workers:
        worker.start()
    deadline = _watchdog_deadline(plan, timeout)
    expiry = None if deadline is None else time.monotonic() + deadline
    for worker in workers:
        remaining = (
            None if expiry is None else max(0.0, expiry - time.monotonic())
        )
        worker.join(remaining)
        if worker.is_alive():
            # SIGALRM could not unwedge this shard (cell stuck outside
            # the interpreter); kill it — its journal attributes the
            # loss to the running cell, the merge reports the rest of
            # the shard as unrun.
            worker.terminate()
            worker.join()
