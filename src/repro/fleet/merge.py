"""Order-independent merging of shard journals into one report.

The merger's contract is *byte-identical determinism*: the merged
report is a pure function of (plan, per-cell outcomes).  Completion
order, worker count and wall-clock are all excluded — shard journals
are read whole, re-keyed by plan index, and every aggregate is computed
over index-sorted sequences, so ``--workers 1`` and ``--workers 8``
produce the same bytes for the same plan.

Crash attribution rides on the journal protocol: a ``start`` record
with no matching ``end`` means the cell killed its worker (``crashed``
in the report); cells whose records never appear at all (their worker
died earlier in the shard) are reported ``unrun``.
"""

from __future__ import annotations

import json
import math
import os

from repro.fleet.plan import FleetPlan
from repro.fleet.worker import shard_journal_path

#: Statuses counted as findings rather than harness interventions.
FINDING_STATUSES = ("violation",)
#: Statuses meaning the harness, not the experiment, produced the record.
HARNESS_STATUSES = ("timeout", "error", "crashed", "unrun")


def quantile(values, q: float):
    """Nearest-rank quantile: deterministic, no interpolation."""
    ordered = sorted(values)
    if not ordered:
        return None
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


# ----------------------------------------------------------------------
# journal collection
# ----------------------------------------------------------------------
def collect_shards(out_dir: str, shards: int) -> dict[int, dict]:
    """Read every shard journal into {cell index: end record}.

    Cells with a ``start`` but no ``end`` get a synthesized ``crashed``
    record.  Missing or truncated journal files are tolerated (their
    cells surface as ``unrun`` at merge time).
    """
    records: dict[int, dict] = {}
    for shard_index in range(shards):
        path = shard_journal_path(out_dir, shard_index)
        if not os.path.exists(path):
            continue
        started: int | None = None
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail write: the cell crashed mid-record
                if doc.get("event") == "start":
                    started = doc["cell"]
                elif doc.get("event") == "end":
                    cell = doc["cell"]
                    records[cell] = {
                        k: v for k, v in doc.items() if k != "event"
                    }
                    if started == cell:
                        started = None
        if started is not None and started not in records:
            records[started] = {
                "cell": started,
                "status": "crashed",
                "error": "worker process died while running this cell",
            }
    return records


# ----------------------------------------------------------------------
# kind-specific aggregation
# ----------------------------------------------------------------------
def _fuzz_summary(plan: FleetPlan, rows: list[dict]) -> dict:
    by_policy: dict[str, dict] = {}
    failures = []
    for row in rows:
        policy = row.get("params", {}).get("policy", "mp")
        stats = by_policy.setdefault(
            policy, {"cases": 0, "violations": 0, "harness": 0}
        )
        stats["cases"] += 1
        if row["status"] in FINDING_STATUSES:
            stats["violations"] += 1
            failures.append(
                {
                    "cell": row["cell"],
                    "label": row.get("label", ""),
                    "seed": row.get("params", {}).get("seed"),
                    "policy": policy,
                    "failure": row.get("result", {}).get("failure"),
                    "artifact": row.get("result", {}).get("artifact"),
                }
            )
        elif row["status"] in HARNESS_STATUSES:
            stats["harness"] += 1
    # Message-load quantiles over the protocol cases that passed: a
    # coarse fingerprint of campaign depth (and a determinism canary —
    # any nondeterministic run shifts them).
    delivered = [
        row["result"]["metrics"]["delivered"]
        for row in rows
        if row["status"] == "pass"
        and row.get("params", {}).get("policy", "mp") == "mp"
        and "delivered" in row.get("result", {}).get("metrics", {})
    ]
    return {
        "policies": {k: by_policy[k] for k in sorted(by_policy)},
        "failures": failures,
        "delivered_quantiles": {
            "p50": quantile(delivered, 0.50),
            "p90": quantile(delivered, 0.90),
            "max": max(delivered) if delivered else None,
        },
    }


def _sweep_summary(plan: FleetPlan, rows: list[dict]) -> dict:
    grid = []
    for row in rows:
        if row["status"] != "pass":
            grid.append(
                {
                    "cell": row["cell"],
                    "status": row["status"],
                    **row.get("params", {}),
                }
            )
            continue
        result = row["result"]
        grid.append(
            {
                "cell": row["cell"],
                "status": "pass",
                "eta": result["eta"],
                "tl": result["tl"],
                "loss": result["loss"],
                "avg_ms": result["avg_ms"],
                "max_util": result["max_util"],
                "retransmits": result.get("transport", {}).get("retransmits"),
                "data_sent": result.get("transport", {}).get("data_sent"),
            }
        )
    return {"grid": grid}


def _zoo_summary(plan: FleetPlan, rows: list[dict]) -> dict:
    networks: dict[str, dict] = {}
    for row in rows:
        params = row.get("params", {})
        network = params.get("network", "?")
        policy = params.get("policy", "?")
        per_net = networks.setdefault(network, {})
        if row["status"] != "pass":
            per_net[policy] = {"status": row["status"]}
            continue
        result = row["result"]
        per_net[policy] = {
            "status": "pass",
            "avg_ms": result["avg_ms"],
            "max_util": result["max_util"],
        }
    return {
        "networks": {
            net: {k: policies[k] for k in sorted(policies)}
            for net, policies in sorted(networks.items())
        }
    }


_SUMMARIZERS = {
    "fuzz": _fuzz_summary,
    "sweep": _sweep_summary,
    "zoo": _zoo_summary,
}


# ----------------------------------------------------------------------
# the merge
# ----------------------------------------------------------------------
def merge_report(plan: FleetPlan, records: dict[int, dict]) -> dict:
    """One deterministic report out of per-cell end records.

    ``records`` may arrive in any order and from any number of shards;
    the report depends only on the plan and each cell's outcome.  Note
    the plan's *shard count is deliberately not reported*: the same
    plan must merge to the same bytes regardless of how it was
    distributed.
    """
    rows = []
    counts: dict[str, int] = {}
    for cell in plan.cells:  # plan order == index order (validated)
        record = records.get(
            cell.index,
            {"cell": cell.index, "status": "unrun"},
        )
        row = {
            "cell": cell.index,
            "label": cell.label,
            "kind": cell.kind,
            "params": dict(cell.params),
            "status": record.get("status", "unrun"),
        }
        if "result" in record:
            row["result"] = record["result"]
        if "error" in record:
            row["error"] = record["error"]
        rows.append(row)
        counts[row["status"]] = counts.get(row["status"], 0) + 1
    report = {
        "campaign": plan.kind,
        "meta": dict(plan.meta),
        "cells": len(plan.cells),
        "statuses": {k: counts[k] for k in sorted(counts)},
        "summary": _SUMMARIZERS.get(plan.kind, lambda p, r: {})(plan, rows),
        "rows": rows,
    }
    return report


def write_report(path: str, report: dict) -> None:
    """Persist a merged report (sorted keys: the byte-identity contract)."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def report_bytes(report: dict) -> bytes:
    """The canonical serialized form (what byte-identity is defined on)."""
    return (
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


# ----------------------------------------------------------------------
# rendering (EXPERIMENTS.md)
# ----------------------------------------------------------------------
def render_sweep_tables(report: dict) -> str:
    """Markdown heat-map tables (one per loss rate) from a sweep report.

    Rows are eta (the AH damping step), columns Tl (with Ts = Tl/5);
    each entry is the mean average delay in ms, with the control-plane
    retransmission count in parentheses when the wire was lossy.
    """
    grid = report.get("summary", {}).get("grid", [])
    etas = sorted({row["eta"] for row in grid if "eta" in row})
    tls = sorted({row["tl"] for row in grid if "tl" in row})
    losses = sorted({row["loss"] for row in grid if "loss" in row})
    by_key = {
        (row["eta"], row["tl"], row["loss"]): row
        for row in grid
        if row.get("status") == "pass"
    }
    lines = []
    for loss in losses:
        lines.append(f"**loss = {loss:g}** (avg delay ms; retransmits)")
        lines.append("")
        lines.append(
            "| eta \\ Tl | "
            + " | ".join(f"{tl:g}" for tl in tls)
            + " |"
        )
        lines.append("|---" * (1 + len(tls)) + "|")
        for eta in etas:
            entries = []
            for tl in tls:
                row = by_key.get((eta, tl, loss))
                if row is None:
                    entries.append("-")
                elif row.get("retransmits"):
                    entries.append(
                        f"{row['avg_ms']:.2f} ({row['retransmits']})"
                    )
                else:
                    entries.append(f"{row['avg_ms']:.2f}")
            lines.append(
                f"| {eta:g} | " + " | ".join(entries) + " |"
            )
        lines.append("")
    return "\n".join(lines)


def render_zoo_table(report: dict) -> str:
    """Markdown policy-matrix table from a zoo report."""
    networks = report.get("summary", {}).get("networks", {})
    names = sorted(
        {policy for per_net in networks.values() for policy in per_net}
    )
    nets = sorted(networks)
    header = (
        "| policy | "
        + " | ".join(f"{net} avg (ms)" for net in nets)
        + " | "
        + " | ".join(f"{net} max util" for net in nets)
        + " |"
    )
    lines = [header, "|---" * (1 + 2 * len(nets)) + "|"]
    for name in names:
        delays = []
        utils = []
        for net in nets:
            entry = networks.get(net, {}).get(name)
            if entry is None or entry.get("status") != "pass":
                delays.append("-")
                utils.append("-")
            else:
                delays.append(f"{entry['avg_ms']:.2f}")
                utils.append(f"{entry['max_util']:.2f}")
        lines.append(
            f"| `{name}` | "
            + " | ".join(delays)
            + " | "
            + " | ".join(utils)
            + " |"
        )
    return "\n".join(lines)


def render_fuzz_summary(report: dict) -> str:
    """Human-readable campaign summary for the CLI."""
    statuses = report.get("statuses", {})
    summary = report.get("summary", {})
    lines = [
        f"fleet fuzz: {report.get('cells', 0)} cases — "
        + ", ".join(f"{k}={v}" for k, v in sorted(statuses.items()))
    ]
    for policy, stats in summary.get("policies", {}).items():
        lines.append(
            f"  {policy}: {stats['cases']} cases, "
            f"{stats['violations']} violation(s), "
            f"{stats['harness']} harness event(s)"
        )
    for failure in summary.get("failures", []):
        lines.append(
            f"  FAIL {failure['label']}: "
            f"{failure['failure']['type'] if failure['failure'] else '?'}"
        )
        if failure.get("artifact"):
            lines.append(f"    replay: repro replay {failure['artifact']}")
    return "\n".join(lines)
