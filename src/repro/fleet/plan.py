"""Fleet plans: deterministic experiment grids with stable sharding.

A :class:`FleetPlan` is the unit the orchestrator distributes: an
ordered tuple of :class:`Cell`\\ s (each one self-contained, JSON-
serializable experiment) plus a shard count.  Three properties carry
the whole design:

- **Cells are pure functions of the plan.**  A cell's params fully
  determine its run (seeds included), so any cell reproduces standalone
  — paste its params into :func:`repro.fleet.worker.run_cell` and the
  fleet's answer comes back.
- **Shard assignment is stable arithmetic.**  Cell ``i`` belongs to
  shard ``i % shards`` — no ``hash()`` (randomized per interpreter), no
  dependence on worker count beyond the modulus — so the same plan
  shards identically across processes, machines and Python versions.
- **Order is the plan's, never the workers'.**  Every cell carries its
  plan index; the merger sorts by it, so the merged report is invariant
  to completion order and worker count.

Builders produce the three campaign shapes the CLI exposes:
:func:`fuzz_plan` (seeded case grids across the policy zoo),
:func:`sweep_plan` (eta x Tl x loss heat-map grids) and
:func:`zoo_plan` (policy x network comparison matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cell kinds the worker knows how to run.  "diag" is test support:
#: deterministic sleep/crash/fail cells for exercising the timeout and
#: crash-capture paths without real workloads.
KINDS = ("fuzz", "sweep", "zoo", "diag")

#: Policies fuzzed by default: the protocol itself plus every zoo
#: member with a dynamic lifecycle.  ``opt`` is deliberately absent —
#: Gallager's optimum is stationary by construction (it neither reroutes
#: on costs nor reacts to failures), so schedule fuzzing would only
#: measure the harness.
FUZZ_POLICIES = (
    "mp",
    "mp-oracle",
    "sp",
    "ecmp",
    "ecmp-hop",
    "ecmp-k",
    "backpressure-lr",
)

#: Default sweep axes: AH damping (the paper's eta), the long-term
#: update interval Tl (with Ts locked to Tl/5, the paper's ratio), and
#: control-plane loss (retransmission overhead under ReliableTransport).
SWEEP_ETAS = (0.3, 0.6, 1.0)
SWEEP_TLS = (10.0, 20.0, 40.0)
SWEEP_LOSSES = (0.0, 0.1, 0.2)


@dataclass(frozen=True)
class Cell:
    """One self-contained experiment of a fleet plan."""

    index: int  # position in the plan (merge key, shard key)
    kind: str  # one of KINDS
    params: dict  # JSON-serializable, fully determines the run
    label: str = ""  # human-readable tag for reports and logs

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown cell kind {self.kind!r}")

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "params": dict(self.params),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Cell":
        return cls(
            index=doc["index"],
            kind=doc["kind"],
            params=doc["params"],
            label=doc.get("label", ""),
        )


@dataclass(frozen=True)
class FleetPlan:
    """An ordered cell grid plus its shard count."""

    kind: str  # campaign kind (what the merger aggregates as)
    cells: tuple[Cell, ...]
    shards: int = 1
    meta: dict = field(default_factory=dict)  # campaign-level params

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        for position, cell in enumerate(self.cells):
            if cell.index != position:
                raise ValueError(
                    f"cell at position {position} carries index "
                    f"{cell.index}; plan indices must be dense"
                )

    def shard(self, shard_index: int) -> tuple[Cell, ...]:
        """The cells shard ``shard_index`` owns (round-robin by index).

        Round-robin (not contiguous blocks) keeps shard workloads
        balanced when cost correlates with position — e.g. consecutive
        fuzz seeds of the same policy.
        """
        if not 0 <= shard_index < self.shards:
            raise ValueError(
                f"shard {shard_index} out of range for {self.shards}"
            )
        return tuple(
            cell
            for cell in self.cells
            if cell.index % self.shards == shard_index
        )

    def with_shards(self, shards: int) -> "FleetPlan":
        """The same plan distributed over a different worker count."""
        return FleetPlan(
            kind=self.kind, cells=self.cells, shards=shards, meta=self.meta
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cells": [cell.as_dict() for cell in self.cells],
            "shards": self.shards,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FleetPlan":
        return cls(
            kind=doc["kind"],
            cells=tuple(Cell.from_dict(c) for c in doc["cells"]),
            shards=doc["shards"],
            meta=doc.get("meta", {}),
        )


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def fuzz_plan(
    cases: int,
    *,
    seed: int = 0,
    policies: tuple[str, ...] = FUZZ_POLICIES,
    reliable: bool = True,
    shards: int = 1,
    minimize: bool = True,
) -> FleetPlan:
    """A sharded fuzz campaign: ``cases`` seeds across ``policies``.

    Case seeds interleave across policies (cell order: seed-major), so
    truncating the campaign still covers every policy, and the same
    seed hits every policy with the identical topology and schedule.
    """
    cells = []
    for number in range(cases):
        case_seed = seed + number // len(policies)
        policy = policies[number % len(policies)]
        cells.append(
            Cell(
                index=number,
                kind="fuzz",
                params={
                    "seed": case_seed,
                    "policy": policy,
                    "reliable": reliable,
                    "minimize": minimize,
                },
                label=f"fuzz:{policy}:{case_seed}",
            )
        )
    return FleetPlan(
        kind="fuzz",
        cells=tuple(cells),
        shards=shards,
        meta={
            "cases": cases,
            "seed": seed,
            "policies": list(policies),
            "reliable": reliable,
        },
    )


def sweep_plan(
    *,
    etas: tuple[float, ...] = SWEEP_ETAS,
    tls: tuple[float, ...] = SWEEP_TLS,
    losses: tuple[float, ...] = SWEEP_LOSSES,
    network: str = "cairn",
    duration: float = 120.0,
    warmup: float = 40.0,
    shards: int = 1,
) -> FleetPlan:
    """The eta x Tl x loss grid on one evaluation network."""
    cells = []
    index = 0
    for eta in etas:
        for tl in tls:
            for loss in losses:
                cells.append(
                    Cell(
                        index=index,
                        kind="sweep",
                        params={
                            "eta": eta,
                            "tl": tl,
                            "loss": loss,
                            "network": network,
                            "duration": duration,
                            "warmup": warmup,
                        },
                        label=(
                            f"sweep:eta={eta:g}:tl={tl:g}:loss={loss:g}"
                        ),
                    )
                )
                index += 1
    return FleetPlan(
        kind="sweep",
        cells=tuple(cells),
        shards=shards,
        meta={
            "etas": list(etas),
            "tls": list(tls),
            "losses": list(losses),
            "network": network,
            "duration": duration,
            "warmup": warmup,
        },
    )


def zoo_plan(
    *,
    policies: tuple[str, ...] = (),
    networks: tuple[str, ...] = ("cairn", "net1"),
    duration: float = 200.0,
    warmup: float = 60.0,
    shards: int = 1,
) -> FleetPlan:
    """The policy x network comparison matrix, one cell per pair.

    An empty ``policies`` means the whole registry at worker time, which
    would make the plan depend on import state; the builder pins the
    registry's names eagerly instead so the plan is self-describing.
    """
    if not policies:
        from repro.policy import available_policies

        policies = tuple(available_policies())
    cells = []
    index = 0
    for network in networks:
        for policy in policies:
            cells.append(
                Cell(
                    index=index,
                    kind="zoo",
                    params={
                        "policy": policy,
                        "network": network,
                        "duration": duration,
                        "warmup": warmup,
                    },
                    label=f"zoo:{network}:{policy}",
                )
            )
            index += 1
    return FleetPlan(
        kind="zoo",
        cells=tuple(cells),
        shards=shards,
        meta={
            "policies": list(policies),
            "networks": list(networks),
            "duration": duration,
            "warmup": warmup,
        },
    )
