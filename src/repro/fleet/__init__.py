"""repro.fleet — the parallel experiment fleet.

A :class:`~repro.fleet.plan.FleetPlan` turns a campaign (a seeded fuzz
grid, an eta x Tl x loss sweep, a policy-zoo matrix) into an ordered
tuple of self-contained cells with stable round-robin shard assignment;
:func:`~repro.fleet.orchestrator.run_fleet` executes the shards in
worker processes (per-cell timeouts, journal-based crash capture,
per-cell process-state reset) and merges the journals into one
deterministic report — byte-identical across worker counts and
completion orders.  The ``repro fleet fuzz|sweep|zoo`` CLI fronts it.
"""

from repro.fleet.merge import (
    collect_shards,
    merge_report,
    render_fuzz_summary,
    render_sweep_tables,
    render_zoo_table,
    write_report,
)
from repro.fleet.orchestrator import run_fleet
from repro.fleet.plan import (
    FUZZ_POLICIES,
    Cell,
    FleetPlan,
    fuzz_plan,
    sweep_plan,
    zoo_plan,
)
from repro.fleet.worker import execute_cell, reset_cell_state, run_cell, run_shard

__all__ = [
    "FUZZ_POLICIES",
    "Cell",
    "FleetPlan",
    "collect_shards",
    "execute_cell",
    "fuzz_plan",
    "merge_report",
    "render_fuzz_summary",
    "render_sweep_tables",
    "render_zoo_table",
    "reset_cell_state",
    "run_cell",
    "run_fleet",
    "run_shard",
    "sweep_plan",
    "write_report",
    "zoo_plan",
]
