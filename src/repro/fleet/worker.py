"""The fleet worker: one process, one shard, crash-isolated cells.

Each worker owns one shard of the plan and executes its cells strictly
in plan order, writing a JSONL journal (``shard-<n>.jsonl``) with a
``start`` record before and an ``end`` record after every cell.  The
journal is the crash-capture mechanism: a cell that kills its process
(segfault, ``os._exit``, OOM kill) leaves a ``start`` with no ``end``,
and the merger attributes the death to exactly that cell — the rest of
the campaign is unaffected because every other cell lives in its own
process or behind its own journal entry.

Per-cell timeouts use ``SIGALRM`` (workers run cells on their main
thread), so a wedged cell is converted into an ordinary ``timeout``
record instead of stalling the shard; the orchestrator's watchdog backs
this up for cells stuck outside the interpreter.

Before every cell the worker resets the process-wide state a cell could
leak into the next — the LSU sequence counter and the deprecation
warn-once registry — so any cell reproduces standalone and two
sequential in-process cells behave like two fresh processes.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import time

from repro import deprecation
from repro.core.linkstate import reset_lsu_sequence
from repro.fleet.plan import Cell, FleetPlan
from repro.testing.fuzz import (
    examine_case,
    generate_case,
    minimize_case,
    write_artifact,
)


class CellTimeout(Exception):
    """A cell exceeded its per-cell wall-clock budget."""


@contextlib.contextmanager
def _deadline(seconds: float | None):
    """Raise :class:`CellTimeout` in ``seconds`` (None = no limit)."""
    if seconds is None:
        yield
        return

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded its {seconds:g}s budget")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def reset_cell_state() -> None:
    """Scrub process-wide state so the next cell runs as if standalone.

    Two known leaks, both regression-tested: the LSU sequence counter
    (causal tags key on it — a fresh cell must see a fresh sequence)
    and the deprecation warn-once registry (a cell must warn exactly as
    a standalone process would).
    """
    reset_lsu_sequence()
    deprecation.reset()


# ----------------------------------------------------------------------
# cell execution
# ----------------------------------------------------------------------
def _artifact_stem(policy: str, seed: int) -> str:
    if policy == "mp":
        return f"fuzz-case-{seed}"
    return f"fuzz-case-{policy}-{seed}"


def _run_fuzz_cell(params: dict, artifacts_dir: str | None) -> dict:
    case = generate_case(
        params["seed"],
        reliable=params.get("reliable", True),
        policy=params.get("policy", "mp"),
    )
    verdict = examine_case(case)
    if verdict["status"] == "pass":
        return {"status": "pass", "metrics": verdict["metrics"]}
    failure = verdict["failure"]
    out = {
        "status": "violation",
        "seed": case.seed,
        "policy": case.policy,
        "failure": failure,
    }
    if params.get("minimize", True):
        case, failure = minimize_case(case)
        out["failure"] = failure
        out["minimized_events"] = len(case.schedule)
    if artifacts_dir is not None:
        os.makedirs(artifacts_dir, exist_ok=True)
        path = os.path.join(
            artifacts_dir,
            f"{_artifact_stem(case.policy, case.seed)}.json",
        )
        write_artifact(path, case, failure)
        out["artifact"] = path
    return out


def _sweep_scenario(network: str):
    # Same operating points as the zoo benchmarks (figs. 9-12).
    from repro.sim.scenario import cairn_scenario, net1_scenario

    if network == "cairn":
        return cairn_scenario(load=1.2)
    if network == "net1":
        return net1_scenario(load=1.35)
    raise ValueError(f"unknown network {network!r}")


def _transport_gauges(snapshot: dict) -> dict:
    """Control-plane overhead counters out of an obs snapshot.

    Gauge entries are keyed by label set (the unlabeled series is
    ``""``): ``gauges["transport.retransmits"][""]["value"]``.
    """
    gauges = snapshot.get("metrics", {}).get("gauges", {})
    wanted = ("data_sent", "retransmits", "timeouts", "sent", "delivered")
    out = {}
    for name, series in gauges.items():
        if not name.startswith("transport."):
            continue
        short = name[len("transport."):]
        entry = series.get("") if isinstance(series, dict) else None
        if short in wanted and isinstance(entry, dict):
            out[short] = entry.get("value")
    return out


def _run_sweep_cell(params: dict) -> dict:
    from repro import obs
    from repro.sim.control import QuasiStaticConfig, run
    from repro.units import ms

    tl = params["tl"]
    loss = params.get("loss", 0.0)
    policy_params = {"loss": loss} if loss > 0.0 else {}
    config = QuasiStaticConfig(
        tl=tl,
        ts=tl / 5.0,
        duration=params.get("duration", 120.0),
        warmup=params.get("warmup", 40.0),
        damping=params["eta"],
        policy="mp",
        policy_params=policy_params,
    )
    scenario = _sweep_scenario(params.get("network", "cairn"))
    with obs.observe() as ob:
        result = run(scenario, config)
        snapshot = ob.snapshot()
    return {
        "status": "pass",
        "eta": params["eta"],
        "tl": tl,
        "loss": loss,
        "avg_ms": ms(result.mean_average_delay()),
        "max_util": result.peak_utilization(),
        "transport": _transport_gauges(snapshot),
    }


def _run_zoo_cell(params: dict) -> dict:
    from repro.bench.figures import policy_zoo_cell

    cell = policy_zoo_cell(
        params["policy"],
        params.get("network", "cairn"),
        duration=params.get("duration", 200.0),
        warmup=params.get("warmup", 60.0),
    )
    return {"status": "pass", **cell}


def _run_diag_cell(params: dict) -> dict:
    """Test-support cells for the timeout/crash/error paths."""
    action = params.get("action", "pass")
    if action == "pass":
        return {"status": "pass", "echo": params.get("echo")}
    if action == "sleep":
        time.sleep(params.get("seconds", 60.0))
        return {"status": "pass"}
    if action == "fail":
        raise RuntimeError(params.get("message", "diag failure"))
    if action == "crash":
        os._exit(params.get("code", 3))
    raise ValueError(f"unknown diag action {action!r}")


def run_cell(cell: Cell, *, artifacts_dir: str | None = None) -> dict:
    """Execute one cell and return its JSON-serializable result."""
    if cell.kind == "fuzz":
        return _run_fuzz_cell(cell.params, artifacts_dir)
    if cell.kind == "sweep":
        return _run_sweep_cell(cell.params)
    if cell.kind == "zoo":
        return _run_zoo_cell(cell.params)
    if cell.kind == "diag":
        return _run_diag_cell(cell.params)
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def execute_cell(
    cell: Cell,
    *,
    artifacts_dir: str | None = None,
    timeout: float | None = None,
) -> dict:
    """Run one cell with state reset, deadline and error capture.

    Always returns a record (never raises): ``status`` is the cell's
    own verdict (``pass`` / ``violation``), or ``timeout`` / ``error``
    when the harness had to intervene.
    """
    reset_cell_state()
    try:
        with _deadline(timeout):
            result = run_cell(cell, artifacts_dir=artifacts_dir)
    except CellTimeout as error:
        return {"cell": cell.index, "status": "timeout", "error": str(error)}
    except Exception as error:  # noqa: BLE001 - the journal is the report
        return {
            "cell": cell.index,
            "status": "error",
            "error": {"type": type(error).__name__, "message": str(error)},
        }
    status = result.pop("status", "pass")
    return {"cell": cell.index, "status": status, "result": result}


def shard_journal_path(out_dir: str, shard_index: int) -> str:
    return os.path.join(out_dir, f"shard-{shard_index}.jsonl")


def run_shard(
    plan: FleetPlan,
    shard_index: int,
    out_dir: str,
    *,
    timeout: float | None = None,
) -> str:
    """Execute one shard, journaling every cell; returns the journal path.

    This is the worker process's entry point (the orchestrator spawns
    it), but it is an ordinary function: calling it in-process runs the
    shard inline, which is how ``--workers 1`` tests and debugging
    sessions reproduce fleet behavior without any multiprocessing.
    """
    artifacts_dir = os.path.join(out_dir, "artifacts")
    path = shard_journal_path(out_dir, shard_index)
    with open(path, "w") as fh:
        for cell in plan.shard(shard_index):
            fh.write(
                json.dumps(
                    {
                        "event": "start",
                        "cell": cell.index,
                        "label": cell.label,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            fh.flush()  # the crash-capture contract: start hits disk
            record = execute_cell(
                cell, artifacts_dir=artifacts_dir, timeout=timeout
            )
            fh.write(
                json.dumps({"event": "end", **record}, sort_keys=True) + "\n"
            )
            fh.flush()
    return path
