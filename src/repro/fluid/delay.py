"""The paper's link-delay law and its derivatives.

Links are modeled as M/M/1 queues plus a propagation term (Eq. 24):

.. math::

    D_{ik}(f_{ik}) = \\frac{f_{ik}}{C_{ik} - f_{ik}} + \\tau_{ik} f_{ik}

where :math:`f` is the link flow and :math:`C` the capacity, both in
packets/s, and :math:`\\tau` the propagation delay in seconds.  By Little's
law the first term is the expected number of messages in the system, so
:math:`D` has units of *delay-rate* (seconds of delay accumulated per
second); the total network delay measure is :math:`D_T = \\sum D_{ik}`
(Eq. 3), and the delay experienced per unit of traffic on the link is
:math:`D(f)/f = 1/(C-f) + \\tau`.

The marginal (incremental) delay — the paper's link cost — is

.. math::

    D'_{ik}(f) = \\frac{C}{(C-f)^2} + \\tau .

As the paper notes, Eq. (24) "becomes unstable when :math:`f`
approaches :math:`C`"; iterative optimizers need finite values beyond
capacity, so :class:`MM1Delay` extends the law quadratically above a
utilization knee ``rho_max`` (keeping value, slope and curvature
continuous).  Exact (un-extended) evaluation is available via
``strict=True``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import CapacityError, TopologyError
from repro.graph.topology import LinkId, Topology

INFINITY = float("inf")

#: Default utilization knee above which the quadratic extension applies.
DEFAULT_RHO_MAX = 0.98


@dataclass(frozen=True)
class MM1Delay:
    """The delay law of one link: M/M/1 queueing plus propagation.

    Attributes:
        capacity: link capacity :math:`C` in packets/s.
        prop_delay: propagation delay :math:`\\tau` in seconds.
        rho_max: utilization where the quadratic extension takes over.
        queue_limit: optional output-buffer size in packets.  When set,
            the *per-unit* delay saturates at the full-buffer waiting
            time ``(queue_limit + 1) / C`` — what a packet actually
            experiences on a real router during overload epochs.  The
            delay-rate value and its derivatives stay unbounded/convex
            (optimizers must keep seeing the true gradient).
    """

    capacity: float
    prop_delay: float = 0.0
    rho_max: float = DEFAULT_RHO_MAX
    queue_limit: float | None = None

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise CapacityError(f"capacity must be positive: {self.capacity!r}")
        if not 0.0 < self.rho_max < 1.0:
            raise CapacityError(f"rho_max must be in (0, 1): {self.rho_max!r}")
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise CapacityError(
                f"queue_limit must be positive: {self.queue_limit!r}"
            )

    @property
    def knee(self) -> float:
        """Flow value at which the extension begins."""
        return self.rho_max * self.capacity

    # -- exact law -----------------------------------------------------
    def _exact_value(self, f: float) -> float:
        return f / (self.capacity - f) + self.prop_delay * f

    def _exact_marginal(self, f: float) -> float:
        c = self.capacity
        return c / (c - f) ** 2 + self.prop_delay

    def _exact_second(self, f: float) -> float:
        c = self.capacity
        return 2.0 * c / (c - f) ** 3

    # -- public surface ------------------------------------------------
    def value(self, f: float, strict: bool = False) -> float:
        """Delay-rate :math:`D(f)`.

        With ``strict=True`` the pure M/M/1 law is used and flows at or
        above capacity yield ``inf``; otherwise the quadratic extension
        keeps the value finite (and still convex) above the knee.
        """
        self._check_flow(f)
        if strict:
            return self._exact_value(f) if f < self.capacity else INFINITY
        knee = self.knee
        if f <= knee:
            return self._exact_value(f)
        df = f - knee
        return (
            self._exact_value(knee)
            + self._exact_marginal(knee) * df
            + 0.5 * self._exact_second(knee) * df * df
        )

    def marginal(self, f: float, strict: bool = False) -> float:
        """Marginal delay :math:`D'(f)` — the paper's link cost.

        With a finite ``queue_limit``, the cost saturates at the
        full-buffer waiting time: once the buffer is pinned, adding a
        packet costs at most one buffer drain.  This matches what any
        measurement-based estimator can report on a real router and
        keeps route updates bounded under overload.
        """
        self._check_flow(f)
        if strict:
            return self._exact_marginal(f) if f < self.capacity else INFINITY
        knee = self.knee
        if f <= knee:
            raw = self._exact_marginal(f)
        else:
            raw = self._exact_marginal(knee) + self._exact_second(knee) * (
                f - knee
            )
        if self.queue_limit is not None:
            cap = (self.queue_limit + 1.0) / self.capacity + self.prop_delay
            return min(raw, cap)
        return raw

    def second(self, f: float, strict: bool = False) -> float:
        """Second derivative :math:`D''(f)` (used by curvature-aware steps)."""
        self._check_flow(f)
        if strict:
            return self._exact_second(f) if f < self.capacity else INFINITY
        return self._exact_second(min(f, self.knee))

    def per_unit(self, f: float, strict: bool = False) -> float:
        """Delay per unit of traffic, :math:`D(f)/f = 1/(C-f) + \\tau`.

        Well defined at :math:`f = 0` (the idle per-bit delay) and, in the
        non-strict form, finite everywhere.
        """
        self._check_flow(f)
        if strict:
            if f >= self.capacity:
                return INFINITY
            return 1.0 / (self.capacity - f) + self.prop_delay
        knee = self.knee
        if f <= knee:
            waiting = 1.0 / (self.capacity - f)
        else:
            # Consistent with the extended value(): D(f)/f.
            waiting = self.value(f) / f - self.prop_delay
        if self.queue_limit is not None:
            waiting = min(
                waiting, (self.queue_limit + 1.0) / self.capacity
            )
        return waiting + self.prop_delay

    def utilization(self, f: float) -> float:
        """Link utilization :math:`\\rho = f / C`."""
        self._check_flow(f)
        return f / self.capacity

    @staticmethod
    def _check_flow(f: float) -> None:
        if f < 0:
            raise CapacityError(f"negative link flow: {f!r}")


@dataclass
class DelayModel:
    """Per-link delay laws for a whole topology."""

    functions: dict[LinkId, MM1Delay] = field(default_factory=dict)

    @classmethod
    def for_topology(
        cls,
        topo: Topology,
        rho_max: float = DEFAULT_RHO_MAX,
        queue_limit: float | None = None,
    ) -> "DelayModel":
        """Build the model from each link's capacity and propagation delay."""
        return cls(
            {
                ln.link_id: MM1Delay(
                    ln.capacity, ln.prop_delay, rho_max, queue_limit
                )
                for ln in topo.links()
            }
        )

    def __getitem__(self, link_id: LinkId) -> MM1Delay:
        try:
            return self.functions[link_id]
        except KeyError:
            head, tail = link_id
            raise TopologyError(
                f"no delay law for link {head!r}->{tail!r}"
            ) from None

    def __contains__(self, link_id: LinkId) -> bool:
        return link_id in self.functions

    def total_delay(
        self, flows: Mapping[LinkId, float], strict: bool = False
    ) -> float:
        """:math:`D_T = \\sum_{(i,k)} D_{ik}(f_{ik})` (Eq. 3)."""
        return sum(
            self[link_id].value(f, strict=strict)
            for link_id, f in flows.items()
        )

    def marginals(
        self, flows: Mapping[LinkId, float], strict: bool = False
    ) -> dict[LinkId, float]:
        """Marginal delay of every link in ``flows`` — a routing cost map.

        Links of the model absent from ``flows`` are treated as idle.
        """
        costs = {
            link_id: fn.marginal(0.0) for link_id, fn in self.functions.items()
        }
        for link_id, f in flows.items():
            costs[link_id] = self[link_id].marginal(f, strict=strict)
        return costs

    def per_unit_delays(
        self, flows: Mapping[LinkId, float], strict: bool = False
    ) -> dict[LinkId, float]:
        """Per-unit-traffic delay of every link (used for per-flow delays)."""
        delays = {
            link_id: fn.per_unit(0.0) for link_id, fn in self.functions.items()
        }
        for link_id, f in flows.items():
            delays[link_id] = self[link_id].per_unit(f, strict=strict)
        return delays
