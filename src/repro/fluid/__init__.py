"""Fluid (flow-level) network model.

This subpackage evaluates a *routing parameter set* (the paper's
:math:`\\phi^i_{jk}`) against a traffic matrix analytically:

- :mod:`repro.fluid.delay` — the paper's M/M/1 link-delay law, Eq. (24),
  its marginal, and a stabilized extension used by optimizers;
- :mod:`repro.fluid.flows` — flows and traffic matrices;
- :mod:`repro.fluid.evaluator` — node flows :math:`t^i_j` (Eq. 1), link
  flows :math:`f_{ik}` (Eq. 2), total delay :math:`D_T` (Eq. 3) and
  per-flow expected delays.

Gallager's OPT descends on exactly these quantities, and the quasi-static
simulator uses them as its data plane.
"""

from repro.fluid.delay import DelayModel, MM1Delay
from repro.fluid.flows import Flow, TrafficMatrix
from repro.fluid.evaluator import (
    FluidEvaluation,
    evaluate,
    link_flows,
    node_flows,
    node_flows_iterative,
)
from repro.fluid.queues import FluidQueues

__all__ = [
    "MM1Delay",
    "DelayModel",
    "Flow",
    "TrafficMatrix",
    "FluidEvaluation",
    "FluidQueues",
    "evaluate",
    "node_flows",
    "node_flows_iterative",
    "link_flows",
]
