"""Evaluate routing parameters against a traffic matrix.

Given routing parameters :math:`\\phi^i_{jk}` (fraction of the traffic at
router *i* destined to *j* that leaves over link *(i, k)*), this module
computes the chain of quantities in Section 2.1 of the paper:

- node flows :math:`t^i_j = r^i_j + \\sum_k t^k_j \\phi^k_{ji}` (Eq. 1),
- link flows :math:`f_{ik} = \\sum_j t^i_j \\phi^i_{jk}` (Eq. 2),
- total delay :math:`D_T = \\sum_{(i,k)} D_{ik}(f_{ik})` (Eq. 3),
- per-flow expected delays (what the paper's figures plot).

When the routing graph for a destination is loop-free (which every
algorithm in this library guarantees), node flows are computed exactly in
one pass over a topological order; :func:`node_flows_iterative` is the
fallback for arbitrary (possibly cyclic) parameters, used to study what
transient loops would do to delays.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import AllocationError, ConvergenceError, RoutingError
from repro.fluid.delay import DelayModel
from repro.fluid.flows import TrafficMatrix
from repro.graph.topology import LinkId, NodeId, Topology
from repro.graph.validation import successor_graph_order

#: phi[i][j][k]: at router i, fraction of traffic for destination j
#: forwarded to neighbor k.
Phi = Mapping[NodeId, Mapping[NodeId, Mapping[NodeId, float]]]

#: Traffic below this rate (packets/s) is treated as zero.
FLOW_EPSILON = 1e-9

#: Tolerated normalization error on a router's routing parameters.
NORMALIZATION_TOLERANCE = 1e-6


def _fractions(
    phi: Phi, node: NodeId, destination: NodeId
) -> dict[NodeId, float]:
    """Validated, normalized routing fractions of ``node`` toward ``destination``.

    Empty when the router has no entry (it then must carry no traffic for
    the destination).  Enforces Property 1: non-negative, summing to one.
    """
    per_dest = phi.get(node)
    if per_dest is None:
        return {}
    raw = per_dest.get(destination)
    if not raw:
        return {}
    total = 0.0
    for nbr, fraction in raw.items():
        if fraction < -NORMALIZATION_TOLERANCE:
            raise AllocationError(
                f"phi[{node!r}][{destination!r}][{nbr!r}] = {fraction!r} < 0"
            )
        total += max(fraction, 0.0)
    if total == 0.0:
        return {}
    if abs(total - 1.0) > NORMALIZATION_TOLERANCE:
        raise AllocationError(
            f"phi[{node!r}][{destination!r}] sums to {total!r}, expected 1"
        )
    return {
        nbr: max(fraction, 0.0) / total
        for nbr, fraction in raw.items()
        if fraction > 0.0
    }


class _EvalCache:
    """Per-evaluation memo of fractions and successor orders.

    One :func:`evaluate` call asks for the same validated fractions from
    ``link_flows``, ``flow_delays`` and the topological orders several
    times; ``phi`` does not change within an evaluation, so memoizing
    these pure lookups returns bit-identical values.
    """

    __slots__ = ("fractions", "orders")

    def __init__(self) -> None:
        self.fractions: dict[tuple[NodeId, NodeId], dict[NodeId, float]] = {}
        self.orders: dict[NodeId, list[NodeId]] = {}


def _cached_fractions(
    phi: Phi, node: NodeId, destination: NodeId, cache: _EvalCache | None
) -> dict[NodeId, float]:
    if cache is None:
        return _fractions(phi, node, destination)
    key = (node, destination)
    try:
        return cache.fractions[key]
    except KeyError:
        out = cache.fractions[key] = _fractions(phi, node, destination)
        return out


def _successor_order(
    phi: Phi, destination: NodeId, cache: _EvalCache | None
) -> list[NodeId]:
    if cache is not None and destination in cache.orders:
        return cache.orders[destination]
    successors = destination_successors(phi, destination, _cache=cache)
    order = successor_graph_order(successors, destination)
    if cache is not None:
        cache.orders[destination] = order
    return order


def destination_successors(
    phi: Phi, destination: NodeId, *, _cache: _EvalCache | None = None
) -> dict[NodeId, list[NodeId]]:
    """Successor sets implied by the routing parameters (Eq. 9)."""
    return {
        node: list(_cached_fractions(phi, node, destination, _cache))
        for node in phi
        if node != destination
    }


def node_flows(
    phi: Phi,
    rates: Mapping[NodeId, float],
    destination: NodeId,
    *,
    _cache: _EvalCache | None = None,
) -> dict[NodeId, float]:
    """Node flows :math:`t^i_j` for one destination (Eq. 1), exact on DAGs.

    Args:
        phi: routing parameters.
        rates: input rates :math:`r^i_j` toward ``destination``.
        destination: the destination *j*.

    Raises:
        LoopError: if the successor graph for ``destination`` is cyclic.
        RoutingError: if traffic reaches a router with no successors.
    """
    order = _successor_order(phi, destination, _cache)

    flows: dict[NodeId, float] = {node: 0.0 for node in order}
    for node, rate in rates.items():
        if node == destination or rate <= 0:
            continue
        if node not in flows:
            raise RoutingError(
                f"traffic enters at {node!r} but no routing parameters exist"
            )
        flows[node] += rate

    for node in order:
        if node == destination:
            continue
        t = flows[node]
        if t <= FLOW_EPSILON:
            continue
        fractions = _cached_fractions(phi, node, destination, _cache)
        if not fractions:
            raise RoutingError(
                f"router {node!r} carries {t:.3g} pkt/s for {destination!r} "
                "but has no successors (black hole)"
            )
        for nbr, fraction in fractions.items():
            flows[nbr] = flows.get(nbr, 0.0) + t * fraction
    return flows


def node_flows_iterative(
    phi: Phi,
    rates: Mapping[NodeId, float],
    destination: NodeId,
    *,
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> dict[NodeId, float]:
    """Node flows by fixed-point iteration; tolerates cyclic parameters.

    Solves :math:`t = r + \\Phi^{\\top} t` by repeated substitution.  With a
    traffic-recirculating loop the series diverges and a
    :class:`~repro.exceptions.ConvergenceError` is raised — mirroring the
    paper's observation that "even temporary loops cause traffic to
    recirculate" and corrupt delay computations.
    """
    nodes: set[NodeId] = set(phi) | set(rates) | {destination}
    flows = {
        node: (rates.get(node, 0.0) if node != destination else 0.0)
        for node in nodes
    }
    base = dict(flows)
    for _ in range(max_iterations):
        nxt = dict(base)
        for node in nodes:
            if node == destination:
                continue
            t = flows[node]
            if t <= FLOW_EPSILON:
                continue
            for nbr, fraction in _fractions(phi, node, destination).items():
                if nbr == destination:
                    continue
                nxt[nbr] = nxt.get(nbr, 0.0) + t * fraction
        drift = max(
            abs(nxt.get(n, 0.0) - flows.get(n, 0.0)) for n in nodes
        )
        flows = nxt
        if drift <= tolerance:
            # Add the destination's received traffic for parity with
            # node_flows(): t at j counts what arrives there.
            arrived = 0.0
            for node in nodes:
                if node == destination:
                    continue
                frac = _fractions(phi, node, destination).get(destination, 0.0)
                arrived += flows.get(node, 0.0) * frac
            flows[destination] = arrived
            return flows
    raise ConvergenceError(
        f"node flows for destination {destination!r} did not converge; "
        "routing parameters likely contain a traffic-recirculating loop"
    )


def link_flows(
    phi: Phi, traffic: TrafficMatrix, *, _cache: _EvalCache | None = None
) -> dict[LinkId, float]:
    """Link flows :math:`f_{ik}` (Eq. 2) summed over all destinations."""
    flows: dict[LinkId, float] = {}
    for destination in traffic.destinations():
        rates = traffic.rates_to(destination)
        node_t = node_flows(phi, rates, destination, _cache=_cache)
        for node, t in node_t.items():
            if node == destination or t <= FLOW_EPSILON:
                continue
            fractions = _cached_fractions(phi, node, destination, _cache)
            for nbr, fraction in fractions.items():
                link_id = (node, nbr)
                flows[link_id] = flows.get(link_id, 0.0) + t * fraction
    return flows


def flow_delays(
    phi: Phi,
    traffic: TrafficMatrix,
    per_unit_delay: Mapping[LinkId, float],
    *,
    _cache: _EvalCache | None = None,
) -> dict[str, float]:
    """Expected end-to-end delay of each flow, in seconds.

    For destination *j*, the expected remaining delay from router *i*
    satisfies :math:`W_j(i) = \\sum_k \\phi^i_{jk}\\,(w_{ik} + W_j(k))`
    with :math:`W_j(j) = 0`, where :math:`w_{ik}` is the per-unit link
    delay.  Evaluated downstream-first on the routing DAG.
    """
    delays: dict[str, float] = {}
    cache: dict[NodeId, dict[NodeId, float]] = {}
    for flow in traffic.flows:
        destination = flow.destination
        if destination not in cache:
            cache[destination] = _remaining_delays(
                phi, destination, per_unit_delay, _cache=_cache
            )
        remaining = cache[destination]
        if flow.source not in remaining:
            raise RoutingError(
                f"flow {flow.label()}: no route from {flow.source!r} "
                f"to {destination!r}"
            )
        delays[flow.label()] = remaining[flow.source]
    return delays


def _remaining_delays(
    phi: Phi,
    destination: NodeId,
    per_unit_delay: Mapping[LinkId, float],
    *,
    _cache: _EvalCache | None = None,
) -> dict[NodeId, float]:
    order = _successor_order(phi, destination, _cache)
    remaining: dict[NodeId, float] = {destination: 0.0}
    for node in reversed(order):
        if node == destination:
            continue
        fractions = _cached_fractions(phi, node, destination, _cache)
        if not fractions:
            continue  # carries no traffic; skip rather than invent a value
        total = 0.0
        for nbr, fraction in fractions.items():
            try:
                w_link = per_unit_delay[(node, nbr)]
            except KeyError:
                raise RoutingError(
                    f"no delay for link {node!r}->{nbr!r}"
                ) from None
            down = remaining.get(nbr)
            if down is None:
                raise RoutingError(
                    f"successor {nbr!r} of {node!r} has no route to "
                    f"{destination!r}"
                )
            total += fraction * (w_link + down)
        remaining[node] = total
    return remaining


@dataclass
class FluidEvaluation:
    """Everything the fluid model says about one routing configuration."""

    link_flows: dict[LinkId, float]
    total_delay: float
    average_delay: float
    flow_delays: dict[str, float] = field(default_factory=dict)
    utilizations: dict[LinkId, float] = field(default_factory=dict)

    @property
    def max_utilization(self) -> float:
        """Utilization of the most loaded link (0 when idle)."""
        return max(self.utilizations.values(), default=0.0)

    def flow_delays_ms(self) -> dict[str, float]:
        """Per-flow delays in milliseconds, as the paper's figures plot."""
        return {name: 1e3 * d for name, d in self.flow_delays.items()}


def evaluate(
    topo: Topology,
    phi: Phi,
    traffic: TrafficMatrix,
    delay_model: DelayModel | None = None,
    *,
    strict: bool = False,
) -> FluidEvaluation:
    """Full fluid evaluation of ``phi`` under ``traffic``.

    Args:
        topo: the network (capacities and propagation delays).
        phi: routing parameters.
        traffic: input rates.
        delay_model: optional pre-built delay laws (defaults to M/M/1
            from the topology).
        strict: if True, flows at or above capacity produce infinite
            delays instead of the stabilized extension.

    Returns:
        A :class:`FluidEvaluation` with link flows, :math:`D_T`, the
        average per-unit delay :math:`D_T / \\sum r`, per-flow delays and
        link utilizations.
    """
    traffic.validate_against(topo)
    model = delay_model or DelayModel.for_topology(topo)
    cache = _EvalCache()
    f = link_flows(phi, traffic, _cache=cache)
    total = model.total_delay(f, strict=strict)
    rate = traffic.total_rate()
    average = total / rate if rate > 0 else 0.0
    per_unit = model.per_unit_delays(f, strict=strict)
    per_flow = flow_delays(phi, traffic, per_unit, _cache=cache)
    utilizations = {
        link_id: model[link_id].utilization(value)
        for link_id, value in f.items()
    }
    return FluidEvaluation(
        link_flows=f,
        total_delay=total,
        average_delay=average,
        flow_delays=per_flow,
        utilizations=utilizations,
    )
