"""Fluid queue dynamics: backlog that persists across epochs.

The stateless M/M/1 law gives each epoch its *steady-state* delay, but a
real link that is oversubscribed builds backlog over time: a router that
stays on a congested path for a whole ``Tl`` interval keeps integrating
queue — the very effect behind the paper's Fig. 13/14 (single-path
delays grow with the route-update period while MP's do not).

:class:`FluidQueues` tracks one fluid backlog per link:

.. math::

    b(t + dt) = \\mathrm{clip}\\big(b(t) + (f - C)\\,dt,\\; 0,\\; B\\big)

where *B* is the buffer limit.  The per-packet delay of an epoch is the
larger of the steady-state M/M/1 delay and the drain time of the average
backlog — a standard fluid approximation that is exact in the two
regimes (empty queue / persistent backlog) and smooth in between.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import CapacityError
from repro.fluid.delay import DelayModel
from repro.graph.topology import LinkId


class FluidQueues:
    """Per-link fluid backlog state for a quasi-static run."""

    def __init__(
        self,
        model: DelayModel,
        queue_limit: float | None,
    ) -> None:
        if queue_limit is not None and queue_limit <= 0:
            raise CapacityError(
                f"queue_limit must be positive: {queue_limit!r}"
            )
        self.model = model
        self.queue_limit = queue_limit
        self.backlog: dict[LinkId, float] = {
            link_id: 0.0 for link_id in model.functions
        }
        self.dropped = 0.0  # fluid packets lost to full buffers

    def step(
        self, flows: Mapping[LinkId, float], dt: float
    ) -> dict[LinkId, float]:
        """Advance one epoch; return per-packet link delays (seconds).

        Args:
            flows: average link flows over the epoch (packets/s).
            dt: epoch duration (seconds).
        """
        delays: dict[LinkId, float] = {}
        for link_id, law in self.model.functions.items():
            f = flows.get(link_id, 0.0)
            before = self.backlog[link_id]
            after = before + (f - law.capacity) * dt
            if after < 0.0:
                after = 0.0
            if self.queue_limit is not None and after > self.queue_limit:
                self.dropped += (after - self.queue_limit)
                after = self.queue_limit
            self.backlog[link_id] = after

            mid = 0.5 * (before + after)
            if f < law.knee:
                # Subcritical: the M/M/1 steady state is meaningful.
                steady = 1.0 / (law.capacity - f) + law.prop_delay
            else:
                # At or beyond the knee there is no steady state — the
                # transient backlog *is* the queueing delay.
                steady = 0.0
            backlogged = (mid + 1.0) / law.capacity + law.prop_delay
            delay = max(steady, backlogged)
            if self.queue_limit is not None:
                cap = (self.queue_limit + 1.0) / law.capacity + law.prop_delay
                delay = min(delay, cap)
            delays[link_id] = delay
        return delays

    def costs(
        self, flows: Mapping[LinkId, float], delays: Mapping[LinkId, float]
    ) -> dict[LinkId, float]:
        """Measured marginal-delay costs for the epoch.

        The analytic marginal, floored by the actually-experienced
        per-packet delay (a measurement-based estimator can never report
        less than what packets are currently seeing).
        """
        return {
            link_id: max(
                self.model[link_id].marginal(flows.get(link_id, 0.0)),
                delays[link_id],
            )
            for link_id in self.model.functions
        }

    def total_backlog(self) -> float:
        return sum(self.backlog.values())

    def drop_link(self, link_id: LinkId) -> None:
        """A link failed: its queued backlog is lost with it."""
        lost = self.backlog.get(link_id, 0.0)
        if lost:
            self.dropped += lost
            self.backlog[link_id] = 0.0
