"""Traffic demands: flows and traffic matrices.

The paper's workload model is the input set :math:`r = \\{r^i_j\\}` —
the expected traffic in packets/s entering the network at router *i* and
destined for router *j*.  :class:`TrafficMatrix` stores that set; a
:class:`Flow` is one named (source, destination, rate) entry, matching how
Section 5 describes the CAIRN and NET1 workloads.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import TopologyError
from repro.graph.topology import NodeId, Topology


@dataclass(frozen=True)
class Flow:
    """A single traffic demand.

    Attributes:
        source: ingress router.
        destination: egress router.
        rate: offered load in packets/s (see :mod:`repro.units`).
        name: label used on figure axes ("flow id" in the paper's plots).
    """

    source: NodeId
    destination: NodeId
    rate: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise TopologyError(
                f"flow source and destination coincide: {self.source!r}"
            )
        if self.rate < 0:
            raise TopologyError(f"flow rate must be non-negative: {self.rate!r}")

    def scaled(self, factor: float) -> "Flow":
        """The same flow with its rate multiplied by ``factor``."""
        return Flow(self.source, self.destination, self.rate * factor, self.name)

    def label(self) -> str:
        """Human-readable identifier for reports."""
        if self.name:
            return self.name
        return f"{self.source}->{self.destination}"


class TrafficMatrix:
    """The input-rate set :math:`r^i_j`, assembled from flows.

    Multiple flows with the same (source, destination) simply add.
    """

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        self._flows: list[Flow] = []
        self._rates: dict[NodeId, dict[NodeId, float]] = {}
        for flow in flows:
            self.add(flow)

    def add(self, flow: Flow) -> None:
        """Add one flow's rate into the matrix."""
        self._flows.append(flow)
        per_src = self._rates.setdefault(flow.source, {})
        per_src[flow.destination] = per_src.get(flow.destination, 0.0) + flow.rate

    @property
    def flows(self) -> list[Flow]:
        """The flows as added, in order (figure x-axes use this order)."""
        return list(self._flows)

    def rate(self, source: NodeId, destination: NodeId) -> float:
        """:math:`r^i_j`, zero when absent."""
        return self._rates.get(source, {}).get(destination, 0.0)

    def rates_to(self, destination: NodeId) -> dict[NodeId, float]:
        """All per-source rates toward ``destination``."""
        out: dict[NodeId, float] = {}
        for source, per_dst in self._rates.items():
            r = per_dst.get(destination, 0.0)
            if r > 0:
                out[source] = r
        return out

    def destinations(self) -> list[NodeId]:
        """Destinations with non-zero demand (the "active destinations")."""
        seen: dict[NodeId, None] = {}
        for per_dst in self._rates.values():
            for dst, r in per_dst.items():
                if r > 0:
                    seen[dst] = None
        return list(seen)

    def sources(self) -> list[NodeId]:
        """Sources with non-zero demand."""
        return [
            src
            for src, per_dst in self._rates.items()
            if any(r > 0 for r in per_dst.values())
        ]

    def total_rate(self) -> float:
        """Total input rate :math:`\\sum_{i,j} r^i_j` (packets/s)."""
        return sum(sum(per_dst.values()) for per_dst in self._rates.values())

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A new matrix with every flow rate multiplied by ``factor``."""
        return TrafficMatrix(flow.scaled(factor) for flow in self._flows)

    def validate_against(self, topo: Topology) -> None:
        """Check every endpoint exists in ``topo``."""
        for flow in self._flows:
            for node in (flow.source, flow.destination):
                if not topo.has_node(node):
                    raise TopologyError(
                        f"flow {flow.label()} references unknown node {node!r}"
                    )

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __len__(self) -> int:
        return len(self._flows)

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(flows={len(self._flows)}, "
            f"total={self.total_rate():.3g} pkt/s)"
        )


def paper_flows(
    pairs: Sequence[tuple[NodeId, NodeId]],
    rates: Sequence[float] | float,
) -> TrafficMatrix:
    """Build a matrix from (source, destination) pairs and rates.

    ``rates`` may be one rate for all pairs or a per-pair sequence.  Flows
    are named ``f0, f1, ...`` in pair order, matching the paper's flow-id
    axes.
    """
    if isinstance(rates, (int, float)):
        rates = [float(rates)] * len(pairs)
    if len(rates) != len(pairs):
        raise TopologyError(
            f"{len(pairs)} pairs but {len(rates)} rates were given"
        )
    return TrafficMatrix(
        Flow(src, dst, rate, name=f"f{idx}")
        for idx, ((src, dst), rate) in enumerate(zip(pairs, rates))
    )


def uniform_random_rates(
    pairs: Sequence[tuple[NodeId, NodeId]],
    low: float,
    high: float,
    seed: int = 0,
) -> TrafficMatrix:
    """Flows with rates drawn uniformly from ``[low, high]``.

    Matches the paper's description of flow bandwidths "in the range
    x–y Mb/s"; the seed fixes the draw for reproducibility.
    """
    if not 0 <= low <= high:
        raise TopologyError(f"invalid rate range [{low!r}, {high!r}]")
    rng = random.Random(seed)
    rates = [rng.uniform(low, high) for _ in pairs]
    return paper_flows(pairs, rates)
