"""repro — a reproduction of *A Simple Approximation to Minimum-Delay
Routing* (Vutukury & Garcia-Luna-Aceves, SIGCOMM 1999).

The library implements the paper's full system and everything it stands
on:

- **MPDA** (:mod:`repro.core.mpda`): the first link-state routing
  algorithm providing multiple loop-free paths of unequal cost at every
  instant, built on the LFI conditions (:mod:`repro.core.lfi`) and the
  PDA dissemination algorithm (:mod:`repro.core.pda`);
- **IH/AH flow allocation** (:mod:`repro.core.allocation`) with
  marginal-delay link costs (:mod:`repro.core.costs`);
- **OPT** — Gallager's minimum-delay routing (:mod:`repro.gallager`) as
  the optimal baseline, and **SP** — loop-free single-path routing
  (:mod:`repro.core.spf`) as the practical baseline;
- substrates: topologies and shortest paths (:mod:`repro.graph`), the
  analytic flow model (:mod:`repro.fluid`), a packet-level
  discrete-event simulator (:mod:`repro.netsim`), and the experiment
  harness (:mod:`repro.sim`).

Quick start::

    from repro import net1_scenario, run_quasi_static, run_opt, QuasiStaticConfig

    scenario = net1_scenario(load=1.5)
    mp = run_quasi_static(scenario, QuasiStaticConfig(tl=10, ts=2))
    sp = run_quasi_static(
        scenario, QuasiStaticConfig(tl=10, ts=2, successor_limit=1)
    )
    opt, _ = run_opt(scenario)
    print(mp.mean_flow_delays_ms())
"""

from repro.core import (
    AllocationTable,
    MM1CostEstimator,
    MPDARouter,
    MPRouting,
    OnlineCostEstimator,
    PDARouter,
    ProtocolDriver,
    ah,
    check_lfi,
    ih,
    lfi_successors,
)
from repro.exceptions import (
    AllocationError,
    CapacityError,
    ConvergenceError,
    LoopError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.fluid import (
    DelayModel,
    Flow,
    MM1Delay,
    TrafficMatrix,
    evaluate,
)
from repro.gallager import optimize as gallager_optimize
from repro.gallager import optimality_gap
from repro.graph import Topology, cairn, net1
from repro.obs import Observation, observe
from repro.obs import current as observation
from repro.obs import start as start_observation
from repro.obs import stop as stop_observation
from repro.sim import (
    FluidPlane,
    PacketPlane,
    PacketRunConfig,
    QuasiStaticConfig,
    RunConfig,
    RunResult,
    Scenario,
    TwoTimescaleController,
    bursty_scenario,
    cairn_scenario,
    net1_scenario,
    run_opt,
    run_packet_level,
    run_quasi_static,
    with_failures,
)
from repro.units import mbps, ms, to_mbps

__version__ = "1.0.0"

__all__ = [
    # graph
    "Topology",
    "cairn",
    "net1",
    # fluid
    "MM1Delay",
    "DelayModel",
    "Flow",
    "TrafficMatrix",
    "evaluate",
    # core
    "MPDARouter",
    "PDARouter",
    "ProtocolDriver",
    "MPRouting",
    "AllocationTable",
    "ih",
    "ah",
    "check_lfi",
    "lfi_successors",
    "MM1CostEstimator",
    "OnlineCostEstimator",
    # gallager
    "gallager_optimize",
    "optimality_gap",
    # sim
    "Scenario",
    "cairn_scenario",
    "net1_scenario",
    "bursty_scenario",
    "with_failures",
    "RunConfig",
    "QuasiStaticConfig",
    "PacketRunConfig",
    "TwoTimescaleController",
    "FluidPlane",
    "PacketPlane",
    "run_quasi_static",
    "run_opt",
    "RunResult",
    "run_packet_level",
    # observability
    "Observation",
    "observe",
    "observation",
    "start_observation",
    "stop_observation",
    # units
    "mbps",
    "to_mbps",
    "ms",
    # exceptions
    "ReproError",
    "TopologyError",
    "RoutingError",
    "LoopError",
    "CapacityError",
    "AllocationError",
    "ConvergenceError",
    "SimulationError",
]
