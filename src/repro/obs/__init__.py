"""repro.obs — the instrumentation layer (tracing, metrics, timing,
auditing, analytics).

An :class:`Observation` bundles the instruments:

- a structured event :class:`~repro.obs.trace.Tracer` (JSONL sink);
- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms (with p50/p90/p99 quantile estimates);
- wall-clock :class:`~repro.obs.timing.PhaseTimers` around hot paths;
- optionally an online :class:`~repro.obs.audit.InvariantAuditor` that
  verifies the paper's LFI conditions and successor-graph acyclicity
  *during* live MPDA runs (``audit=True``);

and :mod:`repro.obs.convergence` / :mod:`repro.obs.report` post-process
the resulting trace + metrics into convergence timelines, delay
decompositions and run reports (the ``repro report`` CLI).

Instrumented components look up the *current* observation through
:func:`current`, which returns ``None`` when observability is disabled
(the default) — the disabled path is a single ``None`` check at run or
epoch granularity, never per event, keeping the simulators at full
speed when nobody is watching.

Typical use::

    with obs.observe(trace_path="run.jsonl") as ob:
        result = run_quasi_static(scenario, config)
    export.write_metrics("metrics.json", ob)

When an observation is active, quasi-static and packet runs upgrade
``mode="oracle"`` to ``mode="protocol"`` (for the paper's LFI path
rule, on stable topologies) so control-plane metrics — per-router LSU
counts, ACK round-trips, ACTIVE-phase durations — are measured from the
live MPDA exchange rather than synthesized.  Theorem 4 guarantees (and
the test suite verifies) that both backends converge to identical
successor sets, so figure outputs are unaffected.  Pass
``protocol_control_plane=False`` to keep the oracle backend.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.obs import export
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timing import PhaseTimers, phase
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.audit import InvariantAuditor
    from repro.obs.causal import CausalTracker
    from repro.obs.profile import ResourceProfiler

__all__ = [
    "Observation",
    "observe",
    "start",
    "stop",
    "current",
    "phase",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimers",
    "export",
]


class Observation:
    """One observation session: tracer + metrics + timers (+ auditor).

    Args:
        tracer: event sink; defaults to the disabled :data:`NULL_TRACER`.
        metrics: registry to record into (fresh one by default).
        timers: phase timers (fresh ones by default).
        protocol_control_plane: when True (default), runners upgrade
            oracle-mode MP/SP runs to the live MPDA protocol so
            control-plane metrics are real measurements.
        auditor: an :class:`~repro.obs.audit.InvariantAuditor`; when set,
            protocol drivers feed it every router event so LFI and
            successor-graph acyclicity are verified online.
        profiler: a :class:`~repro.obs.profile.ResourceProfiler`; when
            set (``obs.start(profile=True)`` sets it together with
            profiling-grade timers), run-level wall/CPU/memory readings
            are captured and exported next to the phase timings.
        causal: a :class:`~repro.obs.causal.CausalTracker`; when set
            (``obs.start(causal=True)``), the protocol driver tags every
            message with its causal parent and Lamport clock out-of-band
            and reconstructs update-wave spans, convergence critical
            paths and route provenance (the ``repro explain`` CLI).

    The mutable :attr:`sim_time` is the bridge between the simulators'
    clocks and clock-less components: runners set it each epoch/tick and
    the protocol driver stamps its events with it, so trace timelines
    line up across layers.
    """

    def __init__(
        self,
        *,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        timers: PhaseTimers | None = None,
        protocol_control_plane: bool = True,
        auditor: "InvariantAuditor | None" = None,
        profiler: "ResourceProfiler | None" = None,
        causal: "CausalTracker | None" = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timers = timers if timers is not None else PhaseTimers()
        self.protocol_control_plane = protocol_control_plane
        self.auditor = auditor
        self.profiler = profiler
        self.causal = causal
        #: Simulated time of the innermost running simulator, or None
        #: outside any simulation clock.
        self.sim_time: float | None = None

    def snapshot(self) -> dict:
        """JSON-ready state (see :func:`repro.obs.export.snapshot`)."""
        return export.snapshot(self)

    def close(self) -> None:
        if self.profiler is not None:
            self.profiler.close()
        self.tracer.close()


#: The active observation; ``None`` means observability is disabled.
_current: Observation | None = None


def current() -> Observation | None:
    """The active observation, or ``None`` when disabled."""
    return _current


def start(
    *,
    trace_path: str | None = None,
    protocol_control_plane: bool = True,
    audit: bool = False,
    audit_sample: int = 1,
    profile: bool = False,
    profile_memory: str = "rss",
    causal: bool = False,
) -> Observation:
    """Begin an observation session and make it current.

    Only one session is current at a time; :func:`observe` restores the
    previous one on exit, so nested sessions compose.

    ``audit=True`` attaches an online
    :class:`~repro.obs.audit.InvariantAuditor` verifying the LFI
    invariants every ``audit_sample``-th protocol event.

    ``profile=True`` swaps in :class:`~repro.obs.timing.ProfilingTimers`
    (CPU + self time per phase) and attaches a started
    :class:`~repro.obs.profile.ResourceProfiler`; ``profile_memory``
    selects its memory instrument ("rss", "tracemalloc" or "none").

    ``causal=True`` attaches a
    :class:`~repro.obs.causal.CausalTracker`: the protocol driver tags
    messages with causal parents and Lamport clocks (out-of-band — wire
    semantics and message counts are unchanged) and reconstructs update
    waves, critical paths and route provenance.
    """
    global _current
    tracer = Tracer.to_path(trace_path) if trace_path else NULL_TRACER
    auditor = None
    if audit:
        # Imported lazily: audit depends on repro.core, which itself
        # imports repro.obs.
        from repro.obs.audit import InvariantAuditor

        auditor = InvariantAuditor(sample_every=audit_sample)
    timers = None
    profiler = None
    if profile:
        from repro.obs.profile import ResourceProfiler
        from repro.obs.timing import ProfilingTimers

        timers = ProfilingTimers()
        profiler = ResourceProfiler(memory=profile_memory).start()
    tracker = None
    if causal:
        # Lazy for symmetry with the auditor (and to keep the default
        # import path lean).
        from repro.obs.causal import CausalTracker

        tracker = CausalTracker()
    _current = Observation(
        tracer=tracer,
        timers=timers,
        protocol_control_plane=protocol_control_plane,
        auditor=auditor,
        profiler=profiler,
        causal=tracker,
    )
    return _current


def stop() -> None:
    """End the current session (flushing and closing its trace sink)."""
    global _current
    if _current is not None:
        _current.close()
    _current = None


@contextlib.contextmanager
def observe(
    *,
    trace_path: str | None = None,
    protocol_control_plane: bool = True,
    audit: bool = False,
    audit_sample: int = 1,
    profile: bool = False,
    profile_memory: str = "rss",
    causal: bool = False,
) -> Iterator[Observation]:
    """Context manager form of :func:`start` / :func:`stop`."""
    global _current
    previous = _current
    ob = start(
        trace_path=trace_path,
        protocol_control_plane=protocol_control_plane,
        audit=audit,
        audit_sample=audit_sample,
        profile=profile,
        profile_memory=profile_memory,
        causal=causal,
    )
    try:
        yield ob
    finally:
        ob.close()
        _current = previous
