"""repro.obs — the instrumentation layer (tracing, metrics, timing).

An :class:`Observation` bundles the three instruments:

- a structured event :class:`~repro.obs.trace.Tracer` (JSONL sink);
- a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  histograms;
- wall-clock :class:`~repro.obs.timing.PhaseTimers` around hot paths.

Instrumented components look up the *current* observation through
:func:`current`, which returns ``None`` when observability is disabled
(the default) — the disabled path is a single ``None`` check at run or
epoch granularity, never per event, keeping the simulators at full
speed when nobody is watching.

Typical use::

    with obs.observe(trace_path="run.jsonl") as ob:
        result = run_quasi_static(scenario, config)
    export.write_metrics("metrics.json", ob)

When an observation is active, quasi-static and packet runs upgrade
``mode="oracle"`` to ``mode="protocol"`` (for the paper's LFI path
rule, on stable topologies) so control-plane metrics — per-router LSU
counts, ACK round-trips, ACTIVE-phase durations — are measured from the
live MPDA exchange rather than synthesized.  Theorem 4 guarantees (and
the test suite verifies) that both backends converge to identical
successor sets, so figure outputs are unaffected.  Pass
``protocol_control_plane=False`` to keep the oracle backend.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.obs import export
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timing import PhaseTimers, phase
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observation",
    "observe",
    "start",
    "stop",
    "current",
    "phase",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "PhaseTimers",
    "export",
]


class Observation:
    """One observation session: tracer + metrics + timers.

    Args:
        tracer: event sink; defaults to the disabled :data:`NULL_TRACER`.
        metrics: registry to record into (fresh one by default).
        timers: phase timers (fresh ones by default).
        protocol_control_plane: when True (default), runners upgrade
            oracle-mode MP/SP runs to the live MPDA protocol so
            control-plane metrics are real measurements.
    """

    def __init__(
        self,
        *,
        tracer: Tracer | NullTracer | None = None,
        metrics: MetricsRegistry | None = None,
        timers: PhaseTimers | None = None,
        protocol_control_plane: bool = True,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timers = timers if timers is not None else PhaseTimers()
        self.protocol_control_plane = protocol_control_plane

    def snapshot(self) -> dict:
        """JSON-ready state (see :func:`repro.obs.export.snapshot`)."""
        return export.snapshot(self)

    def close(self) -> None:
        self.tracer.close()


#: The active observation; ``None`` means observability is disabled.
_current: Observation | None = None


def current() -> Observation | None:
    """The active observation, or ``None`` when disabled."""
    return _current


def start(
    *,
    trace_path: str | None = None,
    protocol_control_plane: bool = True,
) -> Observation:
    """Begin an observation session and make it current.

    Only one session is current at a time; :func:`observe` restores the
    previous one on exit, so nested sessions compose.
    """
    global _current
    tracer = Tracer.to_path(trace_path) if trace_path else NULL_TRACER
    _current = Observation(
        tracer=tracer, protocol_control_plane=protocol_control_plane
    )
    return _current


def stop() -> None:
    """End the current session (flushing and closing its trace sink)."""
    global _current
    if _current is not None:
        _current.close()
    _current = None


@contextlib.contextmanager
def observe(
    *,
    trace_path: str | None = None,
    protocol_control_plane: bool = True,
) -> Iterator[Observation]:
    """Context manager form of :func:`start` / :func:`stop`."""
    global _current
    previous = _current
    ob = start(
        trace_path=trace_path,
        protocol_control_plane=protocol_control_plane,
    )
    try:
        yield ob
    finally:
        ob.close()
        _current = previous
