"""A small metrics registry: counters, gauges, and histograms.

Metrics are identified by a name plus an optional set of labels
(``registry.counter("protocol.lsu_sent", router="a")``), mirroring the
Prometheus data model the related SDN controllers use for per-port
stats — but kept in-process and dependency-free.

- :class:`Counter` — monotonically increasing totals (messages sent,
  packets dropped, route recomputations);
- :class:`Gauge` — last-value-wins readings with a high-water mark
  (queue occupancy, cumulative per-router totals harvested at run end);
- :class:`Histogram` — moments (count/sum/min/max) plus a fixed-bucket
  sketch yielding p50/p90/p99 quantile estimates of event sizes and
  durations (ACTIVE-phase lengths, ACK round-trips, packet delays).

``snapshot()`` renders the whole registry as a JSON-ready dict; label
values are stringified so arbitrary node-id types serialize cleanly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

_INF = float("inf")

#: Shared log-spaced bucket upper bounds: five buckets per decade from
#: 1e-9 to 1e9, covering sub-nanosecond timings through million-scale
#: message counts.  Fixed (data-independent) boundaries keep quantile
#: estimates deterministic across runs and mergeable across histograms.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (exp / 5.0) for exp in range(-45, 46)
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A last-value reading that remembers its high-water mark."""

    __slots__ = ("value", "max_seen")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_seen = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_seen:
            self.max_seen = value

    def as_dict(self) -> dict[str, float]:
        return {"value": self.value, "max": self.max_seen}


class Histogram:
    """Moments (count/sum/min/max) plus fixed-bucket quantile estimates.

    Observations are counted into the shared log-spaced
    :data:`BUCKET_BOUNDS`; :meth:`quantile` interpolates linearly within
    the bucket holding the requested rank and clamps to the observed
    min/max, so estimates are exact for n=1 and never leave the data
    range.  Buckets are kept sparsely (a dict), so an unused histogram
    costs four scalars and an empty dict.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = _INF
        self.max = -_INF
        #: bucket index (into BUCKET_BOUNDS, len(BUCKET_BOUNDS) =
        #: overflow) -> observation count.
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(BUCKET_BOUNDS, value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1]) of the observations."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            seen += in_bucket
            if seen >= target:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else self.max
                )
                if upper < lower:
                    upper = lower
                fraction = (target - (seen - in_bucket)) / in_bucket
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for index, in_bucket in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + in_bucket

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of labeled metrics."""

    def __init__(self) -> None:
        #: kind -> name -> label-string -> metric instance
        self._metrics: dict[str, dict[str, dict[str, Any]]] = {
            kind: {} for kind in _KINDS
        }

    @staticmethod
    def _label_key(labels: dict[str, Any]) -> str:
        if not labels:
            return ""
        return ",".join(f"{k}={labels[k]}" for k in sorted(labels))

    def _get(self, kind: str, name: str, labels: dict[str, Any]) -> Any:
        by_label = self._metrics[kind].setdefault(name, {})
        key = self._label_key(labels)
        metric = by_label.get(key)
        if metric is None:
            metric = _KINDS[kind]()
            by_label[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: Any) -> float | None:
        """The current value of a counter or gauge, or None if absent."""
        key = self._label_key(labels)
        for kind in ("counter", "gauge"):
            metric = self._metrics[kind].get(name, {}).get(key)
            if metric is not None:
                return metric.value
        return None

    def snapshot(self) -> dict[str, dict[str, dict[str, Any]]]:
        """JSON-ready view: kind -> name -> label-string -> fields."""
        out: dict[str, dict[str, dict[str, Any]]] = {}
        for kind, by_name in self._metrics.items():
            if not by_name:
                continue
            section: dict[str, dict[str, Any]] = {}
            for name in sorted(by_name):
                section[name] = {
                    label: metric.as_dict()
                    for label, metric in sorted(by_name[name].items())
                }
            out[kind + "s"] = section
        return out
