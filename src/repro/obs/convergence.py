"""Convergence analytics over the structured event stream.

Post-processes a JSONL trace (and a metrics snapshot) into the
quantities the routing literature actually evaluates — how long a
diffusing computation takes, which destination converges last, how much
the successor graph churns, and where packet delay is spent:

- :func:`convergence_windows` groups the trace into *windows*: each
  opens at the first ``disturbance`` event (a cost change, link failure
  or restoration injected into the protocol driver) after the last
  quiescence and closes at the next ``quiescent`` event.  Within a
  window, ``dist_change`` events yield per-destination convergence
  points — the last message after which any router's distance to that
  destination still moved — and ``active_enter`` events count diffusing
  ACTIVE phases.  Convergence is measured in *messages delivered*, the
  protocol's own clock, which is deterministic for a seeded run (wall
  seconds are reported alongside);
- :func:`successor_churn_series` extracts the per-route-update
  successor-set churn counts;
- :func:`delay_decomposition` splits total packet delay into queueing,
  transmission and propagation seconds (fed by the per-link monitors);
- :func:`delay_quantiles` reads the end-to-end delay sketch
  (p50/p90/p99);
- :func:`audit_outcome` states the online LFI-audit verdict.

When the trace was recorded with causal tracing
(``obs.start(causal=True)``), each window additionally carries its
update-wave spans and critical path (see :mod:`repro.obs.causal`), so
convergence time is *attributed* along the causal bottleneck chain
rather than just measured.

Everything consumes plain parsed-JSON dicts, so the analytics run
against a live :class:`~repro.obs.Observation` or a trace file written
yesterday.  Consumers are forward-compatible: event kinds or payload
fields this build does not know are skipped (and counted by
:func:`unknown_event_summary`), never fatal — an old binary can read a
newer trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import EVENT_SCHEMAS, OPTIONAL_FIELDS

#: Universal envelope keys every event may carry beyond its schema.
_ENVELOPE = frozenset({"kind", "t", "node"})

#: Event kinds that open (or extend) a convergence window.
_DISTURBANCE = "disturbance"
_QUIESCENT = "quiescent"


def read_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into a list of event dicts."""
    events: list[dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


@dataclass
class ConvergenceWindow:
    """One disturbance-to-quiescence span of a protocol run.

    A window may cover several injected events (a ``set_costs`` batch
    emits one ``disturbance`` per changed link); they share the window
    because the protocol converges once for the batch.
    """

    ops: list[str] = field(default_factory=list)
    links: list[Any] = field(default_factory=list)
    start_delivered: int = 0
    end_delivered: int | None = None
    wall_s: float | None = None
    start_time: float | None = None
    end_time: float | None = None
    #: destination -> delivered-index of its last distance change.
    last_change: dict[str, int] = field(default_factory=dict)
    active_entries: int = 0
    audit: dict[str, Any] | None = None
    #: Update-wave summaries (one per disturbance root) and the
    #: window's causal critical path — present only for traces recorded
    #: with causal tracing.
    waves: list[dict[str, Any]] = field(default_factory=list)
    critical_path: dict[str, Any] | None = None

    @property
    def label(self) -> str:
        """The window's disturbance kinds, deduplicated, in order."""
        return "+".join(dict.fromkeys(self.ops)) or "?"

    @property
    def closed(self) -> bool:
        return self.end_delivered is not None

    @property
    def messages(self) -> int | None:
        """Messages delivered between disturbance and quiescence."""
        if self.end_delivered is None:
            return None
        return self.end_delivered - self.start_delivered

    def destination_messages(self) -> dict[str, int]:
        """Per-destination convergence time, in messages delivered.

        For destination *j* this is the number of deliveries after the
        disturbance until the last one that still changed any router's
        distance to *j* — 0 for destinations the disturbance never
        touched.
        """
        return {
            dest: last - self.start_delivered
            for dest, last in self.last_change.items()
        }

    def slowest_destination(self) -> tuple[str, int] | None:
        """The destination that converged last, with its message count."""
        per_dest = self.destination_messages()
        if not per_dest:
            return None
        dest = min(per_dest, key=lambda d: (-per_dest[d], str(d)))
        return dest, per_dest[dest]

    def as_dict(self) -> dict[str, Any]:
        slowest = self.slowest_destination()
        return {
            "label": self.label,
            "ops": list(self.ops),
            "links": list(self.links),
            "start_delivered": self.start_delivered,
            "end_delivered": self.end_delivered,
            "messages": self.messages,
            "wall_s": self.wall_s,
            "sim_time": self.start_time,
            "active_entries": self.active_entries,
            "destinations_touched": len(self.last_change),
            "slowest_destination": slowest[0] if slowest else None,
            "slowest_messages": slowest[1] if slowest else None,
            "per_destination_messages": self.destination_messages(),
            "audit": self.audit,
            "waves": list(self.waves),
            "critical_path": self.critical_path,
        }


def convergence_windows(
    events: list[dict[str, Any]],
) -> list[ConvergenceWindow]:
    """Group a trace into disturbance → quiescence windows."""
    windows: list[ConvergenceWindow] = []
    current: ConvergenceWindow | None = None
    for event in events:
        kind = event.get("kind")
        if kind == _DISTURBANCE:
            if current is None or current.closed:
                current = ConvergenceWindow(
                    start_delivered=event.get("delivered", 0),
                    start_time=event.get("t"),
                )
                windows.append(current)
            current.ops.append(event.get("op", "?"))
            current.links.append(event.get("link"))
        elif kind == "audit_summary":
            # Emitted right after ``quiescent``, so it belongs to the
            # window that event just closed.
            if current is not None:
                current.audit = {
                    "checks": event.get("checks"),
                    "violations": event.get("violations"),
                    "verdict": event.get("verdict"),
                }
        elif kind == "wave_span":
            # Also emitted post-quiescence (causal traces only).
            if current is not None:
                current.waves.append(_payload(event))
        elif kind == "critical_path":
            if current is not None:
                current.critical_path = _payload(event)
        elif current is None or current.closed:
            continue
        elif kind == "dist_change":
            delivered = event.get("delivered", 0)
            for dest in event.get("dests", ()):
                current.last_change[_key(dest)] = delivered
        elif kind == "active_enter":
            current.active_entries += 1
        elif kind == _QUIESCENT:
            current.end_delivered = event.get("delivered")
            current.wall_s = event.get("wall_s")
            current.end_time = event.get("t")
    return windows


def _key(value: Any) -> str:
    """Stable string key for a (possibly repr-rendered) node id."""
    return value if isinstance(value, str) else json.dumps(value)


def _payload(event: dict[str, Any]) -> dict[str, Any]:
    """An event's payload without the universal envelope keys."""
    return {k: v for k, v in event.items() if k not in ("kind", "t")}


def unknown_event_summary(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Count what this build's schema does not cover — never raise.

    Newer producers may emit event kinds or payload fields this binary
    predates; every consumer here skips them, and this summary makes the
    skipping visible (``repro report`` prints it) instead of silent.
    Returns ``{"kinds": {kind: count}, "fields": {kind: count}, "events":
    total_unknown_kind_events}``.
    """
    kinds: dict[str, int] = {}
    fields: dict[str, int] = {}
    for event in events:
        kind = event.get("kind", "?")
        schema = EVENT_SCHEMAS.get(kind)
        if schema is None:
            kinds[kind] = kinds.get(kind, 0) + 1
            continue
        known = schema | OPTIONAL_FIELDS.get(kind, frozenset()) | _ENVELOPE
        if any(field not in known for field in event):
            fields[kind] = fields.get(kind, 0) + 1
    return {
        "kinds": kinds,
        "fields": fields,
        "events": sum(kinds.values()),
    }


def successor_churn_series(
    events: list[dict[str, Any]],
) -> list[tuple[int, int]]:
    """(route-update index, successor-set churn) per ``route_update``."""
    return [
        (event.get("update", 0), event.get("churn", 0))
        for event in events
        if event.get("kind") == "route_update"
    ]


# ----------------------------------------------------------------------
# metrics-snapshot readers (the ``metrics`` section of an export)
# ----------------------------------------------------------------------
def _gauge_value(metrics: dict, name: str) -> float | None:
    entry = metrics.get("gauges", {}).get(name, {}).get("")
    return entry["value"] if entry else None


def _sum_labeled(metrics: dict, kind: str, name: str) -> float | None:
    by_label = metrics.get(kind, {}).get(name)
    if not by_label:
        return None
    return sum(entry["value"] for entry in by_label.values())


def delay_decomposition(metrics: dict) -> dict[str, Any] | None:
    """Queueing vs transmission vs propagation seconds, with fractions.

    Reads the aggregate gauges the packet network harvests from its
    per-link monitors; None when the snapshot has no packet-level data.
    """
    queueing = _gauge_value(metrics, "netsim.delay.queueing_s")
    transmission = _gauge_value(metrics, "netsim.delay.transmission_s")
    propagation = _gauge_value(metrics, "netsim.delay.propagation_s")
    if queueing is None or transmission is None or propagation is None:
        return None
    total = queueing + transmission + propagation

    def fraction(part: float) -> float:
        return part / total if total > 0 else 0.0

    return {
        "queueing_s": queueing,
        "transmission_s": transmission,
        "propagation_s": propagation,
        "total_s": total,
        "fractions": {
            "queueing": fraction(queueing),
            "transmission": fraction(transmission),
            "propagation": fraction(propagation),
        },
    }


def delay_quantiles(metrics: dict) -> dict[str, float] | None:
    """The end-to-end packet-delay sketch (count/mean/p50/p90/p99/max)."""
    entry = (
        metrics.get("histograms", {})
        .get("netsim.delay.e2e_seconds", {})
        .get("")
    )
    if not entry or not entry.get("count"):
        return None
    return {
        key: entry[key]
        for key in ("count", "mean", "min", "max", "p50", "p90", "p99")
        if key in entry
    }


def audit_outcome(metrics: dict) -> dict[str, Any]:
    """The online LFI-audit verdict from the ``lfi_audit`` family."""
    checks = _gauge_or_counter(metrics, "lfi_audit.checks") or 0.0
    violations = _gauge_or_counter(metrics, "lfi_audit.violations") or 0.0
    if not checks:
        verdict = "no-data"
    else:
        verdict = "fail" if violations else "pass"
    return {
        "checks": int(checks),
        "violations": int(violations),
        "verdict": verdict,
    }


def _gauge_or_counter(metrics: dict, name: str) -> float | None:
    for kind in ("counters", "gauges"):
        entry = metrics.get(kind, {}).get(name, {}).get("")
        if entry is not None:
            return entry["value"]
    return None


def protocol_overhead(metrics: dict) -> dict[str, float] | None:
    """Aggregate control-plane message totals from the harvested gauges."""
    deliveries = _gauge_value(metrics, "protocol.deliveries")
    if deliveries is None:
        return None
    out: dict[str, float] = {"deliveries": deliveries}
    for name in (
        "protocol.lsu_sent",
        "protocol.lsu_received",
        "protocol.mtu_runs",
        "protocol.transitions",
        "protocol.acks_received",
    ):
        total = _sum_labeled(metrics, "gauges", name)
        if total is not None:
            out[name.removeprefix("protocol.")] = total
    return out
