"""Resource profiling: where a run's time and memory actually go.

The PR 1 phase timers answer "how long did phase X take"; this module
turns them into a full resource profile:

- :class:`ResourceProfiler` brackets a run with wall-clock, CPU-time
  and memory readings.  Memory comes from two complementary sources:

  * ``rss`` (the default): the process peak resident set
    (``getrusage.ru_maxrss``) plus the current ``VmRSS`` — free to
    read, so timings stay honest.  ``ru_maxrss`` is a process-lifetime
    high-water mark: within one process it only ever rises, so run
    workloads smallest-first when comparing stages.
  * ``tracemalloc``: exact Python-heap peaks per profiled region
    (``reset_peak`` at start).  Allocation tracking slows runs ~2-4x,
    so it is opt-in and the profile marks which mode produced it.

- :func:`render_profile` ranks phases by **self time** (wall time minus
  time spent in enclosed phases, measured by
  :class:`~repro.obs.timing.ProfilingTimers`) — the order in which
  optimization work should be spent.

Enable both through the observation session::

    with obs.observe(profile=True) as ob:
        run(scenario, config)
    print(profile.render_profile(ob, top=10))

The disabled path is untouched: profiling swaps in different *classes*
rather than adding branches to the default timers, so a run without
``profile=True`` pays exactly what it paid before this module existed.
"""

from __future__ import annotations

import sys
import tracemalloc
from time import perf_counter, process_time
from typing import TYPE_CHECKING, Any

from repro.obs.timing import PhaseStats, ProfilingTimers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observation

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

MEMORY_MODES = ("rss", "tracemalloc", "none")


def _rss_max_kb() -> float | None:
    """Process peak RSS in KiB, or None where getrusage is unavailable."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss in bytes
        return peak / 1024.0
    return float(peak)


def _rss_now_kb() -> float | None:
    """Current resident set in KiB (Linux /proc), or None elsewhere."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux platforms
        pass
    return None


class ResourceProfiler:
    """Wall/CPU/memory readings around a profiled region.

    One profiler can bracket several consecutive regions (the scale
    bench profiles one topology size per region); :meth:`start` begins
    a region and :meth:`snapshot` reads it out.

    Args:
        memory: "rss" (free, process-granularity peaks), "tracemalloc"
            (exact Python-heap peaks, 2-4x slowdown) or "none".
    """

    def __init__(self, memory: str = "rss") -> None:
        if memory not in MEMORY_MODES:
            raise ValueError(
                f"memory mode must be one of {MEMORY_MODES}, got {memory!r}"
            )
        self.memory = memory
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._started = False
        self._owns_tracemalloc = False

    def start(self) -> "ResourceProfiler":
        """Begin (or restart) a profiled region."""
        if self.memory == "tracemalloc":
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True
            tracemalloc.reset_peak()
        self._started = True
        self._cpu0 = process_time()
        self._wall0 = perf_counter()
        return self

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready readings of the current region so far."""
        if not self._started:
            raise RuntimeError("profiler was never started")
        out: dict[str, Any] = {
            "wall_s": perf_counter() - self._wall0,
            "cpu_s": process_time() - self._cpu0,
            "memory_mode": self.memory,
            "rss_max_kb": _rss_max_kb(),
            "rss_now_kb": _rss_now_kb(),
        }
        if self.memory == "tracemalloc" and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            out["py_heap_kb"] = current / 1024.0
            out["py_heap_peak_kb"] = peak / 1024.0
        return out

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False


def phase_profile(observation: "Observation") -> dict[str, dict[str, float]]:
    """Per-phase stats augmented with self time, ranked by it.

    Works with either timer class: plain :class:`PhaseStats` has no
    child attribution, so its self time equals its total — correct for
    leaf phases, an over-estimate for enclosing ones (the profiling
    timers fix exactly that).
    """
    phases: dict[str, dict[str, float]] = {}
    for name, stats in observation.timers.as_dict().items():
        entry = dict(stats)
        entry.setdefault("cpu_s", 0.0)
        entry.setdefault("self_s", stats["total_s"])
        phases[name] = entry
    return dict(
        sorted(phases.items(), key=lambda kv: -kv[1]["self_s"])
    )


def render_profile(
    observation: "Observation", *, top: int | None = None
) -> str:
    """The profile report: phases ranked by self time, hottest first."""
    phases = phase_profile(observation)
    if top is not None:
        phases = dict(list(phases.items())[:top])
    if not phases:
        return "profile\n(no phases recorded)"
    name_width = max(28, max(len(name) for name in phases) + 2)
    header = (
        "phase".ljust(name_width)
        + "self_s".rjust(9)
        + "total_s".rjust(10)
        + "cpu_s".rjust(9)
        + "calls".rjust(8)
        + "mean_ms".rjust(10)
    )
    lines = [
        "profile (ranked by self time = total minus enclosed phases)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    total_self = sum(entry["self_s"] for entry in phases.values())
    for name, entry in phases.items():
        lines.append(
            name.ljust(name_width)
            + f"{entry['self_s']:.3f}".rjust(9)
            + f"{entry['total_s']:.3f}".rjust(10)
            + f"{entry['cpu_s']:.3f}".rjust(9)
            + f"{entry['calls']:d}".rjust(8)
            + f"{1e3 * entry['mean_s']:.3f}".rjust(10)
        )
    lines.append("-" * len(header))
    lines.append(f"accounted self time: {total_self:.3f}s")
    profiler = getattr(observation, "profiler", None)
    if profiler is not None and profiler._started:
        snap = profiler.snapshot()
        mem = snap.get("rss_max_kb")
        mem_note = (
            f", peak RSS {mem / 1024.0:.1f} MB" if mem is not None else ""
        )
        heap = snap.get("py_heap_peak_kb")
        if heap is not None:
            mem_note += f", py-heap peak {heap / 1024.0:.1f} MB"
        lines.append(
            f"run: wall {snap['wall_s']:.3f}s, cpu {snap['cpu_s']:.3f}s"
            + mem_note
        )
    return "\n".join(lines)


__all__ = [
    "MEMORY_MODES",
    "PhaseStats",
    "ProfilingTimers",
    "ResourceProfiler",
    "phase_profile",
    "render_profile",
]
