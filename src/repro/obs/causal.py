"""Causal tracing and route provenance for protocol runs.

The convergence analytics of :mod:`repro.obs.convergence` measure *that*
a disturbance converged and *how long* it took; this module records
*why*: which chain of LSU deliveries drove each routing-table change,
and which causal path of messages was the wall-clock bottleneck.

A :class:`CausalTracker` rides on an :class:`~repro.obs.Observation`
(``obs.start(causal=True)``) and is fed by the protocol driver at the
driver/transport boundary:

- every injected topology/cost event (``start``, ``link_down``,
  ``link_up``, ``link_cost_change``) opens a **root event**;
- every delivered LSU becomes a **delivery event** whose parent is the
  event that *sent* the message (the root for messages queued by the
  injection itself, the upstream delivery otherwise);
- every message a router queues while an event is being processed is
  tagged with that event's id and the node's Lamport clock.

The metadata travels *out of band*: tags are keyed by the LSU's
process-wide ``seq`` (see :class:`~repro.core.linkstate.LSUMessage`),
never attached to the wire messages, so message counts, wire semantics
and the committed converge fixtures stay byte-identical whether causal
tracing is on or off.  Lamport clocks — not wall clocks — order the
events because the ROADMAP's distributed deployment has no usable
global clock; only the causal structure survives real networks, and it
is exactly reproducible under the driver's seeded interleaving.

At quiescence the tracker folds the events into **update-wave spans**
(all messages grouped under their triggering root, with depth, breadth
and fan-out) and the **convergence critical path**: the causal chain
ending at the last-processed event of the window, walked back to its
root.  Because the driver is serial, a parent always finishes before
its child starts, so the path's per-event durations plus the gaps
between them telescope to the window's wall time — the decomposition
into *processing* (time inside path events), *timer wait* (root to
first delivery) and *propagation* (everything between path events,
including interleaved off-path work and instrument overhead) is exact.

The second half of this module post-processes *traces*: the driver
mirrors the causal fields into the event stream (``eid``/``parent``/
``lamport`` on ``lsu_deliver``, ``cause`` on ``dist_change`` and
``succ_change``, plus ``wave_span`` / ``critical_path`` events), and
:func:`provenance_chain` walks a routing-table change backwards to its
root trigger — the engine behind ``repro explain NODE DEST``.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any

from repro.obs.trace import OPTIONAL_FIELDS

#: Event kinds that exist only when causal tracing is enabled.
CAUSAL_KINDS = frozenset({"wave_span", "critical_path", "succ_change"})

#: Causal fields riding as optional extras on pre-existing event kinds
#: (the schema home is ``trace.OPTIONAL_FIELDS`` — today causal tracing
#: is its only contributor).
CAUSAL_FIELDS: dict[str, frozenset[str]] = OPTIONAL_FIELDS


class CausalEvent:
    """One node in the causal DAG (a root trigger or an LSU delivery)."""

    __slots__ = (
        "eid",
        "kind",
        "op",
        "link",
        "node",
        "parent",
        "root",
        "lamport",
        "depth",
        "start",
        "end",
        "delivered",
        "children",
    )

    def __init__(
        self,
        eid: int,
        kind: str,
        *,
        op: str | None = None,
        link: Any = None,
        node: Any = None,
        parent: int | None = None,
        root: int | None = None,
        lamport: int = 0,
        depth: int = 0,
        delivered: int = 0,
    ) -> None:
        self.eid = eid
        self.kind = kind
        self.op = op
        self.link = link
        self.node = node
        self.parent = parent
        self.root = root
        self.lamport = lamport
        self.depth = depth
        now = perf_counter()
        self.start = now
        self.end = now
        self.delivered = delivered
        self.children = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "eid": self.eid,
            "kind": self.kind,
            "op": self.op,
            "link": self.link,
            "node": self.node,
            "parent": self.parent,
            "lamport": self.lamport,
            "delivered": self.delivered,
        }


class CausalTracker:
    """Live causal metadata for one observation session.

    The driver is the only writer; everything here is derived from the
    seeded delivery order, so every count, depth and Lamport value is
    exactly reproducible (wall-clock ``start``/``end`` readings are the
    one machine-dependent part, and only the ``*_s`` decomposition
    fields depend on them).
    """

    def __init__(self) -> None:
        #: Every event ever created, indexed by its eid.
        self.events: list[CausalEvent] = []
        #: Per-node Lamport clocks (keyed by the node's stable string).
        self.clocks: dict[str, int] = {}
        #: LSU ``seq`` -> (sending event id, sender Lamport value) for
        #: messages currently in flight; cleared at quiescence (no
        #: message survives a quiescent network).
        self.tags: dict[int, tuple[int, int]] = {}
        #: The event whose processing is currently running; messages
        #: queued now are its causal children.
        self.current: CausalEvent | None = None
        #: Deliveries whose message carried no tag — zero in any run
        #: fully covered by the observation session.
        self.orphans = 0
        #: Root events opened so far (over the whole session).
        self.roots = 0
        #: Completed wave summaries / critical paths, one batch per
        #: quiescence (JSON-ready dicts, also emitted as trace events).
        self.waves: list[dict[str, Any]] = []
        self.critical: list[dict[str, Any]] = []
        self._open_roots: list[CausalEvent] = []
        self._wave_events: dict[int, list[CausalEvent]] = {}

    # ------------------------------------------------------------------
    # the driver-facing write API
    # ------------------------------------------------------------------
    def open_root(self, op: str, link: Any, delivered: int) -> int:
        """A disturbance was injected; returns the new root event id."""
        eid = len(self.events)
        event = CausalEvent(
            eid, "root", op=op, link=link, root=eid, delivered=delivered
        )
        self.events.append(event)
        self.current = event
        self.roots += 1
        self._open_roots.append(event)
        self._wave_events[eid] = []
        return eid

    def deliver(self, link: Any, seq: int, delivered: int) -> CausalEvent:
        """A message was popped for delivery; returns its new event."""
        node = _node_key(link[1])
        tag = self.tags.get(seq)
        if tag is None:
            self.orphans += 1
            parent_eid: int | None = None
            root: int | None = None
            depth = 1
            msg_lamport = 0
        else:
            parent_eid, msg_lamport = tag
            parent = self.events[parent_eid]
            parent.children += 1
            root = parent.root
            depth = parent.depth + 1
        lamport = max(self.clocks.get(node, 0), msg_lamport) + 1
        self.clocks[node] = lamport
        eid = len(self.events)
        event = CausalEvent(
            eid,
            "deliver",
            link=link,
            node=node,
            parent=parent_eid,
            root=root,
            lamport=lamport,
            depth=depth,
            delivered=delivered,
        )
        self.events.append(event)
        if root is not None:
            self._wave_events[root].append(event)
        self.current = event
        return event

    def sent(self, seq: int) -> None:
        """A message was handed to the transport by the current event."""
        current = self.current
        if current is not None:
            self.tags[seq] = (current.eid, current.lamport)

    def touch(self) -> None:
        """The current event's processing reached this instant."""
        if self.current is not None:
            self.current.end = perf_counter()

    def current_eid(self) -> int | None:
        """The id of the event being processed (for provenance stamps)."""
        return None if self.current is None else self.current.eid

    def quiesce(
        self, delivered: int
    ) -> tuple[list[dict[str, Any]], dict[str, Any] | None]:
        """Close the window: wave summaries and its critical path.

        Returns the waves opened since the last quiescence (one per
        root, in injection order) and the window's critical path (None
        when the window had no root).  Both are also appended to
        :attr:`waves` / :attr:`critical` for in-memory consumers (the
        scale benchmark, the ``--causal`` audit).
        """
        waves: list[dict[str, Any]] = []
        last: CausalEvent | None = None
        for root in self._open_roots:
            events = self._wave_events[root.eid]
            depth = 0
            by_depth: dict[int, int] = {}
            max_fanout = root.children
            nodes = set()
            for event in events:
                if event.depth > depth:
                    depth = event.depth
                by_depth[event.depth] = by_depth.get(event.depth, 0) + 1
                if event.children > max_fanout:
                    max_fanout = event.children
                nodes.add(event.node)
                if last is None or event.end > last.end:
                    last = event
            waves.append(
                {
                    "root": root.eid,
                    "op": root.op,
                    "link": root.link,
                    "messages": len(events),
                    "depth": depth,
                    "breadth": max(by_depth.values(), default=0),
                    "max_fanout": max_fanout,
                    "nodes": len(nodes),
                    "start_delivered": root.delivered,
                    "end_delivered": delivered,
                }
            )
        critical = None
        if self._open_roots:
            critical = self._critical_path(last, delivered)
            self.critical.append(critical)
        self.waves.extend(waves)
        self.tags.clear()
        self._open_roots = []
        self._wave_events = {}
        self.current = None
        return waves, critical

    def _critical_path(
        self, last: CausalEvent | None, delivered: int
    ) -> dict[str, Any]:
        """The longest-ending causal chain of the just-closed window.

        The driver is serial: a parent's processing always ends before
        its child's begins, so along the path ``processing_s`` (inside
        events) + ``timer_wait_s`` (root to first delivery) +
        ``propagation_s`` (the remaining gaps, which absorb interleaved
        off-path events and instrument overhead) sum exactly to
        ``total_s``, the root-to-quiescence wall time.
        """
        if last is None:
            # A window with roots but no deliveries (e.g. a no-op cost
            # change): the path is the root alone.
            root = self._open_roots[-1]
            return {
                "root": root.eid,
                "op": root.op,
                "link": root.link,
                "length": 0,
                "processing_s": round(root.end - root.start, 6),
                "propagation_s": 0.0,
                "timer_wait_s": 0.0,
                "total_s": round(root.end - root.start, 6),
                "path": [],
                "delivered": delivered,
            }
        chain: list[CausalEvent] = []
        event: CausalEvent | None = last
        while event is not None:
            chain.append(event)
            event = (
                None if event.parent is None else self.events[event.parent]
            )
        chain.reverse()  # root first
        root = chain[0]
        processing = sum(e.end - e.start for e in chain)
        timer_wait = max(0.0, chain[1].start - root.end)
        propagation = sum(
            max(0.0, chain[i].start - chain[i - 1].end)
            for i in range(2, len(chain))
        )
        return {
            "root": root.eid,
            "op": root.op,
            "link": root.link,
            "length": len(chain) - 1,
            "processing_s": round(processing, 6),
            "propagation_s": round(propagation, 6),
            "timer_wait_s": round(timer_wait, 6),
            "total_s": round(last.end - root.start, 6),
            "path": [
                {
                    "eid": e.eid,
                    "node": e.node,
                    "link": e.link,
                    "lamport": e.lamport,
                    "delivered": e.delivered,
                }
                for e in chain[1:]
            ],
            "delivered": delivered,
        }

    def failure_slice(self) -> list[dict[str, Any]]:
        """The ancestor chain of the current event, root first.

        This is the *minimal causal slice* of a violation: the exact
        message chain that led to the state the checker rejected.  All
        fields are deterministic (ids, links, Lamport values, delivered
        counts — no wall times), so a replayed case reproduces the
        slice verbatim.
        """
        chain: list[dict[str, Any]] = []
        event = self.current
        while event is not None:
            chain.append(event.as_dict())
            event = (
                None if event.parent is None else self.events[event.parent]
            )
        chain.reverse()
        return chain


def _node_key(value: Any) -> str:
    """Stable string key for a node id (mirrors the trace rendering)."""
    return value if isinstance(value, str) else repr(value)


# ----------------------------------------------------------------------
# trace-side reconstruction (``repro explain``)
# ----------------------------------------------------------------------
def causal_index(events: list[dict[str, Any]]) -> dict[int, dict[str, Any]]:
    """eid -> trace event, for every event carrying causal identity."""
    index: dict[int, dict[str, Any]] = {}
    for event in events:
        eid = event.get("eid")
        if eid is not None:
            index[eid] = event
    return index


def _matches(value: Any, wanted: str) -> bool:
    """Does a (possibly repr-rendered) trace value name ``wanted``?"""
    return (
        value == wanted
        or str(value) == wanted
        or repr(value) == wanted
        or json.dumps(value, default=repr) == wanted
    )


def provenance_chain(
    events: list[dict[str, Any]], node: str, dest: str
) -> list[dict[str, Any]] | None:
    """The causal chain behind ``node``'s current route to ``dest``.

    Finds the *last* ``dist_change`` / ``succ_change`` event of ``node``
    touching ``dest`` and walks its ``cause`` through the
    ``lsu_deliver`` parent links back to the ``disturbance`` root.
    Returns the chain ``[change, delivery, ..., root]`` or None when the
    trace has no causally-stamped change for the pair (causal tracing
    off, or the route never changed).
    """
    target: dict[str, Any] | None = None
    for event in events:
        if event.get("kind") not in ("dist_change", "succ_change"):
            continue
        if event.get("cause") is None:
            continue
        if not _matches(event.get("node"), node):
            continue
        if any(_matches(d, dest) for d in event.get("dests", ())):
            target = event  # last match wins: the *current* route
    if target is None:
        return None
    index = causal_index(events)
    chain = [target]
    eid = target.get("cause")
    seen: set[int] = set()
    while eid is not None and eid not in seen:
        seen.add(eid)
        event = index.get(eid)
        if event is None:
            break
        chain.append(event)
        if event.get("kind") == "disturbance":
            break
        eid = event.get("parent")
    return chain


def render_explanation(
    chain: list[dict[str, Any]], node: str, dest: str
) -> str:
    """Human-readable provenance walk (the ``repro explain`` output)."""
    change, *rest = chain
    lines = [
        f"route provenance: {node} -> {dest}",
        (
            f"  {change['kind']} at {node} "
            f"(delivered={change.get('delivered')}, "
            f"dests={change.get('dests')}) caused by event "
            f"#{change.get('cause')}"
        ),
    ]
    for event in rest:
        kind = event.get("kind")
        if kind == "lsu_deliver":
            lines.append(
                f"  #{event.get('eid')} lsu_deliver on "
                f"{event.get('link')} "
                f"(lamport={event.get('lamport')}, "
                f"delivered={event.get('delivered')}) "
                f"<- #{event.get('parent')}"
            )
        elif kind == "disturbance":
            lines.append(
                f"  root #{event.get('eid')}: {event.get('op')} "
                f"{event.get('link')} at delivered="
                f"{event.get('delivered')}"
            )
    complete = bool(rest) and rest[-1].get("kind") == "disturbance"
    if complete:
        lines.append(
            f"  chain: {len(rest) - 1} message(s) from trigger to the "
            "final table change"
        )
    else:
        lines.append(
            "  (chain truncated: the trace does not reach a disturbance "
            "root — was causal tracing active for the whole run?)"
        )
    return "\n".join(lines)
