"""Structured event tracing with a JSONL sink.

A :class:`Tracer` turns protocol and simulator events into one JSON
object per line::

    {"kind": "epoch", "t": 12.0, "avg_delay": 0.0214, ...}

Events carry the simulated time (``t``), the node they concern
(``node``), a ``kind`` tag, and an arbitrary flat payload.  Values that
are not JSON-native (node ids are any hashable, link ids are tuples)
are rendered with :func:`repr`, so every trace line is parseable with a
plain ``json.loads`` regardless of the topology's id types.

The disabled path is :data:`NULL_TRACER`, whose :meth:`~Tracer.event`
is a no-op and whose ``enabled`` flag lets hot paths skip payload
construction entirely::

    if tracer.enabled:
        tracer.event("deliver", time=now, node=node, entries=n)
"""

from __future__ import annotations

import json
from typing import IO, Any


class Tracer:
    """Writes structured events as JSON lines to a sink.

    Args:
        sink: a writable text stream.  The tracer owns it (and closes it
            on :meth:`close`) only when created via :meth:`to_path`.
    """

    enabled = True

    def __init__(self, sink: IO[str]) -> None:
        self._sink = sink
        self._owns_sink = False
        self.events_written = 0

    @classmethod
    def to_path(cls, path: str) -> "Tracer":
        """A tracer writing to ``path`` (truncated), closed by ``close``."""
        tracer = cls(open(path, "w"))
        tracer._owns_sink = True
        return tracer

    def event(
        self,
        kind: str,
        *,
        time: float | None = None,
        node: Any = None,
        **payload: Any,
    ) -> None:
        """Emit one event line."""
        record: dict[str, Any] = {"kind": kind}
        if time is not None:
            record["t"] = time
        if node is not None:
            record["node"] = node
        record.update(payload)
        self._sink.write(json.dumps(record, default=repr) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        """Flush, and close the sink if this tracer opened it."""
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()


class NullTracer:
    """The zero-overhead disabled tracer."""

    enabled = False

    def event(self, kind: str, **payload: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled tracer; components default to this.
NULL_TRACER = NullTracer()


#: The documented trace schema: event ``kind`` -> the payload fields
#: every event of that kind is guaranteed to carry (beyond ``kind``
#: itself; optional fields like ``t`` are listed only where always
#: present).  The round-trip test suite enforces that every event the
#: drivers, engines and runners emit appears here with these fields, so
#: downstream consumers (``repro report``, external tooling) can rely on
#: them.
EVENT_SCHEMAS: dict[str, frozenset[str]] = {
    # controller: one per Ts epoch (either data plane)
    "epoch": frozenset({"t", "run", "avg_delay", "max_utilization"}),
    # packet plane: one per Ts measurement tick
    "ts_tick": frozenset({"t", "tick", "delivered", "dropped"}),
    # controller: a scenario outage started/ended on a directed link;
    # the data plane saw the physical event (queued packets dropped)
    # and the routing plane was notified
    "link_down": frozenset({"t", "link", "plane"}),
    "link_up": frozenset({"t", "link", "plane"}),
    # protocol driver: one per delivered LSU
    "lsu_deliver": frozenset({"link", "entries", "ack", "delivered"}),
    # transport layer: a channel fault hit a wire frame; op is
    # loss/dup/reorder/partition_drop, seq the per-link frame number
    "transport_fault": frozenset({"op", "link", "seq"}),
    # reliable transport: a retransmit timer fired and the unacked
    # frames on the link were resent (attempt = consecutive timeouts)
    "retransmit": frozenset({"link", "frames", "attempt"}),
    # MPDA synchronization phases
    "active_enter": frozenset({"node", "delivered"}),
    "active_exit": frozenset({"node", "wall_s", "messages"}),
    # routing plane: one per Tl route recomputation
    "route_update": frozenset({"update", "churn"}),
    # protocol driver: an injected topology/cost event (the start of a
    # convergence window); op is link_up/link_down/link_cost_change
    "disturbance": frozenset({"op", "link", "delivered"}),
    # protocol driver: a router's distance vector changed
    "dist_change": frozenset({"node", "dests", "delivered"}),
    # protocol driver: the network went quiet after a run() pump
    "quiescent": frozenset({"delivered", "messages", "wall_s"}),
    # online invariant auditor
    "audit_violation": frozenset({"check", "error", "delivered"}),
    "audit_summary": frozenset(
        {"checks", "violations", "verdict", "delivered"}
    ),
    # Gallager's OPT finished
    "opt_done": frozenset({"iterations", "converged", "total_delay"}),
    # causal tracing (obs/causal.py, ``obs.start(causal=True)``): a
    # router's successor sets changed (MPDA routers only)
    "succ_change": frozenset({"node", "dests", "delivered", "cause"}),
    # causal tracing: one update wave (all deliveries descending from
    # one disturbance root), summarized at quiescence
    "wave_span": frozenset(
        {
            "root",
            "op",
            "link",
            "messages",
            "depth",
            "breadth",
            "max_fanout",
            "nodes",
            "start_delivered",
            "end_delivered",
        }
    ),
    # causal tracing: the convergence window's critical path (longest
    # causal chain from trigger to quiescence, time-decomposed)
    "critical_path": frozenset(
        {
            "root",
            "op",
            "link",
            "length",
            "processing_s",
            "propagation_s",
            "timer_wait_s",
            "total_s",
            "path",
            "delivered",
        }
    ),
}

#: Optional payload fields: event ``kind`` -> fields that *may* appear
#: beyond the required set above.  Today these are exactly the causal
#: annotations (present iff ``obs.start(causal=True)``); the
#: schema-coverage audit in the test suite enforces that every emitted
#: field is either required, listed here, or one of the universal
#: ``kind``/``t``/``node`` envelope keys.
OPTIONAL_FIELDS: dict[str, frozenset[str]] = {
    # causal identity of the delivery event and its sender
    "lsu_deliver": frozenset({"eid", "parent", "lamport"}),
    # causal root event id of the injected disturbance
    "disturbance": frozenset({"eid"}),
    # causal event id whose processing changed the distances/successors
    "dist_change": frozenset({"cause"}),
    # update waves closed at this quiescence + untagged deliveries
    "quiescent": frozenset({"waves", "orphans"}),
    # process-wide LSU seq of the payload hit by the fault (None-less:
    # omitted for pure-ACK frames)
    "transport_fault": frozenset({"lsu"}),
}
