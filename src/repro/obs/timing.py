"""Wall-clock phase timers for the hot paths.

:class:`PhaseTimers` accumulates ``perf_counter`` time per named phase
("netsim.engine.run", "fluid.route_update", "gallager.optimize", ...)::

    with timers.phase("fluid.route_update"):
        routing.update_routes(costs)

The :func:`phase` module helper makes call sites observation-agnostic —
it returns a shared no-op context manager when no observation is
active, so the disabled path costs one ``None`` check per phase entry
(phases wrap epoch- and run-granularity work, never per-event work).
"""

from __future__ import annotations

from time import perf_counter


class PhaseStats:
    """Accumulated wall-clock statistics of one phase."""

    __slots__ = ("total_s", "calls", "max_s")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.calls = 0
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.total_s += elapsed
        self.calls += 1
        if elapsed > self.max_s:
            self.max_s = elapsed

    def as_dict(self) -> dict[str, float]:
        return {
            "total_s": self.total_s,
            "calls": self.calls,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
        }


class _PhaseContext:
    """One timed ``with`` block; feeds its phase's stats on exit."""

    __slots__ = ("_stats", "_started")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._started = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stats.add(perf_counter() - self._started)


class _NullPhase:
    """The disabled phase context (shared, allocation-free)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_PHASE = _NullPhase()


class PhaseTimers:
    """Named wall-clock accumulators."""

    def __init__(self) -> None:
        self._phases: dict[str, PhaseStats] = {}

    def phase(self, name: str) -> _PhaseContext:
        """A context manager timing one execution of ``name``."""
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = PhaseStats()
        return _PhaseContext(stats)

    def stats(self, name: str) -> PhaseStats | None:
        return self._phases.get(name)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: self._phases[name].as_dict()
            for name in sorted(self._phases)
        }


def phase(observation: object | None, name: str):
    """``observation.timers.phase(name)``, or a no-op when disabled."""
    if observation is None:
        return NULL_PHASE
    return observation.timers.phase(name)
