"""Wall-clock phase timers for the hot paths.

:class:`PhaseTimers` accumulates ``perf_counter`` time per named phase
("netsim.engine.run", "fluid.route_update", "gallager.optimize", ...)::

    with timers.phase("fluid.route_update"):
        routing.update_routes(costs)

The :func:`phase` module helper makes call sites observation-agnostic —
it returns a shared no-op context manager when no observation is
active, so the disabled path costs one ``None`` check per phase entry
(phases wrap epoch- and run-granularity work, never per-event work).

:class:`ProfilingTimers` is the drop-in profiling variant
(``obs.start(profile=True)`` installs it): the same ``phase`` contract,
but each phase additionally records CPU time (``process_time``) and
tracks the stack of open phases so *self* time — total minus the time
spent in enclosed phases — can be reported.  Self time is what makes a
profile actionable: ``routing.update_routes`` encloses
``protocol.driver.run``, and only the difference is the route
computation itself.  The profiling machinery lives in its own classes
so the default timers (and the disabled path) stay exactly as cheap as
before.
"""

from __future__ import annotations

from time import perf_counter, process_time


class PhaseStats:
    """Accumulated wall-clock statistics of one phase."""

    __slots__ = ("total_s", "calls", "max_s")

    def __init__(self) -> None:
        self.total_s = 0.0
        self.calls = 0
        self.max_s = 0.0

    def add(self, elapsed: float) -> None:
        self.total_s += elapsed
        self.calls += 1
        if elapsed > self.max_s:
            self.max_s = elapsed

    def as_dict(self) -> dict[str, float]:
        return {
            "total_s": self.total_s,
            "calls": self.calls,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.calls if self.calls else 0.0,
        }


class _PhaseContext:
    """One timed ``with`` block; feeds its phase's stats on exit."""

    __slots__ = ("_stats", "_started")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._started = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stats.add(perf_counter() - self._started)


class _NullPhase:
    """The disabled phase context (shared, allocation-free)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_PHASE = _NullPhase()


class PhaseTimers:
    """Named wall-clock accumulators."""

    def __init__(self) -> None:
        self._phases: dict[str, PhaseStats] = {}

    def phase(self, name: str) -> _PhaseContext:
        """A context manager timing one execution of ``name``."""
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = PhaseStats()
        return _PhaseContext(stats)

    def stats(self, name: str) -> PhaseStats | None:
        return self._phases.get(name)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {
            name: self._phases[name].as_dict()
            for name in sorted(self._phases)
        }


def phase(observation: object | None, name: str):
    """``observation.timers.phase(name)``, or a no-op when disabled."""
    if observation is None:
        return NULL_PHASE
    return observation.timers.phase(name)


# ----------------------------------------------------------------------
# profiling variant
# ----------------------------------------------------------------------
class ProfilePhaseStats(PhaseStats):
    """Phase statistics plus CPU time and enclosed-phase (child) time.

    ``self_s`` (total minus child wall time) is the ranking key of the
    profile report.  For re-entrant phases (a phase nested inside
    itself) the outer entry's total already includes the inner one, so
    ``self_s`` attributes the overlap to the child — totals stay
    monotone and self times never go negative.
    """

    __slots__ = ("cpu_s", "child_s")

    def __init__(self) -> None:
        super().__init__()
        self.cpu_s = 0.0
        self.child_s = 0.0

    @property
    def self_s(self) -> float:
        return max(self.total_s - self.child_s, 0.0)

    def as_dict(self) -> dict[str, float]:
        out = super().as_dict()
        out["cpu_s"] = self.cpu_s
        out["self_s"] = self.self_s
        return out


class _ProfilePhaseContext:
    """A timed ``with`` block that also feeds the profiling extras."""

    __slots__ = ("_timers", "_stats", "_wall0", "_cpu0")

    def __init__(self, timers: "ProfilingTimers", stats: ProfilePhaseStats) -> None:
        self._timers = timers
        self._stats = stats
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_ProfilePhaseContext":
        self._timers._stack.append(self._stats)
        self._cpu0 = process_time()
        self._wall0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = perf_counter() - self._wall0
        cpu = process_time() - self._cpu0
        stats = self._stats
        stats.add(elapsed)
        stats.cpu_s += cpu
        stack = self._timers._stack
        stack.pop()
        if stack:
            # Attribute this phase's wall time to the enclosing phase's
            # child bucket, so the parent's self time excludes it.
            stack[-1].child_s += elapsed


class ProfilingTimers(PhaseTimers):
    """Phase timers that additionally profile CPU and self time.

    Same interface as :class:`PhaseTimers`; instrumented call sites
    cannot tell the difference.  Phase entry/exit is a little more
    expensive (one extra clock read and a stack push/pop), which is why
    this is opt-in (``obs.start(profile=True)``) rather than the
    default.
    """

    def __init__(self) -> None:
        super().__init__()
        #: Innermost-last stack of currently open phases.
        self._stack: list[ProfilePhaseStats] = []

    def phase(self, name: str) -> _ProfilePhaseContext:
        stats = self._phases.get(name)
        if stats is None:
            stats = self._phases[name] = ProfilePhaseStats()
        return _ProfilePhaseContext(self, stats)
