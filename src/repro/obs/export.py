"""Serialization of an observation: metrics JSON and timing tables.

The exported document has two top-level sections::

    {
      "metrics":  {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "timings":  {"netsim.engine.run": {"total_s": ..., "calls": ...}, ...}
    }

which is what ``python -m repro run ... --metrics-out m.json`` writes
and what :attr:`repro.sim.results.RunResult.metrics` holds.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observation


def snapshot(observation: "Observation") -> dict[str, Any]:
    """The full JSON-ready state of an observation.

    A profiling session (``obs.start(profile=True)``) adds a third
    section, ``"profile"``, with the run-level wall/CPU/memory readings
    of the attached :class:`~repro.obs.profile.ResourceProfiler`; the
    per-phase ``cpu_s`` / ``self_s`` extras ride along inside
    ``"timings"``.
    """
    out = {
        "metrics": observation.metrics.snapshot(),
        "timings": observation.timers.as_dict(),
    }
    profiler = getattr(observation, "profiler", None)
    if profiler is not None:
        out["profile"] = profiler.snapshot()
    return out


def write_metrics(path: str, observation: "Observation") -> None:
    """Write the observation snapshot to ``path`` as indented JSON."""
    with open(path, "w") as fh:
        json.dump(snapshot(observation), fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_timings(observation: "Observation") -> str:
    """A plain-text table of the wall-clock phase timers."""
    timings = observation.timers.as_dict()
    if not timings:
        return "timings\n(no phases recorded)"
    name_width = max(24, max(len(name) for name in timings) + 2)
    header = (
        "phase".ljust(name_width)
        + "total_s".rjust(10)
        + "calls".rjust(8)
        + "mean_ms".rjust(10)
        + "max_ms".rjust(10)
    )
    lines = ["timings", "=" * len(header), header, "-" * len(header)]
    for name, stats in timings.items():
        lines.append(
            name.ljust(name_width)
            + f"{stats['total_s']:.3f}".rjust(10)
            + f"{stats['calls']:d}".rjust(8)
            + f"{1e3 * stats['mean_s']:.3f}".rjust(10)
            + f"{1e3 * stats['max_s']:.3f}".rjust(10)
        )
    lines.append("-" * len(header))
    return "\n".join(lines)
