"""Run reports: post-process a trace + metrics snapshot into one document.

:func:`build_report` combines a parsed JSONL trace (see
:func:`repro.obs.convergence.read_trace`) and a metrics snapshot (the
document ``--metrics-out`` writes, or just its ``metrics`` section) into
a single JSON-ready report: convergence windows, audit verdict, delay
quantiles and decomposition, protocol overhead, successor churn, and an
event census.  :func:`render_report` turns it into the text tables the
``repro report`` subcommand prints.

The report is deterministic: everything it states is derived from the
two input files, so re-running it over committed fixtures must
reproduce the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.obs.convergence import (
    audit_outcome,
    convergence_windows,
    delay_decomposition,
    delay_quantiles,
    protocol_overhead,
    successor_churn_series,
    unknown_event_summary,
)

#: Report document version; bump when the structure changes.
#: /2: ``events.unknown`` census + ``causal`` section (update waves and
#: critical-path attribution from causal traces).
REPORT_SCHEMA = "repro.report/2"


def build_report(
    events: list[dict[str, Any]],
    metrics_doc: dict[str, Any] | None = None,
    *,
    source: dict[str, str] | None = None,
) -> dict[str, Any]:
    """Derive the full run report from a trace and a metrics snapshot.

    Args:
        events: parsed trace events, in file order.
        metrics_doc: either the whole ``--metrics-out`` document (with
            ``metrics`` / ``timings`` sections) or a bare metrics
            snapshot; None when only the trace is available.
        source: optional provenance (input paths) recorded verbatim.
    """
    if metrics_doc is None:
        metrics: dict[str, Any] = {}
    else:
        metrics = metrics_doc.get("metrics", metrics_doc)
    windows = convergence_windows(events)
    churn = successor_churn_series(events)
    kinds = Counter(event.get("kind", "?") for event in events)
    return {
        "schema": REPORT_SCHEMA,
        "source": source or {},
        "events": {
            "total": len(events),
            "by_kind": dict(sorted(kinds.items())),
            # Forward compatibility: kinds/fields newer than this build
            # are skipped by every consumer and surfaced here.
            "unknown": unknown_event_summary(events),
        },
        "windows": [w.as_dict() for w in windows],
        "causal": _causal_section(windows, events),
        "audit": audit_outcome(metrics),
        "overhead": protocol_overhead(metrics),
        "delay": {
            "quantiles": delay_quantiles(metrics),
            "decomposition": delay_decomposition(metrics),
        },
        "churn": {
            "route_updates": len(churn),
            "total": sum(count for _, count in churn),
            "max": max((count for _, count in churn), default=0),
        },
    }


def _causal_section(windows, events: list[dict[str, Any]]):
    """Aggregate causal-trace artifacts; None for non-causal traces."""
    waves = [wave for window in windows for wave in window.waves]
    if not waves:
        return None
    orphans = 0
    for event in events:
        if event.get("kind") == "quiescent" and "orphans" in event:
            orphans = event["orphans"]  # cumulative; last value wins
    depths = [wave.get("depth", 0) for wave in waves]
    paths = []
    for window in windows:
        path = window.critical_path
        if path is None:
            continue
        wall = window.wall_s
        total = path.get("total_s")
        paths.append(
            {
                "label": window.label,
                "length": path.get("length"),
                "processing_s": path.get("processing_s"),
                "propagation_s": path.get("propagation_s"),
                "timer_wait_s": path.get("timer_wait_s"),
                "total_s": total,
                "window_wall_s": wall,
                # How much of the measured convergence window the
                # critical path accounts for; ~1.0 when the window's
                # wall time is causally attributed end to end (>1.0
                # when the root was injected before the run() clock
                # started, e.g. the cold-start adjacency bring-up).
                "coverage": (
                    round(total / wall, 4) if wall and total else None
                ),
            }
        )
    return {
        "waves": len(waves),
        "messages_in_waves": sum(w.get("messages", 0) for w in waves),
        "max_depth": max(depths, default=0),
        "mean_depth": (
            round(sum(depths) / len(depths), 2) if depths else 0.0
        ),
        "max_fanout": max((w.get("max_fanout", 0) for w in waves), default=0),
        "orphans": orphans,
        "critical_paths": paths,
    }


def write_report(path: str, report: dict[str, Any]) -> None:
    """Write a report document as indented JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_report(report: dict[str, Any]) -> str:
    """The text form of a report: tables plus one-line summaries."""
    parts = [
        _render_windows(report.get("windows", [])),
        _render_causal(report.get("causal")),
        _render_audit(report.get("audit", {})),
        _render_delay(report.get("delay", {})),
        _render_overhead(report.get("overhead")),
        _render_churn(report.get("churn", {})),
        _render_events(report.get("events", {})),
    ]
    return "\n".join(part for part in parts if part)


def _render_windows(windows: list[dict[str, Any]]) -> str:
    header = (
        "window".ljust(28)
        + "messages".rjust(10)
        + "active".rjust(8)
        + "dests".rjust(7)
        + "slowest (dest:msgs)".rjust(22)
        + "audit".rjust(9)
    )
    lines = [
        "convergence windows (disturbance -> quiescence, in messages "
        "delivered)",
        "=" * len(header),
        header,
        "-" * len(header),
    ]
    if not windows:
        lines.append("(no disturbance events in trace)")
    for window in windows:
        messages = window.get("messages")
        slowest = window.get("slowest_destination")
        slowest_cell = (
            f"{slowest}:{window.get('slowest_messages')}"
            if slowest is not None
            else "-"
        )
        audit = window.get("audit") or {}
        lines.append(
            str(window.get("label", "?"))[:27].ljust(28)
            + (f"{messages}" if messages is not None else "open").rjust(10)
            + f"{window.get('active_entries', 0)}".rjust(8)
            + f"{window.get('destinations_touched', 0)}".rjust(7)
            + slowest_cell.rjust(22)
            + str(audit.get("verdict", "-")).rjust(9)
        )
    lines.append("-" * len(header))
    return "\n".join(lines)


def _render_causal(causal: dict[str, Any] | None) -> str:
    if not causal:
        return ""
    lines = [
        "causal: "
        f"{causal.get('waves', 0)} update waves covering "
        f"{causal.get('messages_in_waves', 0)} messages "
        f"(max depth {causal.get('max_depth', 0)}, "
        f"mean {causal.get('mean_depth', 0.0)}, "
        f"max fan-out {causal.get('max_fanout', 0)}, "
        f"orphans {causal.get('orphans', 0)})"
    ]
    for path in causal.get("critical_paths", ()):
        coverage = path.get("coverage")
        lines.append(
            f"  critical path [{path.get('label', '?')}]: "
            f"{path.get('length', 0)} hops, "
            f"total {path.get('total_s', 0.0):.4g}s = "
            f"processing {path.get('processing_s', 0.0):.4g}s + "
            f"propagation {path.get('propagation_s', 0.0):.4g}s + "
            f"timer wait {path.get('timer_wait_s', 0.0):.4g}s"
            + (
                f" ({coverage:.0%} of window wall)"
                if coverage is not None
                else ""
            )
        )
    return "\n".join(lines)


def _render_audit(audit: dict[str, Any]) -> str:
    if not audit:
        return ""
    return (
        f"audit: verdict={audit.get('verdict', 'no-data')} "
        f"checks={audit.get('checks', 0)} "
        f"violations={audit.get('violations', 0)}"
    )


def _render_delay(delay: dict[str, Any]) -> str:
    lines = []
    quantiles = delay.get("quantiles")
    if quantiles:
        lines.append(
            "delay quantiles (s): "
            + " ".join(
                f"{key}={quantiles[key]:.4g}"
                for key in ("p50", "p90", "p99", "mean", "max")
                if key in quantiles
            )
            + f" (n={int(quantiles.get('count', 0))})"
        )
    decomposition = delay.get("decomposition")
    if decomposition:
        fractions = decomposition.get("fractions", {})
        lines.append(
            "delay decomposition: "
            + " ".join(
                f"{name}={fractions.get(name, 0.0):.1%}"
                for name in ("queueing", "transmission", "propagation")
            )
            + f" of {decomposition.get('total_s', 0.0):.4g}s total"
        )
    return "\n".join(lines)


def _render_overhead(overhead: dict[str, Any] | None) -> str:
    if not overhead:
        return ""
    return "protocol overhead: " + " ".join(
        f"{key}={int(value)}" for key, value in sorted(overhead.items())
    )


def _render_churn(churn: dict[str, Any]) -> str:
    if not churn.get("route_updates"):
        return ""
    return (
        f"successor churn: {churn.get('total', 0)} changes over "
        f"{churn.get('route_updates', 0)} route updates "
        f"(max {churn.get('max', 0)} in one update)"
    )


def _render_events(events: dict[str, Any]) -> str:
    by_kind = events.get("by_kind", {})
    if not by_kind:
        return ""
    census = " ".join(f"{kind}={count}" for kind, count in by_kind.items())
    line = f"trace: {events.get('total', 0)} events ({census})"
    unknown = events.get("unknown") or {}
    if unknown.get("events") or unknown.get("fields"):
        line += (
            f"\ntrace: skipped {unknown.get('events', 0)} events of "
            f"unknown kind {sorted(unknown.get('kinds', {}))} and "
            f"unrecognized fields on {sorted(unknown.get('fields', {}))} "
            "(newer trace format?)"
        )
    return line
