"""Online invariant auditing of live MPDA/PDA runs.

The paper's headline correctness claim (Theorems 1-3) is that the LFI
conditions hold and the successor graph stays acyclic *at every
instant*, not just at convergence.  The test suite machine-checks this
with ``check_invariants=True`` runs; the :class:`InvariantAuditor` makes
the same verification a continuous, always-available measurement of any
observed run:

- the protocol driver calls :meth:`on_event` after every router event;
- the auditor samples those calls at a configurable cadence
  (``sample_every=1`` verifies after literally every event; larger
  values amortize the cost toward zero for long production runs);
- each sampled check runs :func:`repro.core.mpda.check_safety` — Eqs.
  (16)-(17) via :func:`repro.core.lfi.check_lfi` plus global successor
  acyclicity via :func:`repro.graph.validation.find_successor_cycle` —
  over the live router states, *including* in-flight ACTIVE states;
- outcomes land in the ``lfi_audit`` metric family (checks, violations,
  per-check wall time) and violations additionally become
  ``audit_violation`` trace events, so a run report can state an audit
  verdict with evidence.

Unlike ``check_invariants`` (which raises and kills the run on the
first violation), the auditor records and continues: an observability
instrument must never change the run it is observing.
"""

from __future__ import annotations

from collections.abc import Mapping
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.core.lfi import LFIViolation
from repro.core.mpda import MPDARouter, check_safety
from repro.exceptions import LoopError
from repro.graph.topology import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observation


class InvariantAuditor:
    """Samples live router states and verifies the LFI invariants.

    Args:
        sample_every: verify every Nth router event (1 = every event).
            Quiescence audits (:meth:`audit`) always run regardless.

    Attributes:
        checks / violations: lifetime totals across all sampled checks.
        last_error: message of the most recent violation, or None.
    """

    def __init__(self, *, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every!r}"
            )
        self.sample_every = sample_every
        self.events_seen = 0
        self.checks = 0
        self.violations = 0
        self.last_error: str | None = None

    # ------------------------------------------------------------------
    # driver hooks
    # ------------------------------------------------------------------
    def on_event(
        self,
        routers: Mapping[NodeId, Any],
        observation: "Observation",
        *,
        context: str = "",
        delivered: int = 0,
    ) -> None:
        """One router event happened; verify if the cadence says so."""
        self.events_seen += 1
        if self.events_seen % self.sample_every:
            return
        self.audit(routers, observation, context=context, delivered=delivered)

    def audit(
        self,
        routers: Mapping[NodeId, Any],
        observation: "Observation",
        *,
        context: str = "",
        delivered: int = 0,
    ) -> bool:
        """Verify the LFI invariants now; True when the state is clean.

        Violations are recorded (metrics + trace) and swallowed — the
        auditor observes the run, it does not abort it.
        """
        mpda = {
            node: router
            for node, router in routers.items()
            if isinstance(router, MPDARouter)
        }
        if not mpda:
            return True
        self.checks += 1
        metrics = observation.metrics
        metrics.counter("lfi_audit.checks").inc()
        # Register the violations series up front so a clean run still
        # exports an explicit zero rather than a missing key.
        metrics.counter("lfi_audit.violations")
        started = perf_counter()
        try:
            check_safety(mpda)
        except (LFIViolation, LoopError) as error:
            self.violations += 1
            self.last_error = str(error)
            metrics.counter("lfi_audit.violations").inc()
            if observation.tracer.enabled:
                observation.tracer.event(
                    "audit_violation",
                    check=context or "event",
                    error=str(error),
                    delivered=delivered,
                )
            return False
        finally:
            metrics.histogram("lfi_audit.check_seconds").observe(
                perf_counter() - started
            )
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        """"pass", "fail", or "no-data" (nothing was ever checked)."""
        if not self.checks:
            return "no-data"
        return "fail" if self.violations else "pass"

    def summary(self) -> dict[str, Any]:
        """JSON-ready audit outcome for reports and trace events."""
        return {
            "events_seen": self.events_seen,
            "sample_every": self.sample_every,
            "checks": self.checks,
            "violations": self.violations,
            "verdict": self.verdict,
            "last_error": self.last_error,
        }
