"""Online invariant auditing of live MPDA/PDA runs.

The paper's headline correctness claim (Theorems 1-3) is that the LFI
conditions hold and the successor graph stays acyclic *at every
instant*, not just at convergence.  The test suite machine-checks this
with ``check_invariants=True`` runs; the :class:`InvariantAuditor` makes
the same verification a continuous, always-available measurement of any
observed run:

- the protocol driver calls :meth:`on_event` after every router event;
- the auditor samples those calls at a configurable cadence
  (``sample_every=1`` verifies after literally every event; larger
  values amortize the cost toward zero for long production runs);
- each sampled check runs :func:`repro.core.mpda.check_safety` — Eqs.
  (16)-(17) via :func:`repro.core.lfi.check_lfi` plus global successor
  acyclicity via :func:`repro.graph.validation.find_successor_cycle` —
  over the live router states, *including* in-flight ACTIVE states;
- outcomes land in the ``lfi_audit`` metric family (checks, violations,
  per-check wall time) and violations additionally become
  ``audit_violation`` trace events, so a run report can state an audit
  verdict with evidence.

Unlike ``check_invariants`` (which raises and kills the run on the
first violation), the auditor records and continues: an observability
instrument must never change the run it is observing.

Sampled checks are **incremental**: each per-destination verification is
a pure function of per-router state rows (feasible distance, reported
neighbor distances, successor set), and one protocol event only mutates
the one router that processed it.  The auditor therefore caches the rows
between samples, uses the routers' ``route_version`` counters to find
which routers may have changed, rebuilds only their rows, and re-checks
only the destinations whose rows actually differ — everything else keeps
its cached verdict.  Quiescent audits (:meth:`audit` with
``context="quiescent"``) always discard the cache and verify everything
from scratch, so every convergence window ends with a ground-truth
check.
"""

from __future__ import annotations

from collections.abc import Mapping
from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.core.lfi import LFIViolation
from repro.core.linkstate import INFINITY
from repro.core.mpda import MPDARouter, check_destination
from repro.exceptions import LoopError
from repro.graph.topology import NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observation

_AUDIT_ERRORS = (LFIViolation, LoopError)


class _SafetyCache:
    """Per-destination state rows carried between sampled checks.

    ``feasible[j][i]`` / ``reported[j][i]`` / ``successors[j][i]`` are
    the :func:`~repro.core.mpda.check_destination` inputs; ``versions``
    maps router ``_uid`` to the ``route_version`` the rows were built
    from; ``contributed[uid]`` is the destination set the router's
    successor sets contributed (so destinations disappear from the audit
    exactly when the last router drops them); ``violating`` keeps the
    verdicts of broken destinations so a quiet (all-clean-diff) sample
    still reports a persisting violation.
    """

    __slots__ = (
        "versions",
        "feasible",
        "reported",
        "successors",
        "contributed",
        "dest_refs",
        "violating",
    )

    def __init__(self) -> None:
        self.versions: dict[int, int] = {}
        self.feasible: dict[NodeId, dict[NodeId, float]] = {}
        self.reported: dict[NodeId, dict[NodeId, dict[NodeId, float]]] = {}
        self.successors: dict[NodeId, dict[NodeId, set[NodeId]]] = {}
        self.contributed: dict[int, set[NodeId]] = {}
        self.dest_refs: dict[NodeId, int] = {}
        self.violating: dict[NodeId, Exception] = {}


def _rows(
    router: MPDARouter, j: NodeId
) -> tuple[float | None, dict[NodeId, float], set[NodeId]]:
    """Router ``i``'s state rows for destination ``j``.

    The feasible entry is None for ``i == j`` (check_safety builds the
    feasible map without the destination itself).
    """
    feasible = (
        None
        if router.node_id == j
        else router.feasible_distance.get(j, INFINITY)
    )
    reported = {
        k: router.neighbor_distance(k, j) for k in router.link_costs
    }
    return feasible, reported, router.successors(j)


class InvariantAuditor:
    """Samples live router states and verifies the LFI invariants.

    Args:
        sample_every: verify every Nth router event (1 = every event).
            Quiescence audits (:meth:`audit`) always run regardless.

    Attributes:
        checks / violations: lifetime totals across all sampled checks.
        last_error: message of the most recent violation, or None.
    """

    def __init__(self, *, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every!r}"
            )
        self.sample_every = sample_every
        self.events_seen = 0
        self.checks = 0
        self.violations = 0
        self.last_error: str | None = None
        self._cache: _SafetyCache | None = None

    # ------------------------------------------------------------------
    # driver hooks
    # ------------------------------------------------------------------
    def on_event(
        self,
        routers: Mapping[NodeId, Any],
        observation: "Observation",
        *,
        context: str = "",
        delivered: int = 0,
    ) -> None:
        """One router event happened; verify if the cadence says so."""
        self.events_seen += 1
        if self.events_seen % self.sample_every:
            return
        self.audit(
            routers,
            observation,
            context=context,
            delivered=delivered,
            incremental=True,
        )

    def audit(
        self,
        routers: Mapping[NodeId, Any],
        observation: "Observation",
        *,
        context: str = "",
        delivered: int = 0,
        incremental: bool = False,
    ) -> bool:
        """Verify the LFI invariants now; True when the state is clean.

        Violations are recorded (metrics + trace) and swallowed — the
        auditor observes the run, it does not abort it.

        ``incremental=True`` (what :meth:`on_event` passes) permits the
        cached-row shortcut.  Direct calls default to a full rebuild:
        they are ground truth, valid even against state mutated behind
        the protocol's back (where no ``route_version`` ticked).
        """
        mpda = {
            node: router
            for node, router in routers.items()
            if isinstance(router, MPDARouter)
        }
        if not mpda:
            return True
        self.checks += 1
        metrics = observation.metrics
        metrics.counter("lfi_audit.checks").inc()
        # Register the violations series up front so a clean run still
        # exports an explicit zero rather than a missing key.
        metrics.counter("lfi_audit.violations")
        started = perf_counter()
        try:
            if incremental and self._cache_matches(mpda):
                error = self._incremental_check(mpda, metrics)
            else:
                # Ground truth: rebuild everything and check everything.
                error = self._full_check(mpda)
        finally:
            metrics.histogram("lfi_audit.check_seconds").observe(
                perf_counter() - started
            )
        if error is not None:
            self.violations += 1
            self.last_error = str(error)
            metrics.counter("lfi_audit.violations").inc()
            if observation.tracer.enabled:
                observation.tracer.event(
                    "audit_violation",
                    check=context or "event",
                    error=str(error),
                    delivered=delivered,
                )
            return False
        return True

    # ------------------------------------------------------------------
    # incremental verification
    # ------------------------------------------------------------------
    def _cache_matches(self, mpda: Mapping[NodeId, MPDARouter]) -> bool:
        """True when the cache describes exactly this router population."""
        cache = self._cache
        if cache is None or len(cache.versions) != len(mpda):
            return False
        versions = cache.versions
        return all(r._uid in versions for r in mpda.values())

    def _full_check(
        self, mpda: Mapping[NodeId, MPDARouter]
    ) -> Exception | None:
        """Rebuild the cache from scratch, checking every destination."""
        cache = _SafetyCache()
        destinations: set[NodeId] = set()
        for router in mpda.values():
            contributed = set(router.successor_sets)
            cache.versions[router._uid] = router.route_version
            cache.contributed[router._uid] = contributed
            destinations.update(contributed)
            for j in contributed:
                cache.dest_refs[j] = cache.dest_refs.get(j, 0) + 1
        for j in destinations:
            feasible: dict[NodeId, float] = {}
            reported: dict[NodeId, dict[NodeId, float]] = {}
            successors: dict[NodeId, set[NodeId]] = {}
            for i, router in mpda.items():
                fd, rep, succ = _rows(router, j)
                if fd is not None:
                    feasible[i] = fd
                reported[i] = rep
                successors[i] = succ
            cache.feasible[j] = feasible
            cache.reported[j] = reported
            cache.successors[j] = successors
        self._cache = cache
        return self._check_destinations(cache, destinations)

    def _incremental_check(
        self, mpda: Mapping[NodeId, MPDARouter], metrics
    ) -> Exception | None:
        """Refresh only changed routers' rows; re-check changed rows.

        Correctness rests on two facts: a per-destination check is a
        pure function of the row maps (see
        :func:`~repro.core.mpda.check_destination`), and each row is a
        pure function of one router's state, guarded by its
        ``route_version``.  A destination none of whose rows changed
        therefore keeps its previous verdict.
        """
        cache = self._cache
        assert cache is not None
        dirty = [
            (i, router)
            for i, router in mpda.items()
            if cache.versions[router._uid] != router.route_version
        ]
        if not dirty:
            metrics.counter("lfi_audit.incremental_skips").inc()
            return self._cached_verdict(cache)

        affected: set[NodeId] = set()
        fresh: set[NodeId] = set()
        for i, router in dirty:
            uid = router._uid
            cache.versions[uid] = router.route_version
            contributed = set(router.successor_sets)
            previous = cache.contributed[uid]
            for j in contributed - previous:
                refs = cache.dest_refs.get(j, 0)
                cache.dest_refs[j] = refs + 1
                if refs == 0:
                    fresh.add(j)
            for j in previous - contributed:
                refs = cache.dest_refs[j] - 1
                if refs:
                    cache.dest_refs[j] = refs
                else:
                    del cache.dest_refs[j]
                    cache.feasible.pop(j, None)
                    cache.reported.pop(j, None)
                    cache.successors.pop(j, None)
                    cache.violating.pop(j, None)
                    fresh.discard(j)
            cache.contributed[uid] = contributed

        # A destination just contributed for the first time needs rows
        # from every router; existing destinations only from the dirty.
        for j in fresh:
            feasible: dict[NodeId, float] = {}
            reported: dict[NodeId, dict[NodeId, float]] = {}
            successors: dict[NodeId, set[NodeId]] = {}
            for i, router in mpda.items():
                fd, rep, succ = _rows(router, j)
                if fd is not None:
                    feasible[i] = fd
                reported[i] = rep
                successors[i] = succ
            cache.feasible[j] = feasible
            cache.reported[j] = reported
            cache.successors[j] = successors
            affected.add(j)

        for j in cache.dest_refs:
            if j in fresh:
                continue
            feasible = cache.feasible[j]
            reported = cache.reported[j]
            successors = cache.successors[j]
            for i, router in dirty:
                fd, rep, succ = _rows(router, j)
                if (
                    feasible.get(i) != fd
                    or reported[i] != rep
                    or successors[i] != succ
                ):
                    if fd is None:
                        feasible.pop(i, None)
                    else:
                        feasible[i] = fd
                    reported[i] = rep
                    successors[i] = succ
                    affected.add(j)

        metrics.counter("lfi_audit.destinations_checked").inc(len(affected))
        # Re-check what changed, plus anything still marked broken (its
        # verdict must be refreshed even if today's diff missed it).
        error = self._check_destinations(
            cache, affected | set(cache.violating)
        )
        if error is not None:
            return error
        return self._cached_verdict(cache)

    def _check_destinations(
        self, cache: _SafetyCache, destinations: set[NodeId]
    ) -> Exception | None:
        """Verify ``destinations`` against the cached rows; returns the
        first violation (in deterministic destination order)."""
        first: Exception | None = None
        for j in sorted(destinations, key=repr):
            try:
                check_destination(
                    j,
                    cache.feasible[j],
                    cache.reported[j],
                    cache.successors[j],
                )
            except _AUDIT_ERRORS as violation:
                cache.violating[j] = violation
                if first is None:
                    first = violation
            else:
                cache.violating.pop(j, None)
        return first

    @staticmethod
    def _cached_verdict(cache: _SafetyCache) -> Exception | None:
        """A persisting violation from an earlier sample, if any."""
        if not cache.violating:
            return None
        j = min(cache.violating, key=repr)
        return cache.violating[j]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def verdict(self) -> str:
        """"pass", "fail", or "no-data" (nothing was ever checked)."""
        if not self.checks:
            return "no-data"
        return "fail" if self.violations else "pass"

    def summary(self) -> dict[str, Any]:
        """JSON-ready audit outcome for reports and trace events."""
        return {
            "events_seen": self.events_seen,
            "sample_every": self.sample_every,
            "checks": self.checks,
            "violations": self.violations,
            "verdict": self.verdict,
            "last_error": self.last_error,
        }
