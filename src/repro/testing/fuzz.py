"""Schedule fuzzing: adversarial event sequences with per-delivery audits.

The paper proves MPDA safe and live *assuming* reliable in-order
delivery.  This harness treats both the schedule and the channel as an
adversary (the posture of Andrews et al.'s adversarial-injection model):
it generates random connected topologies, random fault profiles (loss,
duplication, reordering, delay jitter, partitions) and random event
schedules (``fail_link`` / ``restore_link`` / ``set_cost`` / timed
``partition`` interleaved with bounded message pumping), runs the real
protocol under them, and machine-checks Theorem 3 after **every**
delivery (``check_invariants=True``) plus Theorems 2/4 at quiescence
(:meth:`~repro.core.driver.ProtocolDriver.verify_converged`).

Everything is derived from integer seeds, so every case is a pure
function of its seed: a failure is captured as a JSON *replay artifact*
(topology spec + fault profile + schedule + seeds + the observed error)
and ``repro replay`` re-executes it deterministically — same schedule,
same fault draws, same failure.

With ``reliable=True`` (the default) the case runs over
:class:`~repro.core.transport.ReliableTransport`, which *enforces* the
paper's delivery model over the faulty wire: every generated case must
pass.  With ``reliable=False`` the routers face the raw
:class:`~repro.core.transport.FaultyChannel` — the paper's assumption is
deliberately broken, and the harness demonstrates that the correctness
results really do depend on it.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import asdict, dataclass, field, replace

from repro import obs
from repro.core.driver import ProtocolDriver
from repro.core.mpda import MPDARouter
from repro.core.transport import FaultyChannel, ReliableTransport, Transport
from repro.exceptions import AllocationError, ReproError
from repro.fluid.flows import Flow, TrafficMatrix
from repro.graph.generators import random_connected
from repro.graph.topologies import cairn, net1
from repro.graph.topology import Topology
from repro.policy import create_policy
from repro.sim.control import QuasiStaticConfig
from repro.sim.scenario import Scenario

#: v2: failure records embed ``causal_slice`` — the minimal causal
#: chain (ancestor events of the violating delivery) that produced the
#: rejected state.  v1 artifacts (no slice) still load and replay.
#: v3: cases carry a ``policy`` name — ``"mp"`` runs the protocol
#: driver exactly as before; any other registered routing policy runs
#: the same schedule through the policy lifecycle with the Theorem-3
#: audit after every step (the fleet's zoo-wide campaigns).  Earlier
#: versions load as ``policy="mp"``.
ARTIFACT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: Event schedule ops (JSON-serializable lists, op first).
OPS = ("fail_link", "restore_link", "set_cost", "partition", "pump")


@dataclass(frozen=True)
class FaultProfile:
    """A channel-fault configuration, serializable into artifacts."""

    loss: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    jitter: int = 3
    delay: int = 0
    seed: int = 0
    reliable: bool = True
    timeout: int = 8
    max_retries: int = 50

    def build_transport(self) -> Transport:
        channel = FaultyChannel(
            seed=self.seed,
            loss=self.loss,
            dup=self.dup,
            reorder=self.reorder,
            jitter=self.jitter,
            delay=self.delay,
        )
        if not self.reliable:
            return channel
        return ReliableTransport(
            channel, timeout=self.timeout, max_retries=self.max_retries
        )

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultProfile":
        return cls(**doc)


@dataclass(frozen=True)
class FuzzCase:
    """One fully-determined adversarial run."""

    seed: int  # the generation seed (names the artifact)
    topology: dict  # {"kind": "random", ...} or {"kind": "named", ...}
    profile: FaultProfile
    schedule: tuple[tuple, ...]  # (op, *args) events
    driver_seed: int = 0
    check_invariants: bool = True
    #: "mp" = the real MPDA exchange through the protocol driver; any
    #: other registered policy name runs the schedule through the
    #: routing-policy lifecycle instead (see :func:`run_policy_case`).
    policy: str = "mp"

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "topology": dict(self.topology),
            "profile": self.profile.as_dict(),
            "schedule": [list(event) for event in self.schedule],
            "driver_seed": self.driver_seed,
            "check_invariants": self.check_invariants,
            "policy": self.policy,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FuzzCase":
        return cls(
            seed=doc["seed"],
            topology=doc["topology"],
            profile=FaultProfile.from_dict(doc["profile"]),
            schedule=tuple(tuple(event) for event in doc["schedule"]),
            driver_seed=doc["driver_seed"],
            check_invariants=doc["check_invariants"],
            policy=doc.get("policy", "mp"),
        )


def build_topology(spec: dict) -> Topology:
    """Materialize a topology spec from an artifact."""
    kind = spec.get("kind")
    if kind == "random":
        return random_connected(
            spec["n"], extra_links=spec["extra"], seed=spec["seed"]
        )
    if kind == "named":
        factories = {"cairn": cairn, "net1": net1}
        return factories[spec["name"]]()
    raise ValueError(f"unknown topology spec {spec!r}")


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _generate_profile(rng: random.Random, reliable: bool) -> FaultProfile:
    return FaultProfile(
        loss=rng.choice([0.0, 0.05, 0.1, 0.2]),
        dup=rng.choice([0.0, 0.05, 0.1]),
        reorder=rng.choice([0.0, 0.1, 0.25]),
        jitter=rng.randint(1, 4),
        delay=rng.randint(0, 3),
        seed=rng.randrange(2**16),
        reliable=reliable,
    )


def generate_case(
    seed: int, *, reliable: bool = True, policy: str = "mp"
) -> FuzzCase:
    """A deterministic adversarial case from an integer seed.

    The schedule is generated against a stateful model of which duplex
    links are up, so every event is valid when executed in order
    (failures only on up links, restores only on down links).

    ``policy`` does not consume any randomness: the same seed yields the
    identical topology, schedule and fault profile for every policy, so
    zoo-wide campaigns compare algorithms on the *same* adversarial
    inputs.
    """
    rng = random.Random(seed)
    if rng.random() < 0.15:
        topo_spec = {"kind": "named", "name": rng.choice(["net1", "cairn"])}
    else:
        n = rng.randint(4, 8)
        max_extra = n * (n - 1) // 2 - (n - 1)
        topo_spec = {
            "kind": "random",
            "n": n,
            "extra": rng.randint(1, min(6, max_extra)),
            "seed": rng.randrange(2**16),
        }
    topo = build_topology(topo_spec)
    base_costs = topo.idle_marginal_costs()

    up = sorted(
        {tuple(sorted(ln.link_id, key=repr)) for ln in topo.links()},
        key=repr,
    )
    down: list[tuple] = []
    schedule: list[tuple] = []
    for _ in range(rng.randint(2, 6)):
        ops = ["set_cost", "pump", "partition"]
        if len(up) > 1:
            ops.append("fail_link")
        if down:
            ops.append("restore_link")
        op = rng.choice(ops)
        if op == "fail_link":
            a, b = up.pop(rng.randrange(len(up)))
            down.append((a, b))
            schedule.append(("fail_link", a, b))
        elif op == "restore_link":
            a, b = down.pop(rng.randrange(len(down)))
            up.append((a, b))
            schedule.append(("restore_link", a, b))
        elif op == "set_cost":
            a, b = up[rng.randrange(len(up))]
            head, tail = (a, b) if rng.random() < 0.5 else (b, a)
            cost = base_costs[(head, tail)] * rng.uniform(0.5, 2.5)
            schedule.append(("set_cost", head, tail, cost))
        elif op == "partition":
            a, b = up[rng.randrange(len(up))]
            schedule.append(("partition", a, b, rng.randint(5, 40)))
        else:
            schedule.append(("pump", rng.randint(0, 40)))

    return FuzzCase(
        seed=seed,
        topology=topo_spec,
        profile=_generate_profile(rng, reliable),
        schedule=tuple(schedule),
        driver_seed=rng.randrange(2**16),
        policy=policy,
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def run_case(case: FuzzCase) -> dict:
    """Execute one case; raises a :class:`ReproError` on any violation.

    Events are applied *while messages are still in flight* (each is
    followed only by however much pumping the schedule dictates), the
    network is then run to quiescence, and the converged state is
    verified against the Dijkstra oracle (Theorems 2 and 4).  With
    ``check_invariants`` on, Theorem 3 is machine-checked after every
    single delivery throughout.
    """
    topo = build_topology(case.topology)
    base_costs = topo.idle_marginal_costs()
    transport = case.profile.build_transport()
    driver = ProtocolDriver(
        topo,
        MPDARouter,
        seed=case.driver_seed,
        check_invariants=case.check_invariants,
        transport=transport,
    )
    driver.start(base_costs)
    driver.run()
    for event in case.schedule:
        op, *args = event
        if op == "fail_link":
            driver.fail_link(args[0], args[1])
        elif op == "restore_link":
            a, b = args
            driver.restore_link(a, b, base_costs[(a, b)], base_costs[(b, a)])
        elif op == "set_cost":
            head, tail, cost = args
            driver.set_costs({(head, tail): cost})
        elif op == "partition":
            a, b, hold = args
            transport.partition(a, b)
            # Pump only while frames are deliverable: the window closes
            # when the rest of the network drains, so a schedule cannot
            # starve the retransmit budget behind its own partition.
            for _ in range(hold):
                if not transport.busy_links() or not driver.step():
                    break
            transport.heal(a, b)
        elif op == "pump":
            for _ in range(args[0]):
                if not driver.step():
                    break
        else:
            raise ValueError(f"unknown schedule op {op!r}")
    driver.run()
    driver.verify_converged()
    return {
        "delivered": driver.delivered,
        "message_stats": driver.message_stats(),
        "transport": transport.stats(),
    }


# ----------------------------------------------------------------------
# policy-lifecycle cases (the zoo beyond the protocol driver)
# ----------------------------------------------------------------------
def _duplex(a, b) -> tuple:
    """The duplex pair of a directed link, in canonical order."""
    return tuple(sorted((a, b), key=repr))


def _policy_scenario(topo: Topology) -> Scenario:
    """A scenario demanding every node as a destination.

    Policies size their tables to the *active* destinations, so the
    audit gets the strongest coverage when every node carries demand.
    """
    nodes = sorted(topo.nodes, key=repr)
    flows = [
        Flow(nodes[0] if node != nodes[0] else nodes[1], node, 10.0)
        for node in nodes
    ]
    return Scenario(name="fuzz", topo=topo, traffic=TrafficMatrix(flows))


def _audit_policy(policy, topo: Topology, up: set, destinations) -> None:
    """The per-event obligations every policy owes the data plane.

    ``audit_loop_free`` checks the Theorem-3 obligation of ``loop_free``
    policies; the fraction audit checks Property 1's contract for all of
    them — fractions are a distribution over *live* physical neighbors
    (an empty mapping declares the destination unreachable).
    """
    policy.audit_loop_free()
    neighbors: dict = {node: set() for node in topo.nodes}
    for a, b in up:
        neighbors[a].add(b)
        neighbors[b].add(a)
    for dest in destinations:
        for node in topo.nodes:
            if node == dest:
                continue
            fractions = policy.fractions(node, dest)
            if not fractions:
                continue
            dead = sorted(set(fractions) - neighbors[node], key=repr)
            if dead:
                raise AllocationError(
                    f"policy {policy.name!r} splits {node!r}->{dest!r} "
                    f"over non-neighbors (or downed links): {dead!r}"
                )
            worst = min(fractions.values())
            if worst < -1e-9:
                raise AllocationError(
                    f"policy {policy.name!r} has a negative fraction "
                    f"{worst!r} at {node!r}->{dest!r}"
                )
            total = sum(fractions.values())
            if abs(total - 1.0) > 1e-6:
                raise AllocationError(
                    f"policy {policy.name!r} fractions at {node!r}->"
                    f"{dest!r} sum to {total!r}, not 1"
                )


def run_policy_case(case: FuzzCase) -> dict:
    """Drive a zoo policy's lifecycle through the case's schedule.

    The analogue of :func:`run_case` for policies without a protocol
    backend: the same generated schedule is replayed through the
    :class:`~repro.policy.base.RoutingPolicy` lifecycle — failures and
    restores as link events (or filtered long-term costs, matching the
    controller's treatment of ``handles_link_events=False``), cost
    changes as ``Tl`` updates, pumps and partition holds as ``Ts``
    ticks — with :func:`_audit_policy` machine-checked after every
    event.  Raises a :class:`ReproError` on any violation.
    """
    if case.policy == "mp":
        raise ValueError(
            "policy 'mp' cases run the real protocol (run_case)"
        )
    topo = build_topology(case.topology)
    base_costs = dict(topo.idle_marginal_costs())
    scenario = _policy_scenario(topo)
    config = QuasiStaticConfig(
        tl=8.0,
        ts=2.0,
        duration=16.0,
        warmup=4.0,
        policy=case.policy,
        seed=case.driver_seed,
        damping=0.5,
    )
    policy = create_policy(case.policy, **config.policy_params)
    policy.initialize(scenario, config)
    destinations = scenario.mean_traffic().destinations()

    costs = dict(base_costs)
    up = {_duplex(head, tail) for (head, tail) in costs}

    def live_costs() -> dict:
        return {
            link_id: cost
            for link_id, cost in costs.items()
            if _duplex(*link_id) in up
        }

    def link_event(event, a, b, cost_ab=None, cost_ba=None) -> None:
        if policy.handles_link_events:
            policy.on_link_event(event, a, b, cost_ab, cost_ba)
        else:
            policy.on_costs(live_costs())

    policy.on_costs(live_costs())
    _audit_policy(policy, topo, up, destinations)
    for event in case.schedule:
        op, *args = event
        if op == "fail_link":
            a, b = args
            up.discard(_duplex(a, b))
            link_event("down", a, b)
        elif op == "restore_link":
            a, b = args
            up.add(_duplex(a, b))
            link_event("up", a, b, base_costs[(a, b)], base_costs[(b, a)])
        elif op == "set_cost":
            head, tail, cost = args
            costs[(head, tail)] = cost
            policy.on_costs(live_costs())
        elif op in ("partition", "pump"):
            # No transport under a policy case: both ops become short-
            # timescale ticks (the network keeps measuring regardless).
            policy.on_short_costs(live_costs())
        else:
            raise ValueError(f"unknown schedule op {op!r}")
        _audit_policy(policy, topo, up, destinations)
    return {
        "events": len(case.schedule),
        "route_updates": policy.route_updates,
        "allocation_updates": policy.allocation_updates,
        "audit_checks": policy.audit_checks,
    }


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------
def examine_case(case: FuzzCase) -> dict:
    """Run a case to a structured verdict (the fleet worker's unit).

    Returns ``{"status": "pass", "metrics": {...}}`` on a clean run or
    ``{"status": "violation", "failure": {...}}`` otherwise; both arms
    are plain JSON-serializable data, deterministic for a given case.

    Protocol (``policy="mp"``) cases run under a causal-tracing
    observation (no tracer, no auditor — delivery counts and schedules
    are unchanged), so a violation's record embeds its *minimal causal
    slice*: the ancestor chain of the delivery being processed when the
    check fired.  The slice is pure deterministic data (event ids,
    links, Lamport clocks, delivered counts), normalized through JSON
    so replays compare verbatim.  Policy-lifecycle cases have no
    message exchange, hence no slice.
    """
    if case.policy != "mp":
        try:
            metrics = run_policy_case(case)
        except ReproError as error:
            return {
                "status": "violation",
                "failure": {
                    "type": type(error).__name__,
                    "message": str(error),
                },
            }
        return {"status": "pass", "metrics": metrics}
    with obs.observe(causal=True) as ob:
        try:
            metrics = run_case(case)
        except ReproError as error:
            failure = {"type": type(error).__name__, "message": str(error)}
            failure["causal_slice"] = json.loads(
                json.dumps(ob.causal.failure_slice(), default=repr)
            )
            return {"status": "violation", "failure": failure}
    return {"status": "pass", "metrics": metrics}


def check_case(case: FuzzCase) -> dict | None:
    """Run a case; the failure record, or None when it passed clean."""
    verdict = examine_case(case)
    return verdict["failure"] if verdict["status"] == "violation" else None


# ----------------------------------------------------------------------
# minimization
# ----------------------------------------------------------------------
def _schedule_valid(topo_spec: dict, schedule: tuple) -> bool:
    """Whether every event stays executable after removals.

    Dropping an event can orphan a later one (a restore of a link that
    is now up, a cost change on a link that is now down); such
    candidates would fail for bookkeeping reasons, not the bug under
    minimization, so the shrinker skips them.
    """
    topo = build_topology(topo_spec)
    up = {_duplex(*ln.link_id) for ln in topo.links()}
    down: set = set()
    for event in schedule:
        op, *args = event
        if op == "fail_link":
            pair = _duplex(args[0], args[1])
            if pair not in up:
                return False
            up.remove(pair)
            down.add(pair)
        elif op == "restore_link":
            pair = _duplex(args[0], args[1])
            if pair not in down:
                return False
            down.remove(pair)
            up.add(pair)
        elif op == "set_cost":
            if _duplex(args[0], args[1]) not in up:
                return False
    return True


#: Fault-profile knobs tried (in order) during minimization, with the
#: benign value each is driven toward.
_BENIGN_PROFILE = (
    ("dup", 0.0),
    ("reorder", 0.0),
    ("delay", 0),
    ("jitter", 1),
    ("loss", 0.0),
)


def minimize_case(
    case: FuzzCase, *, budget: int = 64
) -> tuple[FuzzCase, dict]:
    """Greedily shrink a failing case, preserving its failure *type*.

    Two passes under one re-execution budget: drop schedule events one
    at a time (restarting the scan after every successful removal, and
    skipping removals that orphan later events), then drive fault-
    profile knobs to their benign values.  Each candidate is re-run in
    full, so the result still fails with the same exception type —
    usually with a much shorter schedule and a quieter channel.

    Returns the minimized case together with its observed failure
    record (which is what the replay artifact must store: messages and
    causal slices legitimately differ from the original's).
    """
    observed = check_case(case)
    if observed is None:
        raise ValueError("minimize_case needs a failing case")
    current, current_failure = case, observed
    trials = 0

    def attempt(candidate: FuzzCase) -> dict | None:
        nonlocal trials
        trials += 1
        got = check_case(candidate)
        if got is not None and got["type"] == current_failure["type"]:
            return got
        return None

    changed = True
    while changed and trials < budget:
        changed = False
        for index in range(len(current.schedule)):
            shorter = (
                current.schedule[:index] + current.schedule[index + 1:]
            )
            if not _schedule_valid(current.topology, shorter):
                continue
            got = attempt(replace(current, schedule=shorter))
            if got is not None:
                current = replace(current, schedule=shorter)
                current_failure = got
                changed = True
                break
            if trials >= budget:
                break
    for knob, benign in _BENIGN_PROFILE:
        if trials >= budget:
            break
        if getattr(current.profile, knob) == benign:
            continue
        candidate = replace(
            current, profile=replace(current.profile, **{knob: benign})
        )
        got = attempt(candidate)
        if got is not None:
            current, current_failure = candidate, got
    return current, current_failure


# ----------------------------------------------------------------------
# artifacts and replay
# ----------------------------------------------------------------------
def write_artifact(path: str, case: FuzzCase, failure: dict) -> None:
    """Persist a failing case as a deterministic replay artifact."""
    doc = {
        "version": ARTIFACT_VERSION,
        "case": case.as_dict(),
        "failure": dict(failure),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> tuple[FuzzCase, dict]:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"artifact {path!r} has version {doc.get('version')!r}, "
            f"expected one of {_SUPPORTED_VERSIONS}"
        )
    return FuzzCase.from_dict(doc["case"]), doc["failure"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of re-executing an artifact."""

    reproduced: bool
    recorded: dict
    observed: dict | None  # None: the replay ran clean

    def render(self) -> str:
        if self.reproduced:
            return (
                "reproduced: {type}: {message}".format(**self.recorded)
            )
        observed = (
            "{type}: {message}".format(**self.observed)
            if self.observed
            else "clean run"
        )
        return (
            "NOT reproduced\n"
            "  recorded: {type}: {message}\n".format(**self.recorded)
            + f"  observed: {observed}"
        )


def replay(path: str) -> ReplayResult:
    """Re-execute an artifact; deterministic, so the recorded failure
    must come back verbatim unless the code under test changed."""
    case, recorded = load_artifact(path)
    with open(path) as fh:
        version = json.load(fh).get("version")
    observed = check_case(case)
    if observed is not None and version == 1:
        # v1 artifact: compare modulo the slice this build now records.
        observed = {
            k: v for k, v in observed.items() if k != "causal_slice"
        }
    return ReplayResult(
        reproduced=observed == recorded,
        recorded=recorded,
        observed=observed,
    )


# ----------------------------------------------------------------------
# the fuzz loop
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Summary of one fuzzing session."""

    cases: int = 0
    failures: list[dict] = field(default_factory=list)  # per failing case
    artifacts: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases, {len(self.failures)} failure(s)"
        ]
        for failure, artifact in zip(self.failures, self.artifacts):
            lines.append(
                f"  case seed {failure['seed']}: {failure['type']}: "
                f"{failure['message']}"
            )
            lines.append(f"    artifact: {artifact}")
            lines.append(f"    replay:   repro replay {artifact}")
        return "\n".join(lines)


def fuzz(
    iterations: int,
    *,
    seed: int = 0,
    reliable: bool = True,
    policy: str = "mp",
    out_dir: str = "fuzz-artifacts",
    mutate=None,
) -> FuzzReport:
    """Generate and check ``iterations`` cases; artifact every failure.

    ``mutate`` (a ``FuzzCase -> FuzzCase``) lets callers tamper with
    generated cases — the test suite uses it to deliberately break the
    delivery model and assert that artifacts replay deterministically.
    """
    report = FuzzReport()
    for index in range(iterations):
        case_seed = seed + index
        case = generate_case(case_seed, reliable=reliable, policy=policy)
        if mutate is not None:
            case = mutate(case)
        failure = check_case(case)
        report.cases += 1
        if failure is None:
            continue
        os.makedirs(out_dir, exist_ok=True)
        stem = (
            f"fuzz-case-{case_seed}"
            if case.policy == "mp"
            else f"fuzz-case-{case.policy}-{case_seed}"
        )
        artifact = os.path.join(out_dir, f"{stem}.json")
        write_artifact(artifact, case, failure)
        report.failures.append({"seed": case_seed, **failure})
        report.artifacts.append(artifact)
    return report


def unreliable(case: FuzzCase) -> FuzzCase:
    """Strip the reliable shim from a case (a ``mutate`` helper)."""
    return replace(case, profile=replace(case.profile, reliable=False))
