"""repro.testing — adversarial correctness tooling.

:mod:`repro.testing.fuzz` generates randomized event schedules
(link failures/restores, cost changes, partitions) interleaved with
configurable channel-fault profiles, runs MPDA under them with Theorem 3
machine-checked after every delivery, and — on failure — emits a replay
artifact that re-executes the exact run deterministically (the
``repro fuzz`` / ``repro replay`` CLI).
"""

from repro.testing.fuzz import (
    FaultProfile,
    FuzzCase,
    FuzzReport,
    ReplayResult,
    check_case,
    examine_case,
    fuzz,
    generate_case,
    load_artifact,
    minimize_case,
    replay,
    run_case,
    run_policy_case,
    write_artifact,
)

__all__ = [
    "FaultProfile",
    "FuzzCase",
    "FuzzReport",
    "ReplayResult",
    "check_case",
    "examine_case",
    "fuzz",
    "generate_case",
    "load_artifact",
    "minimize_case",
    "replay",
    "run_case",
    "run_policy_case",
    "write_artifact",
]
