"""The routing-policy zoo: one protocol, many algorithms.

A :class:`RoutingPolicy` owns the successor sets and split fractions for
every (node, destination) pair and exposes a uniform lifecycle to the
two-timescale controller: ``initialize`` at boot, ``on_costs`` at every
``Tl``, ``on_short_costs`` at every ``Ts``, ``on_link_event`` when the
scenario fails or restores a link, and ``routing()``/``fractions()`` on
the read side.  Policies register under a short name (``repro policies``
lists them); the controller, the figure harness, and the CLI resolve
policies through :func:`create_policy` instead of scattering mode
strings.

Importing this package populates the registry — the module imports at
the bottom are load-bearing, not cosmetic.
"""

from __future__ import annotations

from repro.policy.base import RoutingPolicy, RoutingTables
from repro.policy.registry import (
    available_policies,
    create_policy,
    policy_class,
    policy_name_for_config,
    register,
)

# Registration side effects: each module decorates its classes with
# @register at import time.
from repro.policy import backpressure as _backpressure  # noqa: E402,F401
from repro.policy import ecmp_k as _ecmp_k  # noqa: E402,F401
from repro.policy import opt as _opt  # noqa: E402,F401
from repro.policy import paper as _paper  # noqa: E402,F401

__all__ = [
    "RoutingPolicy",
    "RoutingTables",
    "available_policies",
    "create_policy",
    "policy_class",
    "policy_name_for_config",
    "register",
]
