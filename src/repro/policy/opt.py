"""Gallager's minimum-delay optimum as a registered policy.

OPT is not a two-timescale algorithm: the optimal split fractions are
computed once, offline, from the scenario's stationary mean traffic
(the paper's comparison target).  As a policy it holds those fractions
fixed — ``on_costs`` / ``on_short_costs`` are no-ops beyond the update
counters — so running it through the controller evaluates the optimal
routing under exactly the same data-plane machinery (fluid queues,
finite buffers, warmup accounting) as every rival, instead of the
special-cased evaluation that used to live in :mod:`repro.bench.figures`.

Gallager's iteration maintains loop freedom throughout (the blocking
sets forbid routing-graph cycles), so the policy claims ``loop_free``
and passes the Theorem-3 audit.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.fluid.delay import DelayModel
from repro.gallager.opt import GallagerResult, optimize
from repro.graph.shortest_paths import CostMap
from repro.graph.topology import NodeId
from repro.policy.base import RoutingPolicy, RoutingTables
from repro.policy.registry import register


@register
class OptPolicy(RoutingPolicy):
    name = "opt"
    summary = (
        "Gallager's minimum-delay optimum on stationary mean traffic "
        "(fixed fractions, the paper's comparison target)"
    )
    loop_free = True

    def __init__(
        self, *, eta: float = 0.1, max_iterations: int = 2500
    ) -> None:
        self.eta = eta
        self.max_iterations = max_iterations
        self.gallager: GallagerResult | None = None
        self._phi: dict = {}

    def initialize(self, scenario, config) -> None:
        self.topo = scenario.topo
        traffic = scenario.mean_traffic()
        self.destinations = traffic.destinations()
        # Optimize against the unbounded convex law (OPT needs true
        # gradients); the controller's data plane then evaluates the
        # fixed fractions under the same finite-buffer model as MP/SP.
        self.gallager = optimize(
            self.topo,
            traffic,
            eta=self.eta,
            max_iterations=self.max_iterations,
            delay_model=DelayModel.for_topology(self.topo),
        )
        self._phi = self.gallager.phi

    def on_costs(self, long_costs: CostMap) -> None:
        # The optimum is stationary; measured costs don't move it.
        self.route_updates += 1

    def routing(self) -> RoutingTables:
        tables: RoutingTables = {}
        for dest in self.destinations:
            tables[dest] = {
                node: sorted(
                    (k for k, f in by_dest.get(dest, {}).items() if f > 0),
                    key=repr,
                )
                for node, by_dest in self._phi.items()
                if node != dest
            }
        return tables

    def fractions(
        self, node: NodeId, destination: NodeId
    ) -> Mapping[NodeId, float]:
        return self._phi.get(node, {}).get(destination, {})

    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        return self._phi
