"""The :class:`RoutingPolicy` contract — one seam for every algorithm.

A routing policy owns the successor sets and split fractions for every
(router, destination) pair and exposes the uniform lifecycle the
two-timescale controller drives:

- :meth:`initialize` — bind to a scenario before the first epoch;
- :meth:`on_costs` — the long-term (``Tl``) operation: react to the
  window-averaged marginal link costs (recompute routes);
- :meth:`on_short_costs` — the short-term (``Ts``) operation: react to
  freshly measured local costs (adjust the traffic split);
- :meth:`on_link_event` — a directed-link failure or repair, for
  policies that maintain routes incrementally (``handles_link_events``);
  the controller otherwise replays filtered long-term costs through
  :meth:`on_costs`;
- :meth:`routing` / :meth:`fractions` / :meth:`phi` — the read side:
  successor sets per destination and the split fractions both data
  planes forward with (:meth:`fractions` makes every policy a
  :class:`~repro.netsim.node.RoutingProvider`).

The ``loop_free`` capability flag gates the Theorem-3 audit: policies
that claim it must keep every destination's successor graph acyclic at
every instant, and :meth:`audit_loop_free` (called after every route
change by the conforming implementations, and by the conformance suite)
raises :class:`~repro.exceptions.LoopError` the moment that fails.

Policies register themselves by name in :mod:`repro.policy.registry`;
``repro policies`` lists them and ``RunConfig(policy=...)`` /
``repro compare --policy ...`` select them.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping
from typing import Any

from repro.graph.shortest_paths import CostMap
from repro.graph.topology import NodeId, Topology
from repro.graph.validation import assert_loop_free

#: successor sets per destination: ``routing()[dest][node]`` = the
#: ordered successor list of ``node`` toward ``dest``.
RoutingTables = dict[NodeId, dict[NodeId, list[NodeId]]]


class RoutingPolicy(abc.ABC):
    """Base class of every pluggable routing algorithm.

    Subclasses set the class attributes, implement the lifecycle, and
    call :func:`repro.policy.registry.register` (usually as a
    decorator) to enter the zoo.
    """

    #: Registry key (``--policy`` name); empty means "do not register".
    name: str = ""
    #: One-line description for ``repro policies`` and the README table.
    summary: str = ""
    #: True when the policy guarantees instantaneously loop-free
    #: successor graphs; gates the Theorem-3/LFI audit.
    loop_free: bool = False
    #: True when the policy reacts to link failures itself (via
    #: :meth:`on_link_event`); False makes the controller replay the
    #: surviving links' long-term costs through :meth:`on_costs`.
    handles_link_events: bool = False

    #: Update counters surfaced in epoch metrics (subclasses that wrap a
    #: self-counting engine override these as properties).
    route_updates: int = 0
    allocation_updates: int = 0
    #: Theorem-3 audit bookkeeping (see :meth:`audit_loop_free`).
    audit_checks: int = 0

    # -- lifecycle ------------------------------------------------------
    @abc.abstractmethod
    def initialize(self, scenario, config) -> None:
        """Bind to ``scenario`` before the first epoch.

        ``scenario`` supplies the topology and the traffic matrix whose
        destinations the policy must route; ``config`` carries run
        parameters (seed, damping, ...).  Implementations should stash
        ``self.topo`` and ``self.destinations`` for the read side.
        """

    @abc.abstractmethod
    def on_costs(self, long_costs: CostMap) -> None:
        """The ``Tl`` operation: recompute routes from long-term costs.

        ``long_costs`` covers only usable links (the controller filters
        failed ones out).
        """

    def on_short_costs(self, short_costs: CostMap) -> None:
        """The ``Ts`` operation: adjust the split with fresh local costs.

        Default: the split does not react between route updates (true
        for static-split policies such as ECMP variants and OPT).
        """
        self.allocation_updates += 1

    def on_link_event(
        self,
        event: str,
        a: NodeId,
        b: NodeId,
        cost_ab: float | None = None,
        cost_ba: float | None = None,
    ) -> None:
        """A duplex link failed (``event="down"``) or recovered (``"up"``).

        Only called when ``handles_link_events`` is True; restores carry
        the links' long-term costs.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not handle link events "
            "(handles_link_events is False)"
        )

    # -- read side ------------------------------------------------------
    @abc.abstractmethod
    def routing(self) -> RoutingTables:
        """Successor sets per destination (the auditable view)."""

    @abc.abstractmethod
    def fractions(
        self, node: NodeId, destination: NodeId
    ) -> Mapping[NodeId, float]:
        """Split fractions of ``node`` toward ``destination``.

        Nonempty mappings sum to 1; an empty mapping means the
        destination is unreachable from ``node`` under this policy.
        """

    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        """The global split mapping for the fluid evaluator.

        Default: assembled from :meth:`fractions`; engines that already
        hold the nested structure override this for speed.
        """
        topo: Topology = self.topo
        return {
            node: {
                dest: dict(self.fractions(node, dest))
                for dest in self.destinations
                if dest != node
            }
            for node in topo.nodes
        }

    def protocol_stats(self) -> dict[str, int]:
        """Control-message counters (empty for oracle-style policies)."""
        return {}

    # -- auditing -------------------------------------------------------
    def audit_loop_free(self) -> None:
        """Verify the Theorem-3 obligation of a ``loop_free`` policy.

        Checks every destination's successor graph for cycles; raises
        :class:`~repro.exceptions.LoopError` on the first one.  No-op
        for policies that do not claim loop freedom (their graphs *may*
        contain cycles — that is exactly what the flag records).
        """
        if not self.loop_free:
            return
        for dest, successors in self.routing().items():
            assert_loop_free(successors, dest)
            self.audit_checks += 1

    # -- config hooks ---------------------------------------------------
    @classmethod
    def normalize_config(cls, config: Any) -> None:
        """Reconcile legacy config fields with this policy.

        Called by ``RunConfig`` validation when the policy is selected
        by name, so label conventions and engine parameters derived from
        legacy fields (``mode``, ``successor_limit``, ``path_rule``)
        stay consistent.  Default: nothing to reconcile.
        """
