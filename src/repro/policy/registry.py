"""The policy registry: name -> :class:`RoutingPolicy` class.

One validated lookup replaces the stringly-typed ``mode`` plumbing that
used to be smeared across the simulators: unknown names raise
:class:`~repro.exceptions.ConfigError` listing every registered policy,
so a typo'd ``--policy`` or config field fails loudly and immediately
instead of selecting a silent default.
"""

from __future__ import annotations

from repro.exceptions import ConfigError
from repro.policy.base import RoutingPolicy

_REGISTRY: dict[str, type[RoutingPolicy]] = {}


def register(cls: type[RoutingPolicy]) -> type[RoutingPolicy]:
    """Class decorator: enter ``cls`` into the zoo under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no policy name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate policy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> dict[str, type[RoutingPolicy]]:
    """All registered policies, sorted by name."""
    return dict(sorted(_REGISTRY.items()))


def policy_class(name: str) -> type[RoutingPolicy]:
    """Validated lookup: the class registered under ``name``.

    Raises:
        ConfigError: for unknown names, listing the known ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown routing policy {name!r}; known policies: {known}"
        ) from None


def create_policy(name: str, **params) -> RoutingPolicy:
    """Instantiate the policy registered under ``name``.

    ``params`` are the policy's own knobs (``k`` for ``ecmp-k``, ``eta``
    for ``opt``, ...); a mismatch raises :class:`ConfigError` naming the
    policy rather than a bare ``TypeError``.
    """
    cls = policy_class(name)
    try:
        return cls(**params)
    except TypeError as exc:
        raise ConfigError(
            f"bad parameters for policy {name!r}: {exc}"
        ) from None


def policy_name_for_config(config) -> str:
    """Derive the registry name a legacy config selects.

    The pre-registry encoding: ``mode`` picked the MPDA backend,
    ``successor_limit=1`` was the SP ablation, and ``path_rule`` chose
    the ECMP baselines.  Unknown ``mode`` strings used to be accepted
    here and rejected (or worse, ignored) deep inside the run; now they
    raise :class:`ConfigError` up front.
    """
    mode = getattr(config, "mode", "oracle")
    if mode not in ("oracle", "protocol"):
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown routing mode {mode!r} (expected 'oracle' or "
            f"'protocol'); to select an algorithm use policy=<name> "
            f"with one of: {known}"
        )
    path_rule = getattr(config, "path_rule", "lfi")
    if path_rule in ("ecmp", "ecmp-hop"):
        return path_rule
    if path_rule != "lfi":
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(
            f"unknown path rule {path_rule!r}; known policies: {known}"
        )
    if mode == "protocol":
        return "mp"
    if config.successor_limit == 1:
        return "sp"
    return "mp-oracle"
