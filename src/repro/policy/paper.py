"""The paper's own algorithms as first citizens of the policy zoo.

Each class is a thin adapter over :class:`~repro.core.router.MPRouting`
— the engine the simulators always ran — so the refactor changes *where*
the algorithm is selected (the registry) without changing a single
computed number: the ``MPRouting`` construction arguments and the
update-call sequence are exactly what the controller used to issue, and
the committed converge/packet fixtures stay byte-identical.

- ``mp`` — MPDA in protocol mode: the real message exchange, with
  instantaneous loop-free reconvergence on link events;
- ``mp-oracle`` — the converged MPDA outcome computed directly
  (Theorem 4), upgraded to the live protocol while an observability
  session wants control-plane metrics;
- ``sp`` — the paper's single-path baseline (``successor_limit=1``);
- ``ecmp`` / ``ecmp-hop`` — the OSPF-style equal-cost baselines.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.core.router import MPRouting
from repro.core.transport import FaultyChannel, ReliableTransport
from repro.exceptions import ConfigError
from repro.graph.shortest_paths import CostMap
from repro.graph.topology import NodeId
from repro.policy.base import RoutingPolicy, RoutingTables
from repro.policy.registry import register


class MPFamilyPolicy(RoutingPolicy):
    """Shared adapter: lifecycle calls forwarded to :class:`MPRouting`."""

    #: "oracle" or "protocol" — the MPRouting backend this name selects.
    mode = "oracle"
    #: "lfi" (the paper's unequal-cost sets) or an ECMP ablation rule.
    path_rule = "lfi"
    loop_free = True

    def __init__(
        self,
        *,
        successor_limit: int | None = None,
        loss: float = 0.0,
        transport_seed: int = 7,
    ) -> None:
        self._successor_limit = successor_limit
        #: Control-plane loss rate for protocol mode: the MPDA exchange
        #: runs over ReliableTransport(FaultyChannel(loss)) — the
        #: paper's delivery model enforced over a lossy wire, costing
        #: retransmissions, not correctness.  Configured through
        #: ``policy_params={"loss": ...}`` (JSON-serializable, so sweep
        #: cells pickle cleanly).
        self._loss = loss
        self._transport_seed = transport_seed
        self._mpr: MPRouting | None = None

    # -- lifecycle ------------------------------------------------------
    def initialize(self, scenario, config) -> None:
        self.topo = scenario.topo
        self.destinations = scenario.mean_traffic().destinations()
        limit = (
            self._successor_limit
            if self._successor_limit is not None
            else config.successor_limit
        )
        mode = self._effective_mode()
        transport = None
        if self._loss > 0.0:
            if mode != "protocol":
                raise ConfigError(
                    f"policy {self.name!r}: control-plane loss needs the "
                    "real message exchange (protocol mode); oracle mode "
                    "exchanges no messages"
                )
            transport = ReliableTransport(
                FaultyChannel(seed=self._transport_seed, loss=self._loss)
            )
        self._mpr = MPRouting(
            scenario.topo,
            self.destinations,
            successor_limit=limit,
            mode=mode,
            path_rule=self.path_rule,
            damping=config.damping,
            seed=config.seed,
            transport=transport,
        )
        self.handles_link_events = mode == "protocol"

    def _effective_mode(self) -> str:
        """Upgrade oracle runs to the live protocol while observing.

        Control-plane metrics (LSU counts, ACTIVE phases, ACK
        round-trips) only exist when the real MPDA exchange runs;
        Theorem 4 makes both backends converge to the same successor
        sets, so results match.  The upgrade is limited to the paper's
        LFI rule (the ECMP ablations have no protocol backend).
        """
        ob = obs.current()
        if (
            ob is not None
            and ob.protocol_control_plane
            and self.mode == "oracle"
            and self.path_rule == "lfi"
        ):
            return "protocol"
        return self.mode

    def on_costs(self, long_costs: CostMap) -> None:
        self._mpr.update_routes(long_costs)

    def on_short_costs(self, short_costs: CostMap) -> None:
        self._mpr.adjust_allocation(short_costs)

    def on_link_event(
        self,
        event: str,
        a: NodeId,
        b: NodeId,
        cost_ab: float | None = None,
        cost_ba: float | None = None,
    ) -> None:
        if event == "down":
            self._mpr.fail_link(a, b)
        elif event == "up":
            self._mpr.restore_link(a, b, cost_ab, cost_ba)
        else:
            raise ValueError(f"unknown link event {event!r}")

    # -- read side ------------------------------------------------------
    def routing(self) -> RoutingTables:
        return {
            dest: self._mpr.successors(dest) for dest in self.destinations
        }

    def fractions(
        self, node: NodeId, destination: NodeId
    ) -> Mapping[NodeId, float]:
        return self._mpr.fractions(node, destination)

    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        return self._mpr.phi()

    def protocol_stats(self) -> dict[str, int]:
        return self._mpr.protocol_stats()

    # -- counters delegated to the engine -------------------------------
    @property
    def route_updates(self) -> int:
        return self._mpr.route_updates if self._mpr is not None else 0

    @property
    def allocation_updates(self) -> int:
        return self._mpr.allocation_updates if self._mpr is not None else 0


@register
class MPProtocolPolicy(MPFamilyPolicy):
    name = "mp"
    summary = (
        "MPDA multipath (protocol mode): the real message exchange, "
        "loop-free at every instant"
    )
    mode = "protocol"

    @classmethod
    def normalize_config(cls, config) -> None:
        config.mode = "protocol"


@register
class MPOraclePolicy(MPFamilyPolicy):
    name = "mp-oracle"
    summary = (
        "MPDA multipath (oracle mode): converged Theorem-4 successor "
        "sets computed directly"
    )
    mode = "oracle"

    @classmethod
    def normalize_config(cls, config) -> None:
        config.mode = "oracle"


@register
class SPPolicy(MPFamilyPolicy):
    name = "sp"
    summary = (
        "single-path baseline: best successor only (the paper's SP, "
        "an EIGRP/OSPF stand-in)"
    )
    mode = "oracle"

    def __init__(self) -> None:
        super().__init__(successor_limit=1)

    @classmethod
    def normalize_config(cls, config) -> None:
        if config.successor_limit not in (None, 1):
            raise ConfigError(
                "policy 'sp' is the successor_limit=1 baseline; got "
                f"successor_limit={config.successor_limit!r}"
            )
        config.mode = "oracle"
        config.successor_limit = 1


@register
class ECMPPolicy(MPFamilyPolicy):
    name = "ecmp"
    summary = (
        "equal-cost multipath over measured costs (OSPF's rule; "
        "degenerates to SP under continuous marginal delays)"
    )
    mode = "oracle"
    path_rule = "ecmp"

    @classmethod
    def normalize_config(cls, config) -> None:
        config.mode = "oracle"
        if hasattr(config, "path_rule"):
            config.path_rule = cls.path_rule
        elif cls.path_rule != "lfi":
            raise ConfigError(
                f"policy {cls.name!r} needs a fluid-plane config "
                "(QuasiStaticConfig) carrying path_rule"
            )


@register
class ECMPHopPolicy(ECMPPolicy):
    name = "ecmp-hop"
    summary = (
        "hop-count ECMP (realistic OSPF): even split over equal-hop "
        "paths, blind to congestion"
    )
    path_rule = "ecmp-hop"
