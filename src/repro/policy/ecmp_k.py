"""``ecmp-k``: equal split over the k shortest paths.

The modern-router rival the ROADMAP calls for: at every route update,
each router computes the ``k`` shortest loopless paths to each
destination (Yen's algorithm over the measured long-term costs) and
splits traffic equally over the paths — a first hop shared by two of
the three paths carries two thirds of the flow.  The split is frozen
between route updates (``on_short_costs`` is a no-op), exactly like a
real ECMP FIB.

One correction is required to forward this hop-by-hop: the *union* of
per-source k-shortest first hops is not consistent — router A's
2nd-shortest path may enter router B while B's own k-set sends traffic
back through A (CAIRN's ``tis``/``udel`` pair does exactly this at
k=3).  Deployed multipath routers solve it the same way we do: a next
hop is only installed if it is *downhill*, i.e. strictly closer to the
destination in shortest-path distance (EIGRP's feasibility condition,
OSPF/IS-IS loop-free alternates).  Paths whose first hop fails the
filter lose their share; the shortest path's own first hop is always
downhill, so every reachable destination keeps at least one hop.  The
filtered graph follows a strictly decreasing potential, hence
``loop_free = True`` and the Theorem-3 audit applies.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro import obs
from repro.exceptions import ConfigError
from repro.graph.shortest_paths import (
    CostMap,
    bellman_ford,
    k_shortest_paths,
)
from repro.graph.topology import NodeId
from repro.policy.base import RoutingPolicy, RoutingTables
from repro.policy.registry import register


@register
class ECMPKPolicy(RoutingPolicy):
    name = "ecmp-k"
    summary = (
        "equal split over the k shortest paths (Yen), downhill-filtered "
        "for hop-by-hop consistency, recomputed at Tl"
    )
    loop_free = True

    def __init__(self, *, k: int = 3) -> None:
        if not isinstance(k, int) or k < 1:
            raise ConfigError(
                f"ecmp-k needs an integer k >= 1, got {k!r}"
            )
        self.k = k
        self._successors: RoutingTables = {}
        self._fractions: dict[NodeId, dict[NodeId, dict[NodeId, float]]] = {}

    def initialize(self, scenario, config) -> None:
        self.topo = scenario.topo
        self.destinations = scenario.mean_traffic().destinations()

    def on_costs(self, long_costs: CostMap) -> None:
        self.route_updates += 1
        ob = obs.current()
        with obs.phase(ob, "routing.update_routes"):
            self._recompute(long_costs)
        self.audit_loop_free()

    def _recompute(self, costs: CostMap) -> None:
        nodes = list(self.topo.nodes)
        successors: RoutingTables = {}
        fractions: dict[NodeId, dict[NodeId, dict[NodeId, float]]] = {
            node: {} for node in nodes
        }
        for dest in self.destinations:
            dist = bellman_ford(costs, dest, nodes=nodes)
            by_node: dict[NodeId, list[NodeId]] = {}
            for node in nodes:
                if node == dest:
                    by_node[node] = []
                    continue
                paths = k_shortest_paths(
                    costs, node, dest, self.k, nodes=nodes
                )
                counts: dict[NodeId, int] = {}
                for path in paths:
                    hop = path[1]
                    # Downhill filter: only strictly
                    # distance-decreasing first hops forward
                    # consistently hop-by-hop.
                    if dist.get(hop, float("inf")) < dist.get(
                        node, float("inf")
                    ):
                        counts[hop] = counts.get(hop, 0) + 1
                hops = sorted(counts, key=repr)
                by_node[node] = hops
                if counts:
                    total = sum(counts.values())
                    fractions[node][dest] = {
                        hop: counts[hop] / total for hop in hops
                    }
                else:
                    fractions[node][dest] = {}
            successors[dest] = by_node
        self._successors = successors
        self._fractions = fractions

    def routing(self) -> RoutingTables:
        return {
            dest: {node: list(succ) for node, succ in by_node.items()}
            for dest, by_node in self._successors.items()
        }

    def fractions(
        self, node: NodeId, destination: NodeId
    ) -> Mapping[NodeId, float]:
        return self._fractions.get(node, {}).get(destination, {})

    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        return self._fractions
