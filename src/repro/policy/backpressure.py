"""``backpressure-lr``: loop-free backpressure over a link-reversal DAG.

The competitor from Rai, Paschos & Li, *Loop-Free Backpressure Routing
Using Link-Reversal Algorithms* (PAPERS.md): classic backpressure
explores every direction (and so loops); constraining it to a
destination-oriented DAG keeps it loop-free, and **link reversal**
(Gafni–Bertsekas full reversal) repairs the DAG after failures without
any global recomputation.

Per destination the policy keeps a *height* per node — initialized from
the boot shortest-path distances, with the node rank as tie-break, so
heights are totally ordered and every link points downhill: a strictly
acyclic routing graph.  When a node loses its last downhill link (a
failure, or a neighbor's reversal), it reverses: raises its height above
all its neighbors, turning every incident link outward.  Reversals
cascade deterministically (rank-ordered worklist) and terminate within
the destination's connected component; nodes cut off from the
destination keep an empty successor set until links return.

The backpressure half lives in the split: at every ``Ts`` the fractions
over the current downhill neighbors are re-weighted by the inverse of
the freshly measured marginal link delays, pushing traffic away from
congested links — the queue-differential pressure signal, with marginal
delay as the congestion proxy this simulator measures.  The DAG itself
never chases costs; that topology-only maintenance is the algorithm's
defining trade-off against MPDA's cost-driven successor sets, and the
comparison harness quantifies it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Mapping

from repro import obs
from repro.exceptions import RoutingError
from repro.graph.shortest_paths import CostMap, bellman_ford, rank_nodes
from repro.graph.topology import NodeId
from repro.policy.base import RoutingPolicy, RoutingTables
from repro.policy.registry import register

#: A node's height: (level, rank).  Ranks are unique, so heights are a
#: total order and every oriented link graph is automatically acyclic.
Height = tuple[float, int]


@register
class BackpressureLRPolicy(RoutingPolicy):
    name = "backpressure-lr"
    summary = (
        "loop-free backpressure on a link-reversal DAG (Gafni-Bertsekas "
        "full reversal; Rai/Paschos/Li), inverse-delay split at Ts"
    )
    loop_free = True
    handles_link_events = True

    def __init__(self) -> None:
        self._heights: dict[NodeId, dict[NodeId, Height]] | None = None
        self._rank: dict[NodeId, int] = {}
        self._down: set[tuple[NodeId, NodeId]] = set()
        self._costs: dict = {}
        self._short: dict = {}
        self._fractions: dict[NodeId, dict[NodeId, dict[NodeId, float]]] = {}
        self.reversals = 0

    def initialize(self, scenario, config) -> None:
        self.topo = scenario.topo
        self.destinations = scenario.mean_traffic().destinations()
        self._rank = rank_nodes(self.topo.nodes)

    # -- lifecycle ------------------------------------------------------
    def on_costs(self, long_costs: CostMap) -> None:
        self.route_updates += 1
        ob = obs.current()
        with obs.phase(ob, "routing.update_routes"):
            self._costs = dict(long_costs)
            if self._heights is None:
                self._boot_heights(long_costs)
            self._recompute_fractions()
        self.audit_loop_free()

    def on_short_costs(self, short_costs: CostMap) -> None:
        self.allocation_updates += 1
        self._short = dict(short_costs)
        self._recompute_fractions()

    def on_link_event(
        self,
        event: str,
        a: NodeId,
        b: NodeId,
        cost_ab: float | None = None,
        cost_ba: float | None = None,
    ) -> None:
        self.route_updates += 1
        pair = self._pair(a, b)
        if event == "down":
            self._down.add(pair)
            self._costs.pop((a, b), None)
            self._costs.pop((b, a), None)
            self._short.pop((a, b), None)
            self._short.pop((b, a), None)
            for dest in self.destinations:
                # The failure may have taken some node's last downhill
                # link; cascade reversals until the DAG is
                # destination-oriented again.
                self._maintain(dest, seeds=(a, b))
        elif event == "up":
            self._down.discard(pair)
            self._costs[(a, b)] = cost_ab
            self._costs[(b, a)] = cost_ba
            # New links only *add* downhill edges (heights are a total
            # order), so no reversal can be needed — but nodes that were
            # stranded may now reach the DAG again.
            for dest in self.destinations:
                self._maintain(dest, seeds=(a, b))
        else:
            raise ValueError(f"unknown link event {event!r}")
        self._recompute_fractions()
        self.audit_loop_free()

    # -- the link-reversal DAG ------------------------------------------
    def _pair(self, a: NodeId, b: NodeId) -> tuple[NodeId, NodeId]:
        return (a, b) if repr(a) <= repr(b) else (b, a)

    def _usable(self, a: NodeId, b: NodeId) -> bool:
        return self._pair(a, b) not in self._down

    def _boot_heights(self, costs: CostMap) -> None:
        """Initial heights: boot shortest-path levels, rank tie-break."""
        self._heights = {}
        nodes = list(self.topo.nodes)
        for dest in self.destinations:
            dist = bellman_ford(costs, dest, nodes=nodes)
            self._heights[dest] = {
                node: (dist.get(node, float("inf")), self._rank[node])
                for node in nodes
            }
            self._heights[dest][dest] = (0.0, self._rank[dest])
            self._maintain(dest)

    def _downhill(self, dest: NodeId, node: NodeId) -> list[NodeId]:
        """Usable neighbors strictly below ``node`` in the height order."""
        height = self._heights[dest]
        own = height[node]
        return sorted(
            (
                nbr
                for nbr in self.topo.neighbors(node)
                if self._usable(node, nbr) and height[nbr] < own
            ),
            key=self._rank.__getitem__,
        )

    def _component(self, dest: NodeId) -> set[NodeId]:
        """Nodes connected to ``dest`` over the usable (duplex) links."""
        seen = {dest}
        frontier = deque([dest])
        while frontier:
            node = frontier.popleft()
            for nbr in self.topo.neighbors(node):
                if nbr not in seen and self._usable(node, nbr):
                    seen.add(nbr)
                    frontier.append(nbr)
        return seen

    def _maintain(self, dest: NodeId, seeds=()) -> None:
        """Gafni-Bertsekas full reversal until ``dest``-oriented.

        Every node in the destination's component except the destination
        must keep at least one downhill link.  A node that lost its last
        one raises its height above all neighbors (full reversal), which
        may strand a neighbor in turn; the worklist drains in
        deterministic rank order.  Within a connected component this
        terminates (Gafni-Bertsekas); the budget is a defense against
        bugs, not partitions — stranded nodes are excluded up front.
        """
        height = self._heights[dest]
        component = self._component(dest)
        pending = sorted(
            (n for n in component if n != dest),
            key=self._rank.__getitem__,
        )
        queue = deque(pending)
        queued = set(pending)
        budget = 8 * len(component) ** 2 + 64
        while queue:
            node = queue.popleft()
            queued.discard(node)
            if node == dest or self._downhill(dest, node):
                continue
            budget -= 1
            if budget < 0:
                raise RoutingError(
                    f"link reversal failed to converge toward {dest!r}"
                )
            neighbors = [
                nbr
                for nbr in self.topo.neighbors(node)
                if self._usable(node, nbr)
            ]
            if not neighbors:
                continue  # fully stranded; nothing to reverse over
            top = max(height[nbr][0] for nbr in neighbors)
            height[node] = (top + 1.0, self._rank[node])
            self.reversals += 1
            for nbr in neighbors:
                # The reversal may have taken *their* last downhill link.
                if nbr != dest and nbr not in queued:
                    queue.append(nbr)
                    queued.add(nbr)

    # -- the backpressure split -----------------------------------------
    def _link_cost(self, node: NodeId, nbr: NodeId) -> float:
        cost = self._short.get((node, nbr))
        if cost is None:
            cost = self._costs.get((node, nbr), 1.0)
        return max(cost, 1e-12)

    def _recompute_fractions(self) -> None:
        fractions: dict[NodeId, dict[NodeId, dict[NodeId, float]]] = {
            node: {} for node in self.topo.nodes
        }
        for dest in self.destinations:
            for node in self.topo.nodes:
                if node == dest:
                    continue
                outs = self._downhill(dest, node)
                if not outs:
                    fractions[node][dest] = {}
                    continue
                weights = {
                    nbr: 1.0 / self._link_cost(node, nbr) for nbr in outs
                }
                total = sum(weights.values())
                fractions[node][dest] = {
                    nbr: weight / total for nbr, weight in weights.items()
                }
        self._fractions = fractions

    # -- read side ------------------------------------------------------
    def routing(self) -> RoutingTables:
        tables: RoutingTables = {}
        for dest in self.destinations:
            tables[dest] = {
                node: ([] if node == dest else self._downhill(dest, node))
                for node in self.topo.nodes
            }
        return tables

    def fractions(
        self, node: NodeId, destination: NodeId
    ) -> Mapping[NodeId, float]:
        return self._fractions.get(node, {}).get(destination, {})

    def phi(self) -> dict[NodeId, dict[NodeId, dict[NodeId, float]]]:
        return self._fractions

    def protocol_stats(self) -> dict[str, int]:
        return {"reversals": self.reversals}
