"""Result containers for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.units import ms


@dataclass
class EpochRecord:
    """One measurement epoch of a quasi-static run."""

    time: float
    total_delay: float
    average_delay: float
    flow_delays: dict[str, float]
    max_utilization: float
    #: Optional lightweight per-epoch observability readings (route
    #: update and allocation counters so far); populated only when an
    #: observation is active.
    metrics: dict[str, float] | None = None


@dataclass
class RunResult:
    """A completed run: the epoch series plus identifying metadata.

    ``label`` follows the paper's plot-key convention, e.g.
    ``MP-TL-10-TS-2`` or ``SP-TL-10``.
    """

    label: str
    scenario: str
    records: list[EpochRecord] = field(default_factory=list)
    warmup: float = 0.0
    #: Which data plane produced the records ("fluid" / "packet"; ""
    #: for results built outside the controller, e.g. OPT).
    plane: str = ""
    protocol_stats: dict[str, int] = field(default_factory=dict)
    #: Snapshot of the active observation at run end (``{"metrics": ...,
    #: "timings": ...}``); ``None`` when observability was disabled.
    metrics: dict | None = None

    def _steady(self) -> list[EpochRecord]:
        steady = [r for r in self.records if r.time >= self.warmup]
        if not steady:
            raise SimulationError(
                f"run {self.label!r} has no epochs past warmup={self.warmup!r}"
            )
        return steady

    def mean_flow_delays(self) -> dict[str, float]:
        """Per-flow delay averaged over post-warmup epochs (seconds).

        Flows absent in some epochs (bursty workloads) average over the
        epochs in which they were active.
        """
        sums: dict[str, float] = {}
        counts: dict[str, int] = {}
        for record in self._steady():
            for name, delay in record.flow_delays.items():
                sums[name] = sums.get(name, 0.0) + delay
                counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}

    def mean_flow_delays_ms(self) -> dict[str, float]:
        """Per-flow delays in milliseconds — the figures' y-axis."""
        return {k: ms(v) for k, v in self.mean_flow_delays().items()}

    def mean_average_delay(self) -> float:
        """Network-wide average per-packet delay (seconds), time-averaged."""
        steady = self._steady()
        return sum(r.average_delay for r in steady) / len(steady)

    def mean_total_delay(self) -> float:
        """Time-averaged :math:`D_T`."""
        steady = self._steady()
        return sum(r.total_delay for r in steady) / len(steady)

    def peak_utilization(self) -> float:
        return max(r.max_utilization for r in self._steady())

    def delay_series(self) -> list[tuple[float, float]]:
        """(time, network average delay) — for oscillation inspection."""
        return [(r.time, r.average_delay) for r in self.records]
