"""The quasi-static (fluid) simulator — the engine behind the figures.

Implements the paper's two-timescale update discipline over the fluid
data plane:

- every short interval ``Ts`` the routers measure marginal link delays
  for the *current* flows and run the AH allocation heuristic (a purely
  local computation);
- every long interval ``Tl`` the measured costs (averaged over the
  window, as a real router would) are flooded, routes are recomputed
  (MPDA's converged sets, or the live protocol), and IH re-seeds any
  allocation whose successor set changed.

Within each epoch the network is evaluated analytically with the same
M/M/1 law the paper's cost function assumes, so route-flapping and load
balancing play out exactly as in a packet simulation, minus the
sampling noise — the shapes the paper's figures report (who wins, by
what factor, what Tl does) are properties of these dynamics.

``successor_limit=1`` gives the paper's SP baseline; :func:`run_opt`
gives the OPT reference point, valid for stationary traffic only (as the
paper stresses).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.router import MPRouting
from repro.exceptions import SimulationError
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import evaluate, flow_delays, link_flows
from repro.fluid.queues import FluidQueues
from repro.gallager.opt import GallagerResult, optimize
from repro.graph.topology import LinkId
from repro.sim.results import EpochRecord, RunResult
from repro.sim.scenario import Scenario


@dataclass
class QuasiStaticConfig:
    """Parameters of a quasi-static run.

    Attributes:
        tl: long-term (route) update interval, seconds.
        ts: short-term (allocation) update interval, seconds.
        duration: simulated time.
        warmup: epochs before this time are excluded from averages.
        successor_limit: None = MP, 1 = SP, other = ablation.
        mode: "oracle" (converged MPDA sets) or "protocol" (real MPDA).
        damping: AH step damping.
        seed: protocol-mode delivery interleaving seed.
        queue_limit: per-link output buffer, packets; caps what a packet
            can experience during overload epochs (None = infinite).
    """

    tl: float = 10.0
    ts: float = 2.0
    duration: float = 200.0
    warmup: float = 40.0
    successor_limit: int | None = None
    mode: str = "oracle"
    #: "lfi" (the paper's unequal-cost multipath) or "ecmp" (OSPF's
    #: equal-cost-only baseline).
    path_rule: str = "lfi"
    damping: float = 1.0
    seed: int = 0
    queue_limit: float | None = 100.0
    #: Weight of the newest Tl window in the long-term cost EWMA.  1.0
    #: uses the raw window measurement; smaller values smooth the costs
    #: across windows, damping route flapping the way a real router's
    #: long-interval averaging does.
    cost_smoothing: float = 0.5

    def __post_init__(self) -> None:
        if self.ts <= 0 or self.tl <= 0:
            raise SimulationError("Tl and Ts must be positive")
        if self.tl < self.ts:
            raise SimulationError(
                f"Tl ({self.tl}) must be at least Ts ({self.ts}); the paper "
                "requires Tl to be several times longer"
            )
        ratio = self.tl / self.ts
        if abs(ratio - round(ratio)) > 1e-9:
            raise SimulationError(
                f"Tl ({self.tl}) must be an integer multiple of Ts ({self.ts})"
            )
        if self.duration <= self.warmup:
            raise SimulationError("duration must exceed warmup")

    @property
    def label(self) -> str:
        """The paper's plot-key convention (MP-TL-x-TS-y / SP-TL-x)."""
        if self.successor_limit == 1:
            return f"SP-TL-{self.tl:g}"
        if self.path_rule == "ecmp":
            return f"ECMP-TL-{self.tl:g}-TS-{self.ts:g}"
        if self.path_rule == "ecmp-hop":
            return "ECMP-HOP"
        prefix = "MP" if self.successor_limit is None else (
            f"MP{self.successor_limit}"
        )
        return f"{prefix}-TL-{self.tl:g}-TS-{self.ts:g}"


def run_quasi_static(
    scenario: Scenario, config: QuasiStaticConfig
) -> RunResult:
    """Run MP (or SP) through the two-timescale discipline.

    Returns:
        A :class:`RunResult` whose per-flow means reproduce one curve of
        the paper's figures.
    """
    topo = scenario.topo
    model = DelayModel.for_topology(topo, queue_limit=config.queue_limit)
    destinations = scenario.mean_traffic().destinations()
    ob = obs.current()
    routing = MPRouting(
        topo,
        destinations,
        successor_limit=config.successor_limit,
        mode=_effective_mode(config, scenario, ob),
        path_rule=config.path_rule,
        damping=config.damping,
        seed=config.seed,
    )

    # Boot: no measurements yet, so paths come from idle marginal costs,
    # which also seed the long-term cost average.
    if ob is not None:
        ob.sim_time = 0.0
    boot_costs = topo.idle_marginal_costs()
    links_down = scenario.links_down_at(0.0)
    routing.update_routes(_without(boot_costs, links_down))

    result = RunResult(
        label=config.label, scenario=scenario.name, warmup=config.warmup
    )
    epochs_per_tl = round(config.tl / config.ts)
    queues = FluidQueues(model, config.queue_limit)
    window_costs: dict[LinkId, float] = {}
    window_epochs = 0
    long_costs: dict[LinkId, float] = dict(boot_costs)

    time = 0.0
    epoch_index = 0
    while time < config.duration:
        if ob is not None:
            # Stamp the shared sim clock so protocol-driver trace events
            # fired inside update_routes carry this epoch's time.
            ob.sim_time = time
        # Topology events: failure detection is immediate in MPDA (an
        # adjacent-link event, not a Tl timer), so routes react at the
        # epoch where the outage starts/ends.
        now_down = scenario.links_down_at(time)
        if now_down != links_down:
            for link_id in now_down - links_down:
                queues.drop_link(link_id)
            links_down = now_down
            routing.update_routes(_without(long_costs, links_down))

        traffic = scenario.traffic_at(time)
        with obs.phase(ob, "fluid.epoch"):
            flows = link_flows(routing.phi(), traffic)
            per_unit = queues.step(flows, config.ts)
            total_delay = sum(
                flow * per_unit[link_id] for link_id, flow in flows.items()
            )
            total_rate = traffic.total_rate()
            record = EpochRecord(
                time=time,
                total_delay=total_delay,
                average_delay=(
                    total_delay / total_rate if total_rate > 0 else 0.0
                ),
                flow_delays=flow_delays(routing.phi(), traffic, per_unit),
                max_utilization=max(
                    (
                        model[link_id].utilization(flow)
                        for link_id, flow in flows.items()
                    ),
                    default=0.0,
                ),
            )
        if ob is not None:
            record.metrics = {
                "route_updates": float(routing.route_updates),
                "allocation_updates": float(routing.allocation_updates),
            }
            if ob.tracer.enabled:
                ob.tracer.event(
                    "epoch",
                    time=time,
                    run=config.label,
                    avg_delay=record.average_delay,
                    max_utilization=record.max_utilization,
                )
        result.records.append(record)

        # Measurements at the end of the epoch.
        short_costs = queues.costs(flows, per_unit)
        for link_id, cost in short_costs.items():
            window_costs[link_id] = window_costs.get(link_id, 0.0) + cost
        window_epochs += 1

        time += config.ts
        epoch_index += 1
        if epoch_index % epochs_per_tl == 0:
            measured = {
                link_id: total / window_epochs
                for link_id, total in window_costs.items()
            }
            alpha = config.cost_smoothing
            if alpha >= 1.0:
                long_costs = measured
            else:
                long_costs = {
                    link_id: alpha * measured[link_id]
                    + (1.0 - alpha) * long_costs[link_id]
                    for link_id in measured
                }
            routing.update_routes(_without(long_costs, links_down))
            window_costs = {}
            window_epochs = 0
        else:
            routing.adjust_allocation(_without(short_costs, links_down))

    result.protocol_stats = routing.protocol_stats()
    if ob is not None:
        ob.sim_time = None
        result.metrics = ob.snapshot()
    return result


def _effective_mode(
    config: QuasiStaticConfig, scenario: Scenario, ob
) -> str:
    """Upgrade oracle runs to the live protocol while observing.

    Control-plane metrics (LSU counts, ACTIVE phases, ACK round-trips)
    only exist when the real MPDA exchange runs; Theorem 4 makes both
    backends converge to the same successor sets, so results match.
    The upgrade is limited to the paper's LFI rule on stable topologies
    (the oracle handles outages by recomputing over the surviving links,
    which the protocol backend models differently).
    """
    if (
        ob is not None
        and ob.protocol_control_plane
        and config.mode == "oracle"
        and config.path_rule == "lfi"
        and not getattr(scenario, "outages", None)
    ):
        return "protocol"
    return config.mode


def _without(costs, links_down):
    """A cost map with failed links removed (routers cannot use them)."""
    if not links_down:
        return costs
    return {
        link_id: cost
        for link_id, cost in costs.items()
        if link_id not in links_down
    }


def run_opt(
    scenario: Scenario,
    *,
    eta: float = 0.1,
    max_iterations: int = 3000,
    queue_limit: float | None = 100.0,
) -> tuple[RunResult, GallagerResult]:
    """Gallager's OPT on the scenario's stationary (mean) traffic.

    Optimization runs against the unbounded convex law (OPT needs true
    gradients); the resulting routing is then *evaluated* with the same
    finite-buffer model the MP/SP runs use, so delays are comparable.

    Returns both a single-record :class:`RunResult` (for uniform
    reporting next to MP/SP runs) and the raw optimizer result.
    """
    topo = scenario.topo
    traffic = scenario.mean_traffic()
    ob = obs.current()
    gallager = optimize(
        topo,
        traffic,
        eta=eta,
        max_iterations=max_iterations,
        delay_model=DelayModel.for_topology(topo),
    )
    model = DelayModel.for_topology(topo, queue_limit=queue_limit)
    evaluation = evaluate(topo, gallager.phi, traffic, model)
    result = RunResult(label="OPT", scenario=scenario.name, warmup=0.0)
    result.records.append(
        EpochRecord(
            time=0.0,
            total_delay=evaluation.total_delay,
            average_delay=evaluation.average_delay,
            flow_delays=dict(evaluation.flow_delays),
            max_utilization=evaluation.max_utilization,
        )
    )
    if ob is not None:
        result.metrics = ob.snapshot()
    return result, gallager
