"""The quasi-static (fluid) runner — now a thin plane adapter.

The two-timescale discipline itself lives in
:mod:`repro.sim.control`; this module keeps the historical entry point
:func:`run_quasi_static` (a deprecated shim over
:func:`repro.sim.control.run` with the fluid plane) and the OPT
evaluation :func:`run_opt`, which is not a two-timescale run at all —
Gallager's optimum is computed once on the stationary traffic.
"""

from __future__ import annotations

from repro import obs
from repro.deprecation import warn_once
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import evaluate
from repro.gallager.opt import GallagerResult, optimize
from repro.sim.control import QuasiStaticConfig, run
from repro.sim.results import EpochRecord, RunResult
from repro.sim.scenario import Scenario

__all__ = ["QuasiStaticConfig", "run_quasi_static", "run_opt"]

# Deprecation is announced once per process, not once per call — sweeps
# invoke the shim hundreds of times and the warning would drown output.
# The pid-keyed registry in repro.deprecation keeps forked fleet workers
# honest (a fresh process warns again) and resettable per fleet cell.
def _warn_once() -> None:
    warn_once(
        "sim.runner.run_quasi_static",
        "run_quasi_static is deprecated; call repro.sim.control.run "
        "(the data plane follows the config type, the algorithm the "
        "config's policy name)",
        stacklevel=4,
    )


def run_quasi_static(
    scenario: Scenario, config: QuasiStaticConfig
) -> RunResult:
    """Run MP (or SP) through the two-timescale discipline (fluid plane).

    Deprecated shim: new code should call :func:`repro.sim.control.run`,
    which resolves the routing policy from the registry and selects the
    data plane from the config type.

    Returns:
        A :class:`RunResult` whose per-flow means reproduce one curve of
        the paper's figures.
    """
    _warn_once()
    return run(scenario, config)


def run_opt(
    scenario: Scenario,
    *,
    eta: float = 0.1,
    max_iterations: int = 3000,
    queue_limit: float | None = 100.0,
) -> tuple[RunResult, GallagerResult]:
    """Gallager's OPT on the scenario's stationary (mean) traffic.

    Optimization runs against the unbounded convex law (OPT needs true
    gradients); the resulting routing is then *evaluated* with the same
    finite-buffer model the MP/SP runs use, so delays are comparable.

    Returns both a single-record :class:`RunResult` (for uniform
    reporting next to MP/SP runs) and the raw optimizer result.
    """
    topo = scenario.topo
    traffic = scenario.mean_traffic()
    ob = obs.current()
    gallager = optimize(
        topo,
        traffic,
        eta=eta,
        max_iterations=max_iterations,
        delay_model=DelayModel.for_topology(topo),
    )
    model = DelayModel.for_topology(topo, queue_limit=queue_limit)
    evaluation = evaluate(topo, gallager.phi, traffic, model)
    result = RunResult(label="OPT", scenario=scenario.name, warmup=0.0)
    result.records.append(
        EpochRecord(
            time=0.0,
            total_delay=evaluation.total_delay,
            average_delay=evaluation.average_delay,
            flow_delays=dict(evaluation.flow_delays),
            max_utilization=evaluation.max_utilization,
        )
    )
    if ob is not None:
        result.metrics = ob.snapshot()
    return result, gallager
