"""Experiment harness: scenarios and the two-timescale simulators.

- :mod:`repro.sim.scenario` — workload descriptions (static CAIRN/NET1
  as in the paper's Section 5, dynamic bursty variants);
- :mod:`repro.sim.runner` — the quasi-static (fluid) simulator driving
  MP/SP through the paper's ``Tl`` / ``Ts`` update discipline, plus the
  OPT evaluation;
- :mod:`repro.sim.packet_runner` — the same discipline over the
  packet-level simulator;
- :mod:`repro.sim.results` — epoch records and run summaries.
"""

from repro.sim.results import EpochRecord, RunResult
from repro.sim.runner import QuasiStaticConfig, run_opt, run_quasi_static
from repro.sim.scenario import (
    Scenario,
    bursty_scenario,
    cairn_scenario,
    net1_scenario,
    with_failures,
)

__all__ = [
    "Scenario",
    "cairn_scenario",
    "net1_scenario",
    "bursty_scenario",
    "with_failures",
    "QuasiStaticConfig",
    "run_quasi_static",
    "run_opt",
    "EpochRecord",
    "RunResult",
]
