"""Experiment harness: scenarios and the two-timescale control kernel.

- :mod:`repro.sim.scenario` — workload descriptions (static CAIRN/NET1
  as in the paper's Section 5, dynamic bursty and failure variants);
- :mod:`repro.sim.control` — the unified two-timescale controller
  driving a pluggable data plane (fluid or packet) through the paper's
  ``Tl`` / ``Ts`` update discipline;
- :mod:`repro.sim.runner` — the legacy fluid entry point (a thin shim)
  plus the OPT evaluation;
- :mod:`repro.sim.packet_runner` — the legacy packet entry point (a
  thin shim);
- :mod:`repro.sim.results` — epoch records and run summaries.
"""

from repro.sim.control import (
    DataPlane,
    FluidPlane,
    PacketPlane,
    PacketRunConfig,
    QuasiStaticConfig,
    RunConfig,
    TwoTimescaleController,
    run,
)
from repro.sim.packet_runner import run_packet_level
from repro.sim.results import EpochRecord, RunResult
from repro.sim.runner import run_opt, run_quasi_static
from repro.sim.scenario import (
    Scenario,
    bursty_scenario,
    cairn_scenario,
    net1_scenario,
    with_failures,
)

__all__ = [
    "Scenario",
    "cairn_scenario",
    "net1_scenario",
    "bursty_scenario",
    "with_failures",
    "RunConfig",
    "QuasiStaticConfig",
    "PacketRunConfig",
    "DataPlane",
    "FluidPlane",
    "PacketPlane",
    "TwoTimescaleController",
    "run",
    "run_quasi_static",
    "run_packet_level",
    "run_opt",
    "EpochRecord",
    "RunResult",
]
