"""The packet-level runner — now a thin plane adapter.

The two-timescale discipline lives in :mod:`repro.sim.control`; this
module keeps the historical entry point :func:`run_packet_level` as a
deprecated shim over :func:`repro.sim.control.run` with the packet
plane.  Scenario dynamics are honored uniformly by the controller:
bursty scenarios replay their precomputed on/off schedules through
scheduled sources, and failure scenarios fail/restore the physical
links mid-run (the old runner silently ignored ``links_down_at``).
"""

from __future__ import annotations

from repro.deprecation import warn_once
from repro.sim.control import PacketRunConfig, run
from repro.sim.results import RunResult
from repro.sim.scenario import Scenario

__all__ = ["PacketRunConfig", "run_packet_level"]


# Deprecation is announced once per process, not once per call; the
# pid-keyed registry keeps forked fleet workers and sequential fleet
# cells independent (see repro.deprecation).
def _warn_once() -> None:
    warn_once(
        "sim.packet_runner.run_packet_level",
        "run_packet_level is deprecated; call repro.sim.control.run "
        "(the data plane follows the config type, the algorithm the "
        "config's policy name)",
        stacklevel=4,
    )


def run_packet_level(
    scenario: Scenario, config: PacketRunConfig
) -> RunResult:
    """Run the full packet-level system and return per-flow delays.

    Deprecated shim: new code should call :func:`repro.sim.control.run`,
    which resolves the routing policy from the registry and selects the
    data plane from the config type.
    """
    _warn_once()
    return run(scenario, config)
