"""The two-timescale discipline over the packet-level simulator.

Ties together the packet data plane (:mod:`repro.netsim`), the
measurement plumbing (link monitors + cost estimators) and the routing
plane (:class:`~repro.core.router.MPRouting`) with simulated-time
timers:

- every ``Ts``: close the link measurement windows, feed the estimators,
  run AH with the fresh local costs;
- every ``Tl``: use the (estimator-smoothed) costs to recompute routes
  and reseed allocations.

This is the paper's system end-to-end: Poisson or bursty packet sources,
M/M/1-behaving links, marginal-delay estimation from real measurements,
MPDA-equivalent successor sets and IH/AH splitting — at packet
granularity.  It is slower than the fluid runner, so the figure-scale
sweeps use the fluid one and the test-suite cross-validates the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.router import MPRouting
from repro.exceptions import SimulationError
from repro.graph.topology import LinkId
from repro.netsim.network import PacketNetwork
from repro.sim.results import EpochRecord, RunResult
from repro.sim.scenario import Scenario


@dataclass
class PacketRunConfig:
    """Parameters of a packet-level run (mirrors QuasiStaticConfig)."""

    tl: float = 10.0
    ts: float = 2.0
    duration: float = 60.0
    warmup: float = 20.0
    successor_limit: int | None = None
    mode: str = "oracle"
    damping: float = 1.0
    seed: int = 0
    service: str = "exponential"
    estimator: str = "mm1"
    cost_smoothing: float = 0.5
    #: Per-link output buffer in packets (None = the paper's lossless
    #: model); overflow drops are counted by the flow monitor.
    queue_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.ts <= 0 or self.tl < self.ts:
            raise SimulationError("need 0 < Ts <= Tl")
        ratio = self.tl / self.ts
        if abs(ratio - round(ratio)) > 1e-9:
            raise SimulationError("Tl must be an integer multiple of Ts")

    @property
    def label(self) -> str:
        if self.successor_limit == 1:
            return f"SP-TL-{self.tl:g}(pkt)"
        return f"MP-TL-{self.tl:g}-TS-{self.ts:g}(pkt)"


def run_packet_level(
    scenario: Scenario, config: PacketRunConfig
) -> RunResult:
    """Run the full packet-level system and return per-flow delays.

    Bursty scenarios are honored: the source set is built from the
    scenario's base flows with on/off modulation when the scenario is a
    :class:`~repro.sim.scenario.BurstyScenario`.
    """
    from repro.sim.scenario import BurstyScenario  # cycle-free local import

    topo = scenario.topo
    traffic = scenario.mean_traffic()
    ob = obs.current()
    mode = config.mode
    if (
        ob is not None
        and ob.protocol_control_plane
        and mode == "oracle"
        and not getattr(scenario, "outages", None)
    ):
        # Same upgrade as the fluid runner: measure the real control
        # plane (LSU counts, ACTIVE phases) instead of the oracle.
        mode = "protocol"
    routing = MPRouting(
        topo,
        traffic.destinations(),
        successor_limit=config.successor_limit,
        mode=mode,
        damping=config.damping,
        seed=config.seed,
    )
    if ob is not None:
        ob.sim_time = 0.0
    routing.update_routes(topo.idle_marginal_costs())

    network = PacketNetwork(
        topo,
        routing,
        seed=config.seed,
        service=config.service,
        estimator=config.estimator,
        queue_capacity=config.queue_capacity,
    )
    if isinstance(scenario, BurstyScenario):
        network.attach_onoff(
            traffic.flows,
            burstiness=scenario.burstiness,
            mean_on=scenario.mean_on,
            stop=config.duration,
        )
    else:
        network.attach_poisson(traffic, stop=config.duration)

    engine = network.engine
    state = {
        "tick": 0,
        "long_costs": dict(topo.idle_marginal_costs()),
    }
    ticks_per_tl = round(config.tl / config.ts)

    def on_tick() -> None:
        state["tick"] += 1
        if ob is not None:
            ob.sim_time = engine.now
        with obs.phase(ob, "packet.measure"):
            costs = network.measure_costs()
        # Estimators can momentarily report ~0 on idle links before any
        # traffic; routing requires positive costs.
        floor = {
            link_id: max(cost, 1e-9)
            for link_id, cost in costs.items()
        }
        if state["tick"] % ticks_per_tl == 0:
            alpha = config.cost_smoothing
            prev: dict[LinkId, float] = state["long_costs"]
            smoothed = {
                link_id: alpha * floor[link_id]
                + (1.0 - alpha) * prev.get(link_id, floor[link_id])
                for link_id in floor
            }
            state["long_costs"] = smoothed
            routing.update_routes(smoothed)
        else:
            routing.adjust_allocation(floor)
        if ob is not None and ob.tracer.enabled:
            ob.tracer.event(
                "ts_tick",
                time=engine.now,
                tick=state["tick"],
                delivered=network.flow_monitor.total_delivered(),
                dropped=network.flow_monitor.total_dropped(),
            )

    engine.every(config.ts, on_tick, tier=2)
    network.run(until=config.duration)

    result = RunResult(
        label=config.label, scenario=scenario.name, warmup=0.0
    )
    # Packet-level delays come from delivered packets; warmup exclusion
    # would need per-window accounting, so run long enough that the
    # transient is negligible (or subtract via two runs).
    result.records.append(
        EpochRecord(
            time=config.duration,
            total_delay=float("nan"),
            average_delay=_aggregate_mean(network),
            flow_delays=network.mean_flow_delays(),
            max_utilization=max(
                network.link_utilizations().values(), default=0.0
            ),
        )
    )
    result.protocol_stats = routing.protocol_stats()
    if ob is not None:
        ob.sim_time = None
        network.harvest_metrics(ob.metrics)
        result.metrics = ob.snapshot()
    return result


def _aggregate_mean(network: PacketNetwork) -> float:
    records = network.flow_monitor.flows.values()
    delivered = sum(r.delivered for r in records)
    if not delivered:
        return 0.0
    return sum(r.delay_sum for r in records) / delivered
