"""The unified two-timescale control kernel.

The paper's whole system is *one* control discipline:

- every short interval ``Ts`` the routers measure marginal link delays
  for the current flows and run the AH allocation heuristic (a purely
  local computation);
- every long interval ``Tl`` the measured costs (averaged over the
  window, as a real router would) are flooded, routes are recomputed
  (MPDA's converged sets, or the live protocol), and IH re-seeds any
  allocation whose successor set changed.

:class:`TwoTimescaleController` owns that cadence — Ts/Tl timers, IH/AH
invocation, warmup accounting, scenario dynamics (link outages, bursty
on/off traffic) and epoch-record emission.  *Which* routing algorithm
fills the successor sets is no longer the controller's business: it
resolves a :class:`~repro.policy.RoutingPolicy` from the registry
(``config.policy``, or the legacy ``mode``/``successor_limit``/
``path_rule`` encoding) and drives its uniform lifecycle.  The policy
in turn feeds a :class:`DataPlane`:

- :class:`FluidPlane` evaluates the network analytically each epoch
  with the same M/M/1 law the paper's cost function assumes, plus fluid
  queue backlog that persists across epochs — fast enough for full
  parameter sweeps;
- :class:`PacketPlane` simulates every packet (:mod:`repro.netsim`):
  Poisson or scheduled on/off sources, exponential-service links, and
  marginal delays *estimated from measurements* instead of computed
  from the model.

Because the controller is shared, scenario dynamics behave identically
on both planes: a :func:`~repro.sim.scenario.with_failures` outage
fails the physical links mid-run (packets queued on them are dropped,
traffic reroutes over the surviving successor sets) and emits
``link_down`` / ``link_up`` trace events; a
:func:`~repro.sim.scenario.bursty_scenario` replays the *same*
precomputed on/off schedule through either plane.

:func:`run` is the unified entry point; the legacy
``run_quasi_static`` / ``run_packet_level`` wrappers are thin shims
over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro import obs
from repro.exceptions import SimulationError
from repro.fluid.delay import DelayModel
from repro.fluid.evaluator import flow_delays, link_flows
from repro.fluid.queues import FluidQueues
from repro.graph.topology import LinkId
from repro.netsim.network import PacketNetwork
from repro.policy import (
    RoutingPolicy,
    create_policy,
    policy_class,
    policy_name_for_config,
)
from repro.sim.results import EpochRecord, RunResult
from repro.sim.scenario import BurstyScenario, Scenario

#: Estimators can momentarily report ~0 on idle links before any
#: traffic; routing requires positive costs.
MIN_COST = 1e-9


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass
class RunConfig:
    """Parameters shared by every two-timescale run, any data plane.

    Attributes:
        tl: long-term (route) update interval, seconds.
        ts: short-term (allocation) update interval, seconds.
        duration: simulated time.
        warmup: epochs before this time are excluded from averages.
        successor_limit: None = MP, 1 = SP, other = ablation.
        mode: "oracle" (converged MPDA sets) or "protocol" (real MPDA).
        damping: AH step damping.
        seed: protocol-mode delivery interleaving (and packet-plane
            service/arrival) seed.
        policy: registry name of the routing policy to run (see
            ``repro policies``).  ``None`` derives it from the legacy
            ``mode`` / ``successor_limit`` / ``path_rule`` fields, and
            either spelling raises :class:`~repro.exceptions.ConfigError`
            — listing the registered names — when it matches nothing.
        policy_params: extra constructor knobs for the policy
            (``{"k": 4}`` for ``ecmp-k``, ``{"eta": 0.05}`` for
            ``opt``, ...).
    """

    tl: float = 10.0
    ts: float = 2.0
    duration: float = 200.0
    warmup: float = 40.0
    successor_limit: int | None = None
    mode: str = "oracle"
    damping: float = 1.0
    seed: int = 0
    policy: str | None = None
    policy_params: dict = field(default_factory=dict)
    #: Weight of the newest Tl window in the long-term cost EWMA.  1.0
    #: uses the raw window measurement; smaller values smooth the costs
    #: across windows, damping route flapping the way a real router's
    #: long-interval averaging does.
    cost_smoothing: float = 0.5

    #: Appended to the plot key (the packet plane tags ``(pkt)``).
    label_suffix = ""

    def __post_init__(self) -> None:
        if self.ts <= 0 or self.tl <= 0:
            raise SimulationError("Tl and Ts must be positive")
        if self.tl < self.ts:
            raise SimulationError(
                f"Tl ({self.tl}) must be at least Ts ({self.ts}); the paper "
                "requires Tl to be several times longer"
            )
        ratio = self.tl / self.ts
        if abs(ratio - round(ratio)) > 1e-9:
            raise SimulationError(
                "Tl must be an integer multiple of Ts "
                f"(got Tl={self.tl}, Ts={self.ts})"
            )
        if self.duration <= self.warmup:
            raise SimulationError("duration must exceed warmup")
        if self.policy is None:
            # Legacy spelling: derive (and validate) the registry name
            # from mode / successor_limit / path_rule.
            self.policy = policy_name_for_config(self)
        else:
            # Registry spelling: validate the name, then let the policy
            # back-fill the legacy fields so labels and downstream
            # consumers keep working.
            policy_class(self.policy).normalize_config(self)

    @property
    def epochs_per_tl(self) -> int:
        return round(self.tl / self.ts)

    #: Policies whose labels follow the paper's plot-key conventions
    #: below; anything else gets a generic ``NAME-TL-x`` key.
    _PAPER_LABELS = ("mp", "mp-oracle", "sp", "ecmp", "ecmp-hop")

    @property
    def label(self) -> str:
        """The paper's plot-key convention (MP-TL-x-TS-y / SP-TL-x)."""
        if self.policy is not None and self.policy not in self._PAPER_LABELS:
            name = self.policy.upper()
            return f"{name}-TL-{self.tl:g}{self.label_suffix}"
        if self.successor_limit == 1:
            return f"SP-TL-{self.tl:g}{self.label_suffix}"
        prefix = (
            "MP"
            if self.successor_limit is None
            else f"MP{self.successor_limit}"
        )
        return f"{prefix}-TL-{self.tl:g}-TS-{self.ts:g}{self.label_suffix}"


@dataclass
class QuasiStaticConfig(RunConfig):
    """A :class:`RunConfig` plus the fluid plane's extras."""

    #: "lfi" (the paper's unequal-cost multipath) or "ecmp" (OSPF's
    #: equal-cost-only baseline).
    path_rule: str = "lfi"
    #: Per-link output buffer, packets; caps what a packet can
    #: experience during overload epochs (None = infinite).
    queue_limit: float | None = 100.0

    @property
    def label(self) -> str:
        if self.successor_limit != 1:
            if self.path_rule == "ecmp":
                return f"ECMP-TL-{self.tl:g}-TS-{self.ts:g}"
            if self.path_rule == "ecmp-hop":
                return "ECMP-HOP"
        return RunConfig.label.fget(self)


@dataclass
class PacketRunConfig(RunConfig):
    """A :class:`RunConfig` plus the packet plane's extras.

    Packet delays come from delivered packets, so the default warmup is
    0: either run long enough that the transient is negligible, or set
    ``warmup`` to drop the cold-start windows from the averages.
    """

    duration: float = 60.0
    warmup: float = 0.0
    service: str = "exponential"
    estimator: str = "mm1"
    #: Per-link output buffer in packets (None = the paper's lossless
    #: model); overflow drops are counted by the flow monitor.
    queue_capacity: int | None = None

    label_suffix = "(pkt)"


# ----------------------------------------------------------------------
# data planes
# ----------------------------------------------------------------------
class DataPlane(Protocol):
    """What the controller needs from a data plane.

    A plane turns routing parameters into flows and delays for one
    epoch, reports the short-timescale marginal costs the routers
    would measure, and reacts to physical topology events.
    """

    #: Short tag stamped on results and trace events.
    name: str

    def bind(self, routing: RoutingPolicy) -> None:
        """Attach the routing policy before the first epoch."""

    def advance(
        self, time: float, dt: float, traffic
    ) -> tuple[EpochRecord, dict[LinkId, float]]:
        """Advance one epoch [time, time+dt) under ``traffic``.

        Returns the epoch's record and the marginal link costs measured
        at the epoch's end (over *all* physical links, up or down).
        """

    def apply_outage(self, went_down, came_up) -> None:
        """React to directed links physically failing / being repaired."""

    def finish(self, ob) -> None:
        """Flush plane-level totals into the observation at run end."""


class FluidPlane:
    """Analytic M/M/1 evaluation with persistent fluid queue backlog."""

    name = "fluid"

    def __init__(
        self, scenario: Scenario, config: RunConfig
    ) -> None:
        queue_limit = getattr(config, "queue_limit", 100.0)
        self.model = DelayModel.for_topology(
            scenario.topo, queue_limit=queue_limit
        )
        self.queues = FluidQueues(self.model, queue_limit)
        self.routing: RoutingPolicy | None = None

    def bind(self, routing: RoutingPolicy) -> None:
        self.routing = routing

    def advance(self, time, dt, traffic):
        ob = obs.current()
        with obs.phase(ob, "fluid.epoch"):
            # One phi snapshot for the whole epoch: nothing touches the
            # allocations between the flow and delay computations, and
            # building the nested phi dict is itself O(n * dests).
            phi = self.routing.phi()
            flows = link_flows(phi, traffic)
            per_unit = self.queues.step(flows, dt)
            total_delay = sum(
                flow * per_unit[link_id] for link_id, flow in flows.items()
            )
            total_rate = traffic.total_rate()
            record = EpochRecord(
                time=time,
                total_delay=total_delay,
                average_delay=(
                    total_delay / total_rate if total_rate > 0 else 0.0
                ),
                flow_delays=flow_delays(phi, traffic, per_unit),
                max_utilization=max(
                    (
                        self.model[link_id].utilization(flow)
                        for link_id, flow in flows.items()
                    ),
                    default=0.0,
                ),
            )
            short_costs = self.queues.costs(flows, per_unit)
        return record, short_costs

    def apply_outage(self, went_down, came_up) -> None:
        # The fluid model has no queued packets to destroy on restore;
        # on failure the backlog is lost with the link.
        for link_id in went_down:
            self.queues.drop_link(link_id)

    def finish(self, ob) -> None:
        pass


class PacketPlane:
    """The discrete-event packet simulator as a data plane.

    Built lazily in :meth:`bind` (the network needs the routing
    provider); each :meth:`advance` runs the engine one epoch and
    reports *that window's* delivered-packet delays, so warmup
    exclusion and bursty per-epoch flow activity work exactly as on the
    fluid plane.
    """

    name = "packet"

    def __init__(
        self, scenario: Scenario, config: PacketRunConfig
    ) -> None:
        self.scenario = scenario
        self.config = config
        self.network: PacketNetwork | None = None
        self._tick = 0
        # Per-flow (delivered, delay_sum) totals at the window start.
        self._flow_marks: dict[str, tuple[int, float]] = {}
        self._dropped_mark = 0

    def bind(self, routing: RoutingPolicy) -> None:
        config = self.config
        self.network = PacketNetwork(
            self.scenario.topo,
            routing,
            seed=config.seed,
            service=config.service,
            estimator=config.estimator,
            queue_capacity=config.queue_capacity,
        )
        self._attach_workload()

    def _attach_workload(self) -> None:
        scenario, config = self.scenario, self.config
        traffic = scenario.mean_traffic()
        if isinstance(scenario, BurstyScenario):
            # Replay the scenario's *precomputed* on/off schedule so the
            # packet plane faces the exact burst pattern the fluid plane
            # evaluates (and MP and SP face the same one).
            self.network.attach_schedules(
                traffic.flows,
                {f.label(): scenario.schedule_for(f.label()) for f in traffic.flows},
                peak_factor=scenario.burstiness,
                stop=config.duration,
            )
        else:
            self.network.attach_poisson(traffic, stop=config.duration)

    def advance(self, time, dt, traffic):
        ob = obs.current()
        network = self.network
        network.run(until=time + dt)
        self._tick += 1
        record = self._window_record(time, dt)
        with obs.phase(ob, "packet.measure"):
            costs = network.measure_costs()
        short_costs = {
            link_id: max(cost, MIN_COST) for link_id, cost in costs.items()
        }
        if ob is not None and ob.tracer.enabled:
            monitor = network.flow_monitor
            ob.tracer.event(
                "ts_tick",
                time=network.engine.now,
                tick=self._tick,
                delivered=monitor.total_delivered(),
                dropped=monitor.total_dropped(),
            )
        return record, short_costs

    def _window_record(self, time: float, dt: float) -> EpochRecord:
        """Delays of the packets delivered during this window."""
        monitor = self.network.flow_monitor
        dropped = monitor.total_dropped()
        window_dropped = dropped - self._dropped_mark
        self._dropped_mark = dropped
        per_flow: dict[str, float] = {}
        window_delay = 0.0
        window_count = 0
        for name, rec in monitor.flows.items():
            prev_count, prev_delay = self._flow_marks.get(name, (0, 0.0))
            delivered = rec.delivered - prev_count
            delay = rec.delay_sum - prev_delay
            self._flow_marks[name] = (rec.delivered, rec.delay_sum)
            if delivered:
                per_flow[name] = delay / delivered
                window_delay += delay
                window_count += delivered
        return EpochRecord(
            time=time,
            # Delay-seconds accumulated per unit time — the packet
            # analogue of the fluid plane's D_T.
            total_delay=window_delay / dt,
            average_delay=(
                window_delay / window_count if window_count else 0.0
            ),
            flow_delays=per_flow,
            max_utilization=max(
                self.network.link_utilizations().values(), default=0.0
            ),
            metrics={
                "delivered": float(window_count),
                "dropped": float(window_dropped),
            },
        )

    def apply_outage(self, went_down, came_up) -> None:
        for link_id in went_down:
            self.network.set_link_up(link_id, False)
        for link_id in came_up:
            self.network.set_link_up(link_id, True)

    def finish(self, ob) -> None:
        self.network.harvest_metrics(ob.metrics)


# ----------------------------------------------------------------------
# the controller
# ----------------------------------------------------------------------
class TwoTimescaleController:
    """Drives the paper's Ts/Tl discipline over a pluggable data plane.

    The controller owns everything the two legacy runners duplicated:
    boot from idle marginal costs, the window-averaged + EWMA-smoothed
    long-term costs, the Tl route recomputation (IH reseeding) vs. Ts
    allocation adjustment (AH) split, warmup bookkeeping, epoch trace
    events, and scenario dynamics — outages are detected at the epoch
    where they start/end (failure detection is immediate in MPDA, an
    adjacent-link event, not a Tl timer) and applied to both the data
    plane and the routing plane, with ``link_down`` / ``link_up`` trace
    events.
    """

    def __init__(
        self,
        scenario: Scenario,
        config: RunConfig,
        plane: DataPlane | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config
        self.plane = plane if plane is not None else _default_plane(
            scenario, config
        )
        #: The policy instance of the last/current :meth:`run`.
        self.policy: RoutingPolicy | None = None

    def run(self) -> RunResult:
        scenario, config, plane = self.scenario, self.config, self.plane
        topo = scenario.topo
        ob = obs.current()
        routing = create_policy(config.policy, **config.policy_params)
        routing.initialize(scenario, config)
        self.policy = routing
        plane.bind(routing)

        # Boot: no measurements yet, so paths come from idle marginal
        # costs, which also seed the long-term cost average.  The full
        # topology boots first (the protocol driver needs a cost for
        # every adjacent link); outages already active at t=0 are then
        # applied as ordinary topology events.
        if ob is not None:
            ob.sim_time = 0.0
        boot_costs = topo.idle_marginal_costs()
        long_costs: dict[LinkId, float] = dict(boot_costs)
        routing.on_costs(boot_costs)
        links_down: frozenset = frozenset()

        result = RunResult(
            label=config.label,
            scenario=scenario.name,
            warmup=config.warmup,
            plane=plane.name,
        )
        window_costs: dict[LinkId, float] = {}
        window_epochs = 0
        time = 0.0
        epoch_index = 0
        while time < config.duration:
            if ob is not None:
                # Stamp the shared sim clock so protocol-driver trace
                # events fired inside routing calls carry this time.
                ob.sim_time = time
            links_down = self._sync_topology(
                time, links_down, routing, plane, long_costs, ob
            )
            traffic = scenario.traffic_at(time)
            record, short_costs = plane.advance(time, config.ts, traffic)
            if ob is not None:
                record.metrics = {
                    **(record.metrics or {}),
                    "route_updates": float(routing.route_updates),
                    "allocation_updates": float(routing.allocation_updates),
                }
                if ob.tracer.enabled:
                    ob.tracer.event(
                        "epoch",
                        time=time,
                        run=config.label,
                        avg_delay=record.average_delay,
                        max_utilization=record.max_utilization,
                    )
            result.records.append(record)

            # Measurements happen at the end of the epoch.
            for link_id, cost in short_costs.items():
                window_costs[link_id] = window_costs.get(link_id, 0.0) + cost
            window_epochs += 1
            time += config.ts
            epoch_index += 1
            if ob is not None:
                ob.sim_time = time
            if epoch_index % config.epochs_per_tl == 0:
                measured = {
                    link_id: total / window_epochs
                    for link_id, total in window_costs.items()
                }
                alpha = config.cost_smoothing
                if alpha >= 1.0:
                    long_costs = measured
                else:
                    long_costs = {
                        link_id: alpha * measured[link_id]
                        + (1.0 - alpha)
                        * long_costs.get(link_id, measured[link_id])
                        for link_id in measured
                    }
                with obs.phase(ob, "control.tl_update"):
                    routing.on_costs(_without(long_costs, links_down))
                window_costs = {}
                window_epochs = 0
            else:
                with obs.phase(ob, "control.ts_adjust"):
                    routing.on_short_costs(
                        _without(short_costs, links_down)
                    )

        result.protocol_stats = routing.protocol_stats()
        if ob is not None:
            plane.finish(ob)
            ob.sim_time = None
            result.metrics = ob.snapshot()
        return result

    # ------------------------------------------------------------------
    def _sync_topology(
        self, time, links_down, routing, plane, long_costs, ob
    ) -> frozenset:
        """Apply the scenario's outage state for ``time`` if it changed.

        The data plane sees the physical event (queued packets dropped,
        fluid backlog lost); the routing policy sees it either as link
        events — policies with their own failure handling, e.g. MPDA's
        protocol mode or link reversal (restored links come back at
        their long-term cost) — or, for converged-oracle policies, as a
        route recomputation over the surviving links.
        """
        now_down = self.scenario.links_down_at(time)
        if now_down == links_down:
            return links_down
        went_down = now_down - links_down
        came_up = links_down - now_down
        plane.apply_outage(went_down, came_up)
        if ob is not None and ob.tracer.enabled:
            for link_id in sorted(went_down, key=repr):
                ob.tracer.event(
                    "link_down", time=time, link=link_id, plane=plane.name
                )
            for link_id in sorted(came_up, key=repr):
                ob.tracer.event(
                    "link_up", time=time, link=link_id, plane=plane.name
                )
        if routing.handles_link_events:
            for a, b in _duplex_pairs(went_down):
                routing.on_link_event("down", a, b)
            for a, b in _duplex_pairs(came_up):
                routing.on_link_event(
                    "up", a, b, long_costs[(a, b)], long_costs[(b, a)]
                )
        else:
            routing.on_costs(_without(long_costs, now_down))
        return now_down


def run(
    scenario: Scenario,
    config: RunConfig,
    *,
    plane: DataPlane | None = None,
) -> RunResult:
    """Run a scenario through the two-timescale discipline.

    The data plane follows the config type — :class:`PacketRunConfig`
    selects the packet plane, anything else the fluid plane — unless an
    explicit ``plane`` is given.

    Returns:
        A :class:`RunResult` whose per-flow means reproduce one curve
        of the paper's figures.
    """
    return TwoTimescaleController(scenario, config, plane=plane).run()


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _default_plane(scenario: Scenario, config: RunConfig) -> DataPlane:
    if isinstance(config, PacketRunConfig):
        return PacketPlane(scenario, config)
    return FluidPlane(scenario, config)


def _without(costs, links_down):
    """A cost map with failed links removed (routers cannot use them)."""
    if not links_down:
        return costs
    return {
        link_id: cost
        for link_id, cost in costs.items()
        if link_id not in links_down
    }


def _duplex_pairs(links) -> list[tuple]:
    """Directed link ids collapsed to sorted duplex (a, b) pairs."""
    seen = set()
    for a, b in links:
        seen.add((a, b) if repr(a) <= repr(b) else (b, a))
    return sorted(seen, key=repr)
