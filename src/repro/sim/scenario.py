"""Workload scenarios: the paper's Section 5 setups and dynamic variants.

A :class:`Scenario` bundles a topology with a (possibly time-varying)
traffic matrix.  The two factory functions :func:`cairn_scenario` and
:func:`net1_scenario` build the paper's setups: the 11 CAIRN and 10 NET1
source-destination pairs with flow bandwidths drawn from a rate range
(the paper's exact range is illegible in our source; see DESIGN.md §4 —
benchmarks sweep the ``load`` factor so claims are checked across
regimes).  :func:`bursty_scenario` wraps any scenario with on/off flow
dynamics for the dynamic-traffic experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.fluid.flows import Flow, TrafficMatrix, uniform_random_rates
from repro.graph.topologies import (
    CAIRN_FLOW_PAIRS,
    NET1_FLOW_PAIRS,
    cairn,
    net1,
)
from repro.graph.topology import Topology
from repro.units import mbps


@dataclass
class Scenario:
    """A topology plus a workload.

    ``traffic_at`` returns the instantaneous demand; the base class is
    stationary.  ``mean_traffic`` is what stationary-only algorithms
    (OPT) should optimize for.
    """

    name: str
    topo: Topology
    traffic: TrafficMatrix

    def traffic_at(self, time: float) -> TrafficMatrix:
        """Demand at simulated ``time`` (stationary by default)."""
        return self.traffic

    def mean_traffic(self) -> TrafficMatrix:
        """The long-run average demand."""
        return self.traffic

    def links_down_at(self, time: float) -> frozenset:
        """Duplex links failed at ``time`` (empty for a stable topology,
        the paper's setting; see :func:`with_failures`)."""
        return frozenset()

    @property
    def flow_labels(self) -> list[str]:
        return [flow.label() for flow in self.traffic.flows]


def cairn_scenario(
    load: float = 1.0,
    *,
    rate_low_mbps: float = 1.0,
    rate_high_mbps: float = 3.0,
    seed: int = 7,
) -> Scenario:
    """The paper's CAIRN experiment: 11 flows over the CAIRN topology.

    ``load`` scales every flow, letting benchmarks sweep from light to
    heavy regimes (the paper's claims concern the loaded regime).
    """
    traffic = uniform_random_rates(
        CAIRN_FLOW_PAIRS, mbps(rate_low_mbps), mbps(rate_high_mbps), seed=seed
    ).scaled(load)
    return Scenario(f"cairn-load{load:g}", cairn(), traffic)


def net1_scenario(
    load: float = 1.0,
    *,
    rate_low_mbps: float = 1.0,
    rate_high_mbps: float = 3.0,
    seed: int = 11,
) -> Scenario:
    """The paper's NET1 experiment: 10 flows over the NET1 topology."""
    traffic = uniform_random_rates(
        NET1_FLOW_PAIRS, mbps(rate_low_mbps), mbps(rate_high_mbps), seed=seed
    ).scaled(load)
    return Scenario(f"net1-load{load:g}", net1(), traffic)


@dataclass
class BurstyScenario(Scenario):
    """A scenario whose flows switch on and off over time.

    Each flow follows a precomputed alternating schedule of exponential
    on/off periods; while *on* it offers ``burstiness`` times its base
    rate, so its long-run mean equals the base rate.  The schedule is
    deterministic given the seed, which keeps runs reproducible and lets
    MP and SP face *exactly* the same burst pattern.
    """

    burstiness: float = 3.0
    mean_on: float = 4.0
    seed: int = 0
    horizon: float = 600.0
    _schedules: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.burstiness <= 1.0:
            raise SimulationError(
                f"burstiness must exceed 1, got {self.burstiness!r}"
            )
        rng = random.Random(self.seed)
        mean_off = self.mean_on * (self.burstiness - 1.0)
        for flow in self.traffic.flows:
            periods: list[tuple[float, float]] = []
            t = rng.uniform(0.0, self.mean_on + mean_off)  # desynchronize
            while t < self.horizon:
                on = rng.expovariate(1.0 / self.mean_on)
                periods.append((t, t + on))
                t += on + rng.expovariate(1.0 / mean_off)
            self._schedules[flow.label()] = periods

    def schedule_for(self, flow_label: str) -> list[tuple[float, float]]:
        """The flow's precomputed (start, end) on-periods.

        This is the schedule both data planes replay: the fluid plane
        samples it via :meth:`traffic_at`, the packet plane drives
        scheduled sources from it directly.
        """
        return list(self._schedules.get(flow_label, ()))

    def is_on(self, flow_label: str, time: float) -> bool:
        for start, end in self._schedules.get(flow_label, ()):
            if start <= time < end:
                return True
            if start > time:
                break
        return False

    def traffic_at(self, time: float) -> TrafficMatrix:
        active = [
            Flow(
                f.source,
                f.destination,
                f.rate * self.burstiness,
                name=f.name,
            )
            for f in self.traffic.flows
            if self.is_on(f.label(), time)
        ]
        return TrafficMatrix(active)

    def mean_traffic(self) -> TrafficMatrix:
        return self.traffic


def bursty_scenario(
    base: Scenario,
    *,
    burstiness: float = 3.0,
    mean_on: float = 4.0,
    seed: int = 0,
    horizon: float = 600.0,
) -> BurstyScenario:
    """Wrap a stationary scenario with on/off flow dynamics."""
    return BurstyScenario(
        name=f"{base.name}-bursty{burstiness:g}",
        topo=base.topo,
        traffic=base.traffic,
        burstiness=burstiness,
        mean_on=mean_on,
        seed=seed,
        horizon=horizon,
    )


@dataclass
class FailureScenario(Scenario):
    """A scenario whose topology loses duplex links during windows.

    ``outages`` maps a duplex link (a, b) to (start, end) windows during
    which both directions are down.  The paper kept its topologies
    stable ("In the presence of link failures, MP can only perform
    better than SP, because of availability of alternate paths"); this
    extension lets that claim be measured.
    """

    outages: dict[tuple, list[tuple[float, float]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for (a, b), windows in self.outages.items():
            if not self.topo.has_link(a, b) or not self.topo.has_link(b, a):
                raise SimulationError(f"no duplex link {a!r} <-> {b!r}")
            for start, end in windows:
                if end <= start:
                    raise SimulationError(
                        f"outage window ({start}, {end}) is empty"
                    )

    def links_down_at(self, time: float) -> frozenset:
        down = set()
        for (a, b), windows in self.outages.items():
            for start, end in windows:
                if start <= time < end:
                    down.add((a, b))
                    down.add((b, a))
                    break
        return frozenset(down)


def with_failures(
    base: Scenario,
    outages: dict[tuple, list[tuple[float, float]]],
) -> FailureScenario:
    """Add link-outage windows to a scenario."""
    return FailureScenario(
        name=f"{base.name}-failures",
        topo=base.topo,
        traffic=base.traffic,
        outages=outages,
    )
