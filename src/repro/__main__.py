"""``python -m repro`` — the experiment runner CLI."""

import sys

from repro.cli import main

sys.exit(main())
